//! A shareable, copy-on-write view over a [`FusionResult`].
//!
//! The Location Service caches fusion results per object and hands the
//! same lattice to many concurrent readers (queries, trigger matching,
//! distribution snapshots). Cached lattices must never be mutated: a
//! query that inserts its region into a shared lattice would corrupt
//! every later reader's node set. [`SharedFusion`] makes that contract
//! structural:
//!
//! - probability evaluation ([`SharedFusion::region_probability`]) is
//!   read-only — it evaluates Equation 7 directly against the surviving
//!   evidence, which is bit-identical to inserting a query node and
//!   reading its posterior ([`RegionLattice::insert_query_region`]
//!   computes the node's probability with the very same
//!   `posterior_general` call),
//! - callers that genuinely need a query *node* in the lattice go
//!   through [`SharedFusion::insert_query_region`], which clones the
//!   underlying result on first mutation (copy-on-write) so the shared
//!   original stays untouched.

use std::sync::Arc;

use mw_geometry::Rect;

use crate::lattice::RegionLattice;
use crate::{FusionResult, NodeId, ProbabilityBand};

/// A clone-cheap handle on one fusion pass, safe to share across
/// threads and across cached queries. See the module docs for the
/// read-only / copy-on-write contract.
#[derive(Debug, Clone)]
pub struct SharedFusion {
    base: Arc<FusionResult>,
    /// The private copy, created lazily by the first mutating call.
    own: Option<Box<FusionResult>>,
}

impl SharedFusion {
    /// Wraps an already-shared fusion result.
    #[must_use]
    pub fn new(base: Arc<FusionResult>) -> Self {
        SharedFusion { base, own: None }
    }

    /// Wraps a freshly computed result (single owner so far).
    #[must_use]
    pub fn from_result(result: FusionResult) -> Self {
        SharedFusion::new(Arc::new(result))
    }

    /// The fusion result this view reads: the private copy once one
    /// exists, the shared original otherwise.
    #[must_use]
    pub fn result(&self) -> &FusionResult {
        self.own.as_deref().unwrap_or(&self.base)
    }

    /// The shared (never-mutated) original, e.g. for storing in a cache.
    #[must_use]
    pub fn shared(&self) -> Arc<FusionResult> {
        Arc::clone(&self.base)
    }

    /// `true` once a mutating call has detached a private copy.
    #[must_use]
    pub fn is_detached(&self) -> bool {
        self.own.is_some()
    }

    /// The spatial probability lattice (read-only).
    #[must_use]
    pub fn lattice(&self) -> &RegionLattice {
        self.result().lattice()
    }

    /// The underlying result's value fingerprint (see
    /// [`FusionResult::value_fingerprint`]): equal fingerprints mean
    /// every pure read (region probability, evidence window, best
    /// estimate) answers identically.
    #[must_use]
    pub fn value_fingerprint(&self) -> u64 {
        self.result().value_fingerprint()
    }

    /// The §4.2 region-based query, without mutating anything: Equation 7
    /// evaluated directly against the surviving evidence. Bit-identical
    /// to `FusionResult::region_probability` (insert-then-read), which
    /// stores exactly this value on the inserted node.
    #[must_use]
    pub fn region_probability(&self, region: &Rect) -> f64 {
        self.result().region_probability_fast(region)
    }

    /// [`SharedFusion::region_probability`] classified into a band under
    /// the result's thresholds.
    #[must_use]
    pub fn region_band(&self, region: &Rect) -> ProbabilityBand {
        let p = self.region_probability(region);
        self.result().thresholds().classify(p)
    }

    /// Inserts a query region as a lattice node — on a *private copy* of
    /// the result, detached from the shared original on the first call
    /// (copy-on-write). The returned id is only meaningful against this
    /// view's [`lattice`](SharedFusion::lattice).
    pub fn insert_query_region(&mut self, region: Rect) -> NodeId {
        let own = self
            .own
            .get_or_insert_with(|| Box::new((*self.base).clone()));
        own.lattice_mut().insert_query_region(region)
    }
}

impl From<FusionResult> for SharedFusion {
    fn from(result: FusionResult) -> Self {
        SharedFusion::from_result(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FusionEngine;
    use mw_geometry::Point;
    use mw_model::{SimDuration, SimTime, TemporalDegradation};
    use mw_sensors::{SensorReading, SensorSpec};

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn reading(region: Rect, spec: SensorSpec) -> SensorReading {
        SensorReading {
            sensor_id: "s".into(),
            spec,
            object: "alice".into(),
            glob_prefix: "SC/3".parse().unwrap(),
            region,
            detected_at: SimTime::ZERO,
            time_to_live: SimDuration::from_secs(60.0),
            tdf: TemporalDegradation::None,
            moving: false,
        }
    }

    fn fused() -> FusionResult {
        let engine = FusionEngine::new(r(0.0, 0.0, 500.0, 100.0));
        let readings = vec![
            reading(r(10.0, 10.0, 30.0, 30.0), SensorSpec::rfid_badge(0.8)),
            reading(r(18.0, 18.0, 22.0, 22.0), SensorSpec::ubisense(0.9)),
        ];
        engine.fuse(&readings, SimTime::ZERO)
    }

    #[test]
    fn read_only_probability_matches_insert_then_read() {
        let shared = SharedFusion::from_result(fused());
        let mut fresh = fused();
        for region in [
            r(15.0, 15.0, 25.0, 25.0),
            r(0.0, 0.0, 500.0, 100.0),
            r(300.0, 50.0, 320.0, 70.0),
            r(10.0, 10.0, 30.0, 30.0), // exactly an evidence region
        ] {
            let fast = shared.region_probability(&region);
            let inserted = fresh.region_probability(region).unwrap();
            assert!(
                (fast - inserted).abs() == 0.0,
                "bitwise mismatch for {region:?}: {fast} vs {inserted}"
            );
        }
        assert!(!shared.is_detached(), "read-only path must never clone");
    }

    #[test]
    fn insert_detaches_and_leaves_the_shared_original_untouched() {
        let base = Arc::new(fused());
        let before = base.lattice().len();
        let mut view = SharedFusion::new(Arc::clone(&base));
        let id = view.insert_query_region(r(15.0, 15.0, 25.0, 25.0));
        assert!(view.is_detached());
        assert_eq!(view.lattice().len(), before + 1);
        assert_eq!(base.lattice().len(), before, "shared original unchanged");
        let p_node = view.lattice().probability(id).unwrap();
        let p_fast = SharedFusion::new(base).region_probability(&r(15.0, 15.0, 25.0, 25.0));
        assert!((p_node - p_fast).abs() == 0.0);
    }

    #[test]
    fn second_insert_reuses_the_private_copy() {
        let mut view = SharedFusion::from_result(fused());
        let a = view.insert_query_region(r(1.0, 1.0, 2.0, 2.0));
        let len_after_first = view.lattice().len();
        let b = view.insert_query_region(r(3.0, 3.0, 4.0, 4.0));
        assert_ne!(a, b);
        assert_eq!(view.lattice().len(), len_after_first + 1);
    }
}
