//! A contiguous growable buffer with inline storage for the first `N`
//! elements — the allocation-free backbone of the fuse hot path.
//!
//! The typical fusion pass handles well under eight readings per object
//! (one badge sighting, occasionally a couple of reinforcing sensors),
//! yet the legacy pipeline heap-allocated a dozen `Vec`s per fuse:
//! evidence lists, lattice nodes, per-node parent/child edge lists,
//! conflict survivor sets. [`SmallBuf`] keeps those collections inline
//! on the stack (or inside the owning struct) until they outgrow `N`,
//! at which point it spills to an ordinary `Vec` — same contents, same
//! iteration order, one allocation instead of none, and only for the
//! atypical large case.
//!
//! No `unsafe`: the inline storage is a plain `[T; N]` pre-filled with
//! placeholder values (default or caller-provided), so spilling simply
//! clones the live prefix into the heap vector. All element access goes
//! through [`SmallBuf::as_slice`], which always returns one contiguous
//! slice regardless of which storage is active.

/// A `Vec`-like buffer storing up to `N` elements inline.
///
/// Dereferences to `[T]`, so `len()`, `iter()`, indexing and slice
/// patterns all work as usual. Pushing past `N` moves the contents into
/// a heap `Vec` (one allocation); [`SmallBuf::clear`] returns to inline
/// storage while keeping any spilled capacity for reuse.
#[derive(Clone)]
pub struct SmallBuf<T, const N: usize> {
    /// Number of live elements (inline *or* spilled).
    len: usize,
    /// Inline storage; only `..len` is meaningful while not spilled.
    inline: [T; N],
    /// Spill storage. Invariant: when non-empty it holds *all* live
    /// elements and `inline` contents are stale placeholders.
    spill: Vec<T>,
}

impl<T: Default, const N: usize> Default for SmallBuf<T, N> {
    fn default() -> Self {
        SmallBuf {
            len: 0,
            inline: std::array::from_fn(|_| T::default()),
            spill: Vec::new(),
        }
    }
}

impl<T, const N: usize> SmallBuf<T, N> {
    /// An empty buffer whose inline slots are pre-filled with clones of
    /// `fill` — for element types without a `Default` (e.g. `Arc<str>`
    /// sensor ids, where the fill is a clone of one shared empty id).
    #[must_use]
    pub fn filled(fill: &T) -> Self
    where
        T: Clone,
    {
        SmallBuf {
            len: 0,
            inline: std::array::from_fn(|_| fill.clone()),
            spill: Vec::new(),
        }
    }

    /// Number of live elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once the buffer has outgrown its inline storage.
    #[must_use]
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// The live elements as one contiguous slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Mutable view of the live elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }

    /// Appends an element, spilling to the heap when the inline storage
    /// is full. Spilling clones the inline prefix once; the stale inline
    /// placeholders are never read again.
    pub fn push(&mut self, value: T)
    where
        T: Clone,
    {
        if self.spill.is_empty() {
            if self.len < N {
                self.inline[self.len] = value;
                self.len += 1;
                return;
            }
            self.spill.reserve(self.len + 1);
            self.spill.extend_from_slice(&self.inline[..self.len]);
        }
        self.spill.push(value);
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T>
    where
        T: Clone,
    {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.spill.is_empty() {
            Some(self.inline[self.len].clone())
        } else {
            self.spill.pop()
        }
    }

    /// Empties the buffer. Returns to inline storage; spilled heap
    /// capacity is kept for reuse (steady-state clears free nothing).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }
}

impl<T, const N: usize> std::ops::Deref for SmallBuf<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for SmallBuf<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for SmallBuf<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallBuf<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for SmallBuf<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<&[T]> for SmallBuf<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallBuf<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Clone, const N: usize> Extend<T> for SmallBuf<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity() {
        let mut buf: SmallBuf<u32, 4> = SmallBuf::default();
        assert!(buf.is_empty());
        for i in 0..4 {
            buf.push(i);
        }
        assert!(!buf.spilled());
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_preserving_order() {
        let mut buf: SmallBuf<u32, 2> = SmallBuf::default();
        for i in 0..5 {
            buf.push(i);
        }
        assert!(buf.spilled());
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn clear_returns_to_inline() {
        let mut buf: SmallBuf<u32, 2> = SmallBuf::default();
        for i in 0..5 {
            buf.push(i);
        }
        buf.clear();
        assert!(buf.is_empty());
        buf.push(9);
        assert!(!buf.spilled(), "clear must fall back to inline storage");
        assert_eq!(buf.as_slice(), &[9]);
    }

    #[test]
    fn pop_both_storages() {
        let mut buf: SmallBuf<u32, 2> = SmallBuf::default();
        buf.push(1);
        buf.push(2);
        buf.push(3);
        assert_eq!(buf.pop(), Some(3));
        assert_eq!(buf.pop(), Some(2));
        assert_eq!(buf.pop(), Some(1));
        assert_eq!(buf.pop(), None);
    }

    #[test]
    fn filled_works_without_default() {
        let fill: std::sync::Arc<str> = "".into();
        let mut buf: SmallBuf<std::sync::Arc<str>, 3> = SmallBuf::filled(&fill);
        buf.push("a".into());
        buf.push("b".into());
        assert_eq!(buf.len(), 2);
        assert_eq!(&*buf[0], "a");
    }

    #[test]
    fn compares_with_vec() {
        let mut buf: SmallBuf<usize, 4> = SmallBuf::default();
        buf.push(7);
        buf.push(8);
        assert_eq!(buf, vec![7, 8]);
    }

    #[test]
    fn mutable_slice_access() {
        let mut buf: SmallBuf<u32, 4> = SmallBuf::default();
        buf.push(1);
        buf.push(2);
        buf.as_mut_slice()[0] = 10;
        assert_eq!(buf.as_slice(), &[10, 2]);
    }
}
