//! Property-based tests for the fusion algorithm's invariants.

use mw_fusion::bayes::{
    posterior_contained_outer, posterior_eq7_as_published, posterior_general, posterior_single,
    SensorEvidence,
};
use mw_fusion::{BandThresholds, FusionEngine, RegionLattice};
use mw_geometry::{Point, Rect};
use mw_model::{SimDuration, SimTime, TemporalDegradation};
use mw_sensors::{SensorReading, SensorSpec};
use proptest::prelude::*;

fn universe() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 100.0))
}

fn rect_in_universe() -> impl Strategy<Value = Rect> {
    (0.0..480.0f64, 0.0..80.0f64, 1.0..20.0f64, 1.0..20.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(Point::new(x, y), Point::new(x + w, y + h)))
}

fn evidence() -> impl Strategy<Value = SensorEvidence> {
    (rect_in_universe(), 0.5..1.0f64, 0.0001..0.1f64)
        .prop_map(|(r, hit, fp)| SensorEvidence::new(r, hit, fp))
}

proptest! {
    #[test]
    fn posterior_always_in_unit_interval(
        ev in proptest::collection::vec(evidence(), 1..8),
        region in rect_in_universe(),
    ) {
        let p = posterior_general(&ev, &region, &universe());
        prop_assert!((0.0..=1.0).contains(&p), "general {p}");
        let p7 = posterior_eq7_as_published(&ev, &region, &universe());
        prop_assert!((0.0..=1.0).contains(&p7), "published {p7}");
    }

    #[test]
    fn general_reduces_to_eq5(e in evidence()) {
        let general = posterior_general(std::slice::from_ref(&e), &e.region, &universe());
        let eq5 = posterior_single(&e, &universe());
        prop_assert!((general - eq5).abs() < 1e-9, "general={general} eq5={eq5}");
    }

    #[test]
    fn general_reduces_to_eq4_for_nested(
        outer in rect_in_universe(),
        fx in 0.1..0.9f64, fy in 0.1..0.9f64, fw in 0.05..0.5f64,
        hit1 in 0.5..1.0f64, fp1 in 0.0001..0.1f64,
        hit2 in 0.5..1.0f64, fp2 in 0.0001..0.1f64,
    ) {
        // Construct an inner rectangle strictly inside `outer`.
        let w = outer.width() * fw.min(1.0 - fx);
        let h = outer.height() * fw.min(1.0 - fy);
        let min = Point::new(outer.min().x + outer.width() * fx, outer.min().y + outer.height() * fy);
        let inner_rect = Rect::new(min, Point::new(min.x + w, min.y + h));
        prop_assume!(outer.contains_rect(&inner_rect) && inner_rect.area() > 0.0);
        let inner = SensorEvidence::new(inner_rect, hit1, fp1);
        let outer_e = SensorEvidence::new(outer, hit2, fp2);
        let general = posterior_general(&[inner, outer_e], &outer, &universe());
        let eq4 = posterior_contained_outer(&inner, &outer_e, &universe());
        prop_assert!((general - eq4).abs() < 1e-9, "general={general} eq4={eq4}");
    }

    #[test]
    fn posterior_monotone_under_region_growth(
        e in evidence(),
        grow in 0.1..30.0f64,
    ) {
        let small = e.region;
        let large_unclipped = small.inflated(grow);
        let large = large_unclipped.intersection(&universe()).unwrap_or(small);
        prop_assume!(large.contains_rect(&small));
        let p_small = posterior_general(std::slice::from_ref(&e), &small, &universe());
        let p_large = posterior_general(std::slice::from_ref(&e), &large, &universe());
        prop_assert!(p_large >= p_small - 1e-9, "small={p_small} large={p_large}");
    }

    #[test]
    fn reinforcement_when_hit_exceeds_false_positive(
        outer in rect_in_universe(),
        hit1 in 0.6..1.0f64, fp1 in 0.0001..0.1f64,
        hit2 in 0.5..1.0f64, fp2 in 0.0001..0.1f64,
    ) {
        // Inner rectangle: the center quarter of the outer one.
        let c = outer.center();
        let inner_rect = Rect::from_center(c, outer.width() / 2.0, outer.height() / 2.0);
        prop_assume!(hit1 > fp1);
        let inner = SensorEvidence::new(inner_rect, hit1, fp1);
        let outer_e = SensorEvidence::new(outer, hit2, fp2);
        let both = posterior_general(&[inner, outer_e], &outer, &universe());
        let alone = posterior_general(&[outer_e], &outer, &universe());
        prop_assert!(both >= alone - 1e-9, "both={both} alone={alone}");
    }

    #[test]
    fn lattice_posteriors_respect_containment_order(
        ev in proptest::collection::vec(evidence(), 1..6),
    ) {
        let lattice = RegionLattice::build(universe(), ev.clone()).unwrap();
        // Every child region is contained in its parents. The *exact*
        // posterior is monotone along containment edges; the lattice's
        // stored posteriors use the paper's region-conditional
        // approximation (its Equation 1 assumption), which is monotone in
        // the single-sensor case but may deviate slightly for n >= 2 —
        // see bayes.rs module docs.
        for id in lattice.region_nodes() {
            let region = lattice.region(id).unwrap();
            let p = lattice.probability(id).unwrap();
            prop_assert!((0.0..=1.0).contains(&p));
            for &parent in lattice.parents(id).unwrap() {
                if parent == lattice.top() {
                    continue;
                }
                let parent_region = lattice.region(parent).unwrap();
                prop_assert!(parent_region.contains_rect(&region));
                // Exact Bayes is monotone.
                let exact_child =
                    mw_fusion::bayes::posterior_exact(&ev, &region, &universe());
                let exact_parent =
                    mw_fusion::bayes::posterior_exact(&ev, &parent_region, &universe());
                prop_assert!(
                    exact_parent >= exact_child - 1e-9,
                    "exact parent {exact_parent} < child {exact_child}"
                );
                // Paper-faithful formula: monotone for one sensor.
                if ev.len() == 1 {
                    let pp = lattice.probability(parent).unwrap();
                    prop_assert!(pp >= p - 1e-9, "parent {pp} < child {p}");
                }
            }
        }
    }

    #[test]
    fn exact_posterior_monotone_under_growth(
        ev in proptest::collection::vec(evidence(), 1..6),
        seed in rect_in_universe(),
        grow in 1.0..50.0f64,
    ) {
        let small = seed;
        let large = small.inflated(grow).intersection(&universe()).unwrap_or(small);
        prop_assume!(large.contains_rect(&small));
        let p_small = mw_fusion::bayes::posterior_exact(&ev, &small, &universe());
        let p_large = mw_fusion::bayes::posterior_exact(&ev, &large, &universe());
        prop_assert!(p_large >= p_small - 1e-9, "{p_large} < {p_small}");
    }

    #[test]
    fn exact_and_general_posteriors_in_range_and_correlated(
        ev in proptest::collection::vec(evidence(), 1..6),
        region in rect_in_universe(),
    ) {
        let exact = mw_fusion::bayes::posterior_exact(&ev, &region, &universe());
        let general = posterior_general(&ev, &region, &universe());
        prop_assert!((0.0..=1.0).contains(&exact));
        // Both near-zero or both non-trivial: they never disagree about
        // impossibility.
        if general < 1e-12 {
            prop_assert!(exact < 1e-6, "general 0 but exact {exact}");
        }
    }

    #[test]
    fn lattice_minimal_regions_have_no_region_children(
        ev in proptest::collection::vec(evidence(), 1..6),
    ) {
        let lattice = RegionLattice::build(universe(), ev).unwrap();
        for id in lattice.minimal_regions() {
            let children = lattice.children(id).unwrap();
            prop_assert_eq!(children, &[lattice.bottom()]);
        }
    }

    #[test]
    fn normalized_distribution_sums_to_one_when_nonempty(
        ev in proptest::collection::vec(evidence(), 1..6),
    ) {
        let lattice = RegionLattice::build(universe(), ev).unwrap();
        let dist = lattice.normalized_distribution();
        if !dist.is_empty() {
            let total: f64 = dist.iter().map(|(_, w)| w).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for (_, w) in dist {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&w));
            }
        }
    }

    #[test]
    fn band_classification_total_and_monotone(
        ps in proptest::collection::vec(0.0..=1.0f64, 0..6),
        a in 0.0..=1.0f64,
        b in 0.0..=1.0f64,
    ) {
        let t = BandThresholds::from_sensor_accuracies(&ps);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.classify(lo) <= t.classify(hi));
    }

    #[test]
    fn engine_fuse_never_panics_and_estimate_is_minimal(
        rects in proptest::collection::vec(rect_in_universe(), 0..6),
        carried in proptest::bool::ANY,
    ) {
        let carry = if carried { 1.0 } else { 0.8 };
        let readings: Vec<SensorReading> = rects
            .iter()
            .map(|&region| SensorReading {
                sensor_id: "s".into(),
                spec: SensorSpec::ubisense(carry),
                object: "alice".into(),
                glob_prefix: "SC/3".parse().unwrap(),
                region,
                detected_at: SimTime::ZERO,
                time_to_live: SimDuration::from_secs(100.0),
                tdf: TemporalDegradation::None,
                moving: false,
            })
            .collect();
        let engine = FusionEngine::new(universe());
        let result = engine.fuse(&readings, SimTime::from_secs(1.0));
        if let Some(est) = result.best_estimate() {
            prop_assert!((0.0..=1.0).contains(&est.probability));
            // The estimate's region is one of the lattice's minimal regions.
            let minimal: Vec<Rect> = result
                .lattice()
                .minimal_regions()
                .into_iter()
                .map(|id| result.lattice().region(id).unwrap())
                .collect();
            prop_assert!(minimal.contains(&est.region));
        } else {
            prop_assert!(rects.is_empty());
        }
    }

    #[test]
    fn fusion_over_any_healthy_subset_stays_probabilistic(
        rects in proptest::collection::vec(rect_in_universe(), 1..8),
        mask in proptest::collection::vec(proptest::bool::ANY, 1..8),
    ) {
        // Distinct sensor per reading, a random subset quarantined — the
        // shape the supervision layer hands the engine when sensors fail.
        let readings: Vec<SensorReading> = rects
            .iter()
            .enumerate()
            .map(|(i, &region)| SensorReading {
                sensor_id: format!("s{i}").as_str().into(),
                spec: SensorSpec::ubisense(0.9),
                object: "alice".into(),
                glob_prefix: "SC/3".parse().unwrap(),
                region,
                detected_at: SimTime::ZERO,
                time_to_live: SimDuration::from_secs(100.0),
                tdf: TemporalDegradation::None,
                moving: false,
            })
            .collect();
        let excluded: std::collections::HashSet<_> = readings
            .iter()
            .enumerate()
            .filter(|(i, _)| mask.get(*i).copied().unwrap_or(false))
            .map(|(_, r)| r.sensor_id.clone())
            .collect();
        let engine = FusionEngine::new(universe());
        let result = engine.fuse_excluding(&readings, SimTime::from_secs(1.0), &excluded);
        // Quarantined sensors never reach the lattice, in any role.
        for id in result.kept_sensors().iter().chain(result.discarded_sensors()) {
            prop_assert!(!excluded.contains(id), "excluded sensor {id:?} was fused");
        }
        if excluded.len() == readings.len() {
            prop_assert!(result.best_estimate().is_none());
        }
        if let Some(est) = result.best_estimate() {
            prop_assert!((0.0..=1.0).contains(&est.probability), "p {}", est.probability);
        }
        for id in result.lattice().region_nodes() {
            let p = result.lattice().probability(id).unwrap();
            prop_assert!((0.0..=1.0).contains(&p), "lattice p {p}");
        }
    }

    #[test]
    fn conflict_resolution_partitions_input(
        rects in proptest::collection::vec(rect_in_universe(), 1..8),
    ) {
        let readings: Vec<SensorReading> = rects
            .iter()
            .map(|&region| SensorReading {
                sensor_id: "s".into(),
                spec: SensorSpec::rfid_badge(0.8),
                object: "alice".into(),
                glob_prefix: "SC/3".parse().unwrap(),
                region,
                detected_at: SimTime::ZERO,
                time_to_live: SimDuration::from_secs(100.0),
                tdf: TemporalDegradation::None,
                moving: false,
            })
            .collect();
        let out = mw_fusion::conflict::resolve(&readings, &universe(), SimTime::ZERO);
        // kept and discarded partition the indices.
        let mut all: Vec<usize> = out.kept.iter().chain(out.discarded.iter()).copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..readings.len()).collect();
        prop_assert_eq!(all, expected);
        prop_assert!(!out.kept.is_empty());
        // Survivors form one connected component: every kept rect
        // intersects at least one other kept rect (unless alone).
        if out.kept.len() > 1 {
            for &i in &out.kept {
                let touches = out
                    .kept
                    .iter()
                    .any(|&j| j != i && readings[i].region.intersects(&readings[j].region));
                prop_assert!(touches, "kept reading {i} is isolated");
            }
        }
    }
}
