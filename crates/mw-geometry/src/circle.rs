use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Point, Rect};

/// A disk: center plus radius.
///
/// Sensors with distance resolution report disks — e.g. Ubisense returns a
/// location accurate to a 6-inch radius 95% of the time, GPS to its
/// estimated accuracy radius (§6 of the paper). MiddleWhere immediately
/// converts these to MBRs for the fusion lattice; [`Circle::mbr`] is that
/// conversion.
///
/// # Example
///
/// ```
/// use mw_geometry::{Circle, Point};
///
/// let reading = Circle::new(Point::new(41.0, 3.0), 0.5);
/// let mbr = reading.mbr();
/// assert_eq!(mbr.area(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the disk.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a disk at `center` with `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    #[must_use]
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "radius must be finite and non-negative"
        );
        Circle { center, radius }
    }

    /// Area of the disk.
    #[must_use]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Minimum bounding rectangle: the square of side `2·radius` centered
    /// on the disk.
    #[must_use]
    pub fn mbr(&self) -> Rect {
        Rect::from_center(self.center, 2.0 * self.radius, 2.0 * self.radius)
    }

    /// Returns `true` when `p` is inside or on the disk.
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Returns `true` when the disks share at least one point.
    #[must_use]
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(other.center) <= r * r
    }

    /// Returns `true` when the disk and the rectangle share at least one
    /// point.
    #[must_use]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        rect.distance_to_point(self.center) <= self.radius
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle({}, r={})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_is_tight_square() {
        let c = Circle::new(Point::new(10.0, 20.0), 3.0);
        let m = c.mbr();
        assert_eq!(m.min(), Point::new(7.0, 17.0));
        assert_eq!(m.max(), Point::new(13.0, 23.0));
        assert_eq!(m.area(), 36.0);
    }

    #[test]
    fn mbr_area_exceeds_disk_area() {
        // The MBR over-approximates by a factor 4/pi.
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!(c.mbr().area() > c.area());
        assert!((c.mbr().area() / c.area() - 4.0 / std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let c = Circle::new(Point::ORIGIN, 5.0);
        assert!(c.contains_point(Point::new(3.0, 4.0))); // on boundary
        assert!(c.contains_point(Point::new(1.0, 1.0)));
        assert!(!c.contains_point(Point::new(4.0, 4.0)));
    }

    #[test]
    fn circle_circle_intersection() {
        let a = Circle::new(Point::ORIGIN, 2.0);
        let b = Circle::new(Point::new(3.0, 0.0), 1.0); // touching
        assert!(a.intersects(&b));
        let c = Circle::new(Point::new(4.0, 0.0), 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn circle_rect_intersection() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let near = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        assert!(c.intersects_rect(&near));
        let far = Rect::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(!c.intersects_rect(&far));
        // Diagonal gap: rect corner at (1,1), distance sqrt(2) > 1.
        let corner = Rect::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert!(!c.intersects_rect(&corner));
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn negative_radius_panics() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn zero_radius_is_a_point() {
        let c = Circle::new(Point::new(1.0, 1.0), 0.0);
        assert!(c.contains_point(Point::new(1.0, 1.0)));
        assert_eq!(c.area(), 0.0);
        assert!(c.mbr().is_degenerate());
    }

    #[test]
    fn display() {
        let c = Circle::new(Point::new(1.0, 2.0), 3.0);
        assert_eq!(c.to_string(), "circle((1, 2), r=3)");
    }
}
