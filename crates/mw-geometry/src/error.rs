use std::fmt;

/// Errors produced by geometric constructions and conversions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeometryError {
    /// A polygon was constructed with fewer than three vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        vertices: usize,
    },
    /// A rectangle was constructed with non-finite or inverted bounds.
    InvalidRect {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// A coordinate value was not finite.
    NonFiniteCoordinate,
    /// A coordinate frame referenced by id does not exist in the tree.
    UnknownFrame {
        /// The missing frame id.
        id: u32,
    },
    /// Two frames do not belong to the same tree, so no conversion exists.
    DisconnectedFrames {
        /// Source frame id.
        from: u32,
        /// Destination frame id.
        to: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::DegeneratePolygon { vertices } => {
                write!(f, "polygon needs at least 3 vertices, got {vertices}")
            }
            GeometryError::InvalidRect { reason } => {
                write!(f, "invalid rectangle: {reason}")
            }
            GeometryError::NonFiniteCoordinate => {
                write!(f, "coordinate value was not finite")
            }
            GeometryError::UnknownFrame { id } => {
                write!(f, "unknown coordinate frame id {id}")
            }
            GeometryError::DisconnectedFrames { from, to } => {
                write!(f, "no conversion path between frames {from} and {to}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = GeometryError::DegeneratePolygon { vertices: 2 };
        let msg = err.to_string();
        assert!(msg.contains("3 vertices"));
        assert!(msg.contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
