//! Hierarchical coordinate frames.
//!
//! §3 of the paper: "Each building, floor and room has its own coordinate
//! axes and a point of origin. Locations within a room can be expressed
//! with respect to the coordinate system of the room, the floor or the
//! building. MiddleWhere stores the relationships between the different
//! coordinate axes, and hence coordinates can be easily converted from one
//! system to another."
//!
//! A [`FrameTree`] holds frames in a rooted hierarchy (the root is usually
//! a building or a campus). Every non-root frame carries a rigid
//! [`Transform2`] mapping its local coordinates into its parent's
//! coordinates. Conversion between any two frames walks up to the root.
//!
//! # Example
//!
//! ```
//! use mw_geometry::{frame::{FrameTree, Transform2}, Point, Vec2};
//!
//! let mut tree = FrameTree::new("SC");
//! let floor3 = tree.add_frame("3", tree.root(), Transform2::translation(Vec2::new(0.0, 0.0)))?;
//! let room = tree.add_frame("3216", floor3, Transform2::translation(Vec2::new(45.0, 12.0)))?;
//!
//! // (12, 3) in the room is (57, 15) in building coordinates.
//! let p = tree.convert(Point::new(12.0, 3.0), room, tree.root())?;
//! assert_eq!(p, Point::new(57.0, 15.0));
//! # Ok::<(), mw_geometry::GeometryError>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GeometryError, Point, Rect, Vec2};

/// Identifier of a frame within one [`FrameTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId(pub(crate) u32);

impl FrameId {
    /// The raw index of the frame inside its tree.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{}", self.0)
    }
}

/// A rigid 2-D transform: rotation by `theta` followed by translation.
///
/// Maps a point `p` in the child frame to `R(theta)·p + t` in the parent
/// frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transform2 {
    /// Counter-clockwise rotation angle in radians.
    pub rotation: f64,
    /// Translation applied after the rotation.
    pub translation: Vec2,
}

impl Transform2 {
    /// The identity transform.
    pub const IDENTITY: Transform2 = Transform2 {
        rotation: 0.0,
        translation: Vec2::ZERO,
    };

    /// Creates a transform with `rotation` (radians, counter-clockwise)
    /// then `translation`.
    #[must_use]
    pub const fn new(rotation: f64, translation: Vec2) -> Self {
        Transform2 {
            rotation,
            translation,
        }
    }

    /// A pure translation.
    #[must_use]
    pub const fn translation(t: Vec2) -> Self {
        Transform2::new(0.0, t)
    }

    /// A pure rotation.
    #[must_use]
    pub const fn rotation(radians: f64) -> Self {
        Transform2::new(radians, Vec2::ZERO)
    }

    /// Applies the transform to a point.
    #[must_use]
    pub fn apply(&self, p: Point) -> Point {
        let rotated = p.to_vec2().rotated(self.rotation);
        Point::new(rotated.x, rotated.y) + self.translation
    }

    /// The inverse transform.
    #[must_use]
    pub fn inverse(&self) -> Transform2 {
        let inv_rot = -self.rotation;
        let t = (-self.translation).rotated(inv_rot);
        Transform2::new(inv_rot, t)
    }

    /// Composition: `self.compose(other)` first applies `other`, then
    /// `self`.
    #[must_use]
    pub fn compose(&self, other: &Transform2) -> Transform2 {
        Transform2::new(
            self.rotation + other.rotation,
            other.translation.rotated(self.rotation) + self.translation,
        )
    }
}

impl Default for Transform2 {
    fn default() -> Self {
        Transform2::IDENTITY
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct FrameNode {
    name: String,
    parent: Option<FrameId>,
    /// Transform from this frame's coordinates to the parent's.
    to_parent: Transform2,
}

/// A single coordinate frame, viewed through [`FrameTree::frame`].
#[derive(Debug, Clone, Copy)]
pub struct CoordinateFrame<'a> {
    id: FrameId,
    node: &'a FrameNode,
}

impl CoordinateFrame<'_> {
    /// The frame's id.
    #[must_use]
    pub fn id(&self) -> FrameId {
        self.id
    }

    /// The frame's name (e.g. a room number).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.node.name
    }

    /// The parent frame, or `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<FrameId> {
        self.node.parent
    }

    /// The transform into the parent frame (identity for the root).
    #[must_use]
    pub fn to_parent(&self) -> Transform2 {
        self.node.to_parent
    }
}

/// A rooted hierarchy of coordinate frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameTree {
    nodes: Vec<FrameNode>,
}

impl FrameTree {
    /// Creates a tree with a single root frame named `root_name`.
    #[must_use]
    pub fn new(root_name: impl Into<String>) -> Self {
        FrameTree {
            nodes: vec![FrameNode {
                name: root_name.into(),
                parent: None,
                to_parent: Transform2::IDENTITY,
            }],
        }
    }

    /// The root frame's id.
    #[must_use]
    pub fn root(&self) -> FrameId {
        FrameId(0)
    }

    /// Number of frames in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false`: a tree has at least its root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Adds a frame under `parent`; `to_parent` maps the new frame's local
    /// coordinates into `parent` coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownFrame`] when `parent` does not exist.
    pub fn add_frame(
        &mut self,
        name: impl Into<String>,
        parent: FrameId,
        to_parent: Transform2,
    ) -> Result<FrameId, GeometryError> {
        self.check(parent)?;
        let id = FrameId(self.nodes.len() as u32);
        self.nodes.push(FrameNode {
            name: name.into(),
            parent: Some(parent),
            to_parent,
        });
        Ok(id)
    }

    /// Looks up a frame by id.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownFrame`] when the id does not exist.
    pub fn frame(&self, id: FrameId) -> Result<CoordinateFrame<'_>, GeometryError> {
        self.check(id)?;
        Ok(CoordinateFrame {
            id,
            node: &self.nodes[id.0 as usize],
        })
    }

    /// Finds the first frame with the given name (names need not be
    /// globally unique; rooms are unique within their floor in practice).
    #[must_use]
    pub fn find_by_name(&self, name: &str) -> Option<FrameId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| FrameId(i as u32))
    }

    /// Transform mapping `from`-frame coordinates into `to`-frame
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownFrame`] when either frame does not
    /// exist.
    pub fn transform_between(
        &self,
        from: FrameId,
        to: FrameId,
    ) -> Result<Transform2, GeometryError> {
        let from_root = self.to_root_transform(from)?;
        let to_root = self.to_root_transform(to)?;
        Ok(to_root.inverse().compose(&from_root))
    }

    /// Converts a point from `from`-frame coordinates to `to`-frame
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownFrame`] when either frame does not
    /// exist.
    pub fn convert(&self, p: Point, from: FrameId, to: FrameId) -> Result<Point, GeometryError> {
        Ok(self.transform_between(from, to)?.apply(p))
    }

    /// Converts a rectangle between frames. For rotated frames the result
    /// is the MBR of the transformed corners, consistent with the paper's
    /// MBR-everywhere approach.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownFrame`] when either frame does not
    /// exist.
    pub fn convert_rect(
        &self,
        rect: &Rect,
        from: FrameId,
        to: FrameId,
    ) -> Result<Rect, GeometryError> {
        let t = self.transform_between(from, to)?;
        let corners = rect.corners().map(|c| t.apply(c));
        Ok(Rect::bounding(corners).expect("four corners"))
    }

    /// All ancestors of `id`, nearest first, ending with the root.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::UnknownFrame`] when the id does not exist.
    pub fn ancestors(&self, id: FrameId) -> Result<Vec<FrameId>, GeometryError> {
        self.check(id)?;
        let mut out = Vec::new();
        let mut cur = self.nodes[id.0 as usize].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p.0 as usize].parent;
        }
        Ok(out)
    }

    fn to_root_transform(&self, id: FrameId) -> Result<Transform2, GeometryError> {
        self.check(id)?;
        let mut t = Transform2::IDENTITY;
        let mut cur = id;
        loop {
            let node = &self.nodes[cur.0 as usize];
            t = node.to_parent.compose(&t);
            match node.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        Ok(t)
    }

    fn check(&self, id: FrameId) -> Result<(), GeometryError> {
        if (id.0 as usize) < self.nodes.len() {
            Ok(())
        } else {
            Err(GeometryError::UnknownFrame { id: id.0 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn close(a: Point, b: Point) -> bool {
        (a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9
    }

    #[test]
    fn transform_apply_and_inverse() {
        let t = Transform2::new(FRAC_PI_2, Vec2::new(10.0, 0.0));
        let p = Point::new(1.0, 0.0);
        let q = t.apply(p);
        assert!(close(q, Point::new(10.0, 1.0)));
        assert!(close(t.inverse().apply(q), p));
    }

    #[test]
    fn compose_order() {
        let rot = Transform2::rotation(FRAC_PI_2);
        let trans = Transform2::translation(Vec2::new(5.0, 0.0));
        // compose: first translate, then rotate.
        let t = rot.compose(&trans);
        let q = t.apply(Point::new(0.0, 0.0));
        assert!(close(q, Point::new(0.0, 5.0)));
        // Other order: first rotate, then translate.
        let u = trans.compose(&rot);
        let q2 = u.apply(Point::new(0.0, 0.0));
        assert!(close(q2, Point::new(5.0, 0.0)));
    }

    #[test]
    fn building_floor_room_hierarchy() {
        let mut tree = FrameTree::new("SC");
        let floor = tree
            .add_frame("3", tree.root(), Transform2::IDENTITY)
            .unwrap();
        let room = tree
            .add_frame(
                "3216",
                floor,
                Transform2::translation(Vec2::new(45.0, 12.0)),
            )
            .unwrap();
        // Room-local (12, 3) -> building (57, 15).
        let p = tree
            .convert(Point::new(12.0, 3.0), room, tree.root())
            .unwrap();
        assert!(close(p, Point::new(57.0, 15.0)));
        // And back.
        let q = tree.convert(p, tree.root(), room).unwrap();
        assert!(close(q, Point::new(12.0, 3.0)));
    }

    #[test]
    fn sibling_conversion() {
        let mut tree = FrameTree::new("floor");
        let a = tree
            .add_frame(
                "roomA",
                tree.root(),
                Transform2::translation(Vec2::new(10.0, 0.0)),
            )
            .unwrap();
        let b = tree
            .add_frame(
                "roomB",
                tree.root(),
                Transform2::translation(Vec2::new(30.0, 5.0)),
            )
            .unwrap();
        // Origin of room A is (-20, -5) in room B coordinates.
        let p = tree.convert(Point::ORIGIN, a, b).unwrap();
        assert!(close(p, Point::new(-20.0, -5.0)));
    }

    #[test]
    fn rotated_room() {
        let mut tree = FrameTree::new("floor");
        let room = tree
            .add_frame(
                "diag",
                tree.root(),
                Transform2::new(FRAC_PI_2, Vec2::new(100.0, 50.0)),
            )
            .unwrap();
        let p = tree
            .convert(Point::new(1.0, 0.0), room, tree.root())
            .unwrap();
        assert!(close(p, Point::new(100.0, 51.0)));
    }

    #[test]
    fn rect_conversion_translation() {
        let mut tree = FrameTree::new("b");
        let f = tree
            .add_frame(
                "f",
                tree.root(),
                Transform2::translation(Vec2::new(5.0, 5.0)),
            )
            .unwrap();
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let out = tree.convert_rect(&r, f, tree.root()).unwrap();
        assert_eq!(out, Rect::new(Point::new(5.0, 5.0), Point::new(7.0, 7.0)));
    }

    #[test]
    fn rect_conversion_rotation_gives_mbr() {
        let mut tree = FrameTree::new("b");
        let f = tree
            .add_frame("f", tree.root(), Transform2::rotation(FRAC_PI_2))
            .unwrap();
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        let out = tree.convert_rect(&r, f, tree.root()).unwrap();
        // 90° rotation maps [0,4]x[0,2] to [-2,0]x[0,4].
        assert!(close(out.min(), Point::new(-2.0, 0.0)));
        assert!(close(out.max(), Point::new(0.0, 4.0)));
    }

    #[test]
    fn unknown_frame_errors() {
        let tree = FrameTree::new("b");
        let bogus = FrameId(99);
        assert!(matches!(
            tree.frame(bogus),
            Err(GeometryError::UnknownFrame { id: 99 })
        ));
        assert!(tree.convert(Point::ORIGIN, bogus, tree.root()).is_err());
    }

    #[test]
    fn ancestors_chain() {
        let mut tree = FrameTree::new("SC");
        let f = tree
            .add_frame("3", tree.root(), Transform2::IDENTITY)
            .unwrap();
        let r = tree.add_frame("3216", f, Transform2::IDENTITY).unwrap();
        assert_eq!(tree.ancestors(r).unwrap(), vec![f, tree.root()]);
        assert_eq!(tree.ancestors(tree.root()).unwrap(), vec![]);
    }

    #[test]
    fn find_by_name() {
        let mut tree = FrameTree::new("SC");
        let f = tree
            .add_frame("3", tree.root(), Transform2::IDENTITY)
            .unwrap();
        assert_eq!(tree.find_by_name("3"), Some(f));
        assert_eq!(tree.find_by_name("SC"), Some(tree.root()));
        assert_eq!(tree.find_by_name("nope"), None);
    }

    #[test]
    fn frame_accessors() {
        let mut tree = FrameTree::new("SC");
        let f = tree
            .add_frame(
                "3",
                tree.root(),
                Transform2::translation(Vec2::new(1.0, 2.0)),
            )
            .unwrap();
        let view = tree.frame(f).unwrap();
        assert_eq!(view.name(), "3");
        assert_eq!(view.parent(), Some(tree.root()));
        assert_eq!(view.to_parent().translation, Vec2::new(1.0, 2.0));
        assert_eq!(view.id(), f);
        assert_eq!(tree.len(), 2);
    }
}
