//! Geometry substrate for the MiddleWhere reproduction.
//!
//! The paper models the physical world as points, lines and polygons stored
//! in a spatial database (PostGIS in the original). This crate provides the
//! geometric kernel that the rest of the workspace is built on:
//!
//! - [`Point`] / [`Point3`] — 2-D and 3-D coordinates,
//! - [`Segment`] — line segments (doors, walls),
//! - [`Rect`] — axis-aligned minimum bounding rectangles (MBRs), the
//!   workhorse of the fusion algorithm (§4.1.2 of the paper),
//! - [`Polygon`] — room/corridor outlines with exact predicates,
//! - [`Circle`] — sensor coverage disks, convertible to MBRs,
//! - [`frame`] — hierarchical coordinate frames (building/floor/room) with
//!   conversions between them (§3 of the paper),
//! - [`rtree`] — a Guttman R-tree (the paper's reference \[4\]) used by the
//!   spatial database for window and nearest-neighbour queries.
//!
//! # Example
//!
//! ```
//! use mw_geometry::{Point, Rect};
//!
//! let a = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
//! let b = Rect::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
//! let c = a.intersection(&b).expect("rectangles overlap");
//! assert_eq!(c.area(), 25.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod error;
pub mod frame;
mod point;
mod polygon;
mod rect;
pub mod rtree;
mod segment;

pub use circle::Circle;
pub use error::GeometryError;
pub use frame::{CoordinateFrame, FrameId, FrameTree, Transform2};
pub use point::{Point, Point3, Vec2};
pub use polygon::Polygon;
pub use rect::Rect;
pub use rtree::RTree;
pub use segment::Segment;

/// Tolerance used by approximate floating-point comparisons in this crate.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floating point values are within a relative
/// [`EPSILON`] of each other.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON * (1.0 + a.abs().max(b.abs()))
}
