use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A 2-D point in some coordinate frame.
///
/// MiddleWhere reasons about the floor plane: sensor rectangles, room
/// polygons and movement traces are all 2-D. Vertical information is kept at
/// the model layer via [`Point3`].
///
/// # Example
///
/// ```
/// use mw_geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    #[must_use]
    pub fn distance_sq(self, other: Point) -> f64 {
        let d = self - other;
        d.dot(d)
    }

    /// Midpoint of the segment from `self` to `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Returns `true` when both coordinates are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Converts to a vector from the origin.
    #[must_use]
    pub fn to_vec2(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

/// A 2-D displacement vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector `(x, y)`.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Dot product with `other`.
    #[must_use]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the z-component of the 3-D cross product). The
    /// sign encodes orientation: positive when `other` is counter-clockwise
    /// from `self`.
    #[must_use]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    #[must_use]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns a vector with the same direction and unit length.
    ///
    /// Returns [`Vec2::ZERO`] for the zero vector.
    #[must_use]
    pub fn normalized(self) -> Vec2 {
        let len = self.length();
        if len == 0.0 {
            Vec2::ZERO
        } else {
            self / len
        }
    }

    /// Rotates the vector counter-clockwise by `radians`.
    #[must_use]
    pub fn rotated(self, radians: f64) -> Vec2 {
        let (sin, cos) = radians.sin_cos();
        Vec2::new(self.x * cos - self.y * sin, self.x * sin + self.y * cos)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

/// A 3-D point, used by the location model for GLOB coordinates such as
/// `SC/3/3216/(12,3,4)`.
///
/// The fusion algorithm projects everything onto the floor plane, so
/// [`Point3::to_floor`] is the usual bridge back to [`Point`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical (depth) coordinate.
    pub y: f64,
    /// Height above the floor.
    pub z: f64,
}

impl Point3 {
    /// Creates a point at `(x, y, z)`.
    #[must_use]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Projects onto the floor plane, discarding the height.
    #[must_use]
    pub fn to_floor(self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Returns `true` when all coordinates are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<Point> for Point3 {
    fn from(p: Point) -> Self {
        Point3::new(p.x, p.y, 0.0)
    }
}

impl From<(f64, f64, f64)> for Point3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Point3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_345() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-4.0, 7.25);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(2.0, 6.0));
        assert_eq!(m, Point::new(1.0, 3.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(5.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn vector_algebra() {
        let v = Point::new(4.0, 6.0) - Point::new(1.0, 2.0);
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(v.length(), 5.0);
        assert_eq!(Point::new(1.0, 2.0) + v, Point::new(4.0, 6.0));
        assert_eq!(-v, Vec2::new(-3.0, -4.0));
        assert_eq!(v * 2.0, Vec2::new(6.0, 8.0));
        assert_eq!(v / 2.0, Vec2::new(1.5, 2.0));
    }

    #[test]
    fn cross_sign_encodes_orientation() {
        let east = Vec2::new(1.0, 0.0);
        let north = Vec2::new(0.0, 1.0);
        assert!(east.cross(north) > 0.0);
        assert!(north.cross(east) < 0.0);
        assert_eq!(east.cross(east), 0.0);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec2::new(3.0, 4.0).normalized();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((v.x).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point3_projects_to_floor() {
        let p = Point3::new(12.0, 3.0, 4.0);
        assert_eq!(p.to_floor(), Point::new(12.0, 3.0));
    }

    #[test]
    fn point3_distance() {
        let d = Point3::new(0.0, 0.0, 0.0).distance(Point3::new(2.0, 3.0, 6.0));
        assert_eq!(d, 7.0);
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Point = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
        let q: Point3 = Point::new(5.0, 6.0).into();
        assert_eq!(q, Point3::new(5.0, 6.0, 0.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1, 2.5)");
        assert_eq!(Point3::new(1.0, 2.0, 3.0).to_string(), "(1, 2, 3)");
    }

    #[test]
    fn finiteness_checks() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point3::new(1.0, f64::INFINITY, 0.0).is_finite());
    }
}
