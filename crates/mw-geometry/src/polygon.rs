use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GeometryError, Point, Rect, Segment, EPSILON};

/// A simple polygon given by its vertices in order (clockwise or
/// counter-clockwise; the first vertex is not repeated at the end).
///
/// Rooms, corridors and floor outlines are polygons in MiddleWhere's
/// spatial database (Table 1 of the paper). The fusion algorithm only works
/// with their MBRs, but exact predicates (point-in-polygon, area) are used
/// by the "more accurate processing" pass the paper describes in §5.1 and
/// by the MBR-approximation ablation bench.
///
/// # Example
///
/// ```
/// use mw_geometry::{Point, Polygon};
///
/// let room = Polygon::new(vec![
///     Point::new(330.0, 0.0),
///     Point::new(350.0, 0.0),
///     Point::new(350.0, 30.0),
///     Point::new(330.0, 30.0),
/// ])?;
/// assert_eq!(room.area(), 600.0);
/// assert!(room.contains_point(Point::new(340.0, 15.0)));
/// # Ok::<(), mw_geometry::GeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from at least three finite vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::DegeneratePolygon`] for fewer than three
    /// vertices, and [`GeometryError::NonFiniteCoordinate`] when any vertex
    /// is NaN or infinite.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeometryError> {
        if vertices.len() < 3 {
            return Err(GeometryError::DegeneratePolygon {
                vertices: vertices.len(),
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeometryError::NonFiniteCoordinate);
        }
        Ok(Polygon { vertices })
    }

    /// Creates the rectangle `rect` as a polygon.
    #[must_use]
    pub fn from_rect(rect: &Rect) -> Self {
        Polygon {
            vertices: rect.corners().to_vec(),
        }
    }

    /// The vertices in order.
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: a polygon has at least three vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over the boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area: positive for counter-clockwise vertex order.
    #[must_use]
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            sum += a.x * b.y - b.x * a.y;
        }
        sum / 2.0
    }

    /// Absolute area (shoelace formula).
    ///
    /// Meaningful for *simple* polygons; for a self-intersecting vertex
    /// list the shoelace formula counts multiply-wound regions more than
    /// once (constructors do not check simplicity — it is O(n²) — so
    /// callers own this invariant).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    #[must_use]
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid.
    ///
    /// Falls back to the vertex average for (near-)zero-area polygons.
    #[must_use]
    pub fn centroid(&self) -> Point {
        let a = self.signed_area();
        if a.abs() <= EPSILON {
            let n = self.vertices.len() as f64;
            let (sx, sy) = self
                .vertices
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Point::new(sx / n, sy / n);
        }
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Minimum bounding rectangle.
    ///
    /// This is the approximation MiddleWhere stores in the spatial database
    /// for regions (§5.1).
    #[must_use]
    pub fn mbr(&self) -> Rect {
        Rect::bounding(self.vertices.iter().copied()).expect("polygon has at least three vertices")
    }

    /// Point-in-polygon test (even-odd rule). Boundary points count as
    /// inside.
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        // Boundary check first so edge/vertex hits are deterministic.
        if self.edges().any(|e| e.distance_to_point(p) <= EPSILON) {
            return true;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Returns `true` when the polygon is convex (no reflex vertices).
    #[must_use]
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        let mut sign = 0i8;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let cross = (b - a).cross(c - b);
            if cross.abs() <= EPSILON {
                continue; // collinear run
            }
            let s = if cross > 0.0 { 1 } else { -1 };
            if sign == 0 {
                sign = s;
            } else if sign != s {
                return false;
            }
        }
        true
    }

    /// Returns `true` when any boundary edge of the two polygons intersects
    /// or one polygon contains the other.
    #[must_use]
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        if !self.mbr().intersects(&other.mbr()) {
            return false;
        }
        for e1 in self.edges() {
            for e2 in other.edges() {
                if e1.intersects(&e2) {
                    return true;
                }
            }
        }
        self.contains_point(other.vertices[0]) || other.contains_point(self.vertices[0])
    }

    /// Returns `true` when any part of the polygon touches the rectangle.
    #[must_use]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        self.intersects_polygon(&Polygon::from_rect(rect))
    }

    /// Approximates the area of intersection with `rect` by uniform grid
    /// sampling with `resolution`×`resolution` cells.
    ///
    /// Exact polygon clipping is not needed anywhere in MiddleWhere (the
    /// fusion lattice works on MBRs); this sampled version supports the
    /// MBR-approximation ablation study.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    #[must_use]
    pub fn intersection_area_with_rect(&self, rect: &Rect, resolution: usize) -> f64 {
        assert!(resolution > 0, "resolution must be positive");
        let window = match self.mbr().intersection(rect) {
            Some(w) => w,
            None => return 0.0,
        };
        if window.area() == 0.0 {
            return 0.0;
        }
        let nx = resolution;
        let ny = resolution;
        let dx = window.width() / nx as f64;
        let dy = window.height() / ny as f64;
        let mut hits = 0usize;
        for i in 0..nx {
            for j in 0..ny {
                let p = Point::new(
                    window.min().x + (i as f64 + 0.5) * dx,
                    window.min().y + (j as f64 + 0.5) * dy,
                );
                if self.contains_point(p) {
                    hits += 1;
                }
            }
        }
        window.area() * hits as f64 / (nx * ny) as f64
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in &self.vertices {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    fn l_shape() -> Polygon {
        // An L: 2x2 square missing its top-right 1x1 quadrant.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        let e = Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        assert_eq!(e, Err(GeometryError::DegeneratePolygon { vertices: 2 }));
    }

    #[test]
    fn rejects_non_finite() {
        let e = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(f64::NAN, 0.0),
            Point::new(1.0, 1.0),
        ]);
        assert_eq!(e, Err(GeometryError::NonFiniteCoordinate));
    }

    #[test]
    fn shoelace_area() {
        assert_eq!(unit_square().area(), 1.0);
        assert_eq!(l_shape().area(), 3.0);
    }

    #[test]
    fn signed_area_orientation() {
        assert!(unit_square().signed_area() > 0.0); // CCW
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(cw.signed_area() < 0.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn perimeter() {
        assert_eq!(unit_square().perimeter(), 4.0);
        assert_eq!(l_shape().perimeter(), 8.0);
    }

    #[test]
    fn centroid_of_square() {
        let c = unit_square().centroid();
        assert!((c.x - 0.5).abs() < 1e-12);
        assert!((c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mbr_encloses() {
        let m = l_shape().mbr();
        assert_eq!(m, Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)));
    }

    #[test]
    fn point_in_polygon_convex() {
        let p = unit_square();
        assert!(p.contains_point(Point::new(0.5, 0.5)));
        assert!(p.contains_point(Point::new(0.0, 0.0))); // vertex
        assert!(p.contains_point(Point::new(0.5, 0.0))); // edge
        assert!(!p.contains_point(Point::new(1.5, 0.5)));
    }

    #[test]
    fn point_in_polygon_concave() {
        let p = l_shape();
        assert!(p.contains_point(Point::new(0.5, 1.5)));
        assert!(p.contains_point(Point::new(1.5, 0.5)));
        // The notch is outside, although it is inside the MBR.
        assert!(!p.contains_point(Point::new(1.5, 1.5)));
        assert!(p.mbr().contains_point(Point::new(1.5, 1.5)));
    }

    #[test]
    fn convexity() {
        assert!(unit_square().is_convex());
        assert!(!l_shape().is_convex());
    }

    #[test]
    fn polygon_intersection_tests() {
        let a = unit_square();
        let far = Polygon::new(vec![
            Point::new(10.0, 10.0),
            Point::new(11.0, 10.0),
            Point::new(11.0, 11.0),
        ])
        .unwrap();
        assert!(!a.intersects_polygon(&far));
        // Contained polygon (no edge crossings).
        let inner = Polygon::new(vec![
            Point::new(0.25, 0.25),
            Point::new(0.75, 0.25),
            Point::new(0.75, 0.75),
        ])
        .unwrap();
        assert!(a.intersects_polygon(&inner));
        assert!(inner.intersects_polygon(&a));
        // Edge-crossing polygon.
        let cross = Polygon::new(vec![
            Point::new(0.5, -0.5),
            Point::new(1.5, 0.5),
            Point::new(0.5, 1.5),
        ])
        .unwrap();
        assert!(a.intersects_polygon(&cross));
    }

    #[test]
    fn rect_intersection() {
        let p = l_shape();
        let notch = Rect::new(Point::new(1.2, 1.2), Point::new(1.8, 1.8));
        assert!(!p.intersects_rect(&notch));
        let overlapping = Rect::new(Point::new(-0.5, -0.5), Point::new(0.5, 0.5));
        assert!(p.intersects_rect(&overlapping));
    }

    #[test]
    fn sampled_intersection_area() {
        let p = unit_square();
        let r = Rect::new(Point::new(0.5, 0.0), Point::new(1.5, 1.0));
        let a = p.intersection_area_with_rect(&r, 64);
        assert!((a - 0.5).abs() < 0.02, "sampled area {a} too far from 0.5");
        let disjoint = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert_eq!(p.intersection_area_with_rect(&disjoint, 16), 0.0);
    }

    #[test]
    fn from_rect_roundtrip() {
        let r = Rect::new(Point::new(1.0, 2.0), Point::new(3.0, 5.0));
        let p = Polygon::from_rect(&r);
        assert_eq!(p.area(), r.area());
        assert_eq!(p.mbr(), r);
    }

    #[test]
    fn edges_count() {
        assert_eq!(unit_square().edges().count(), 4);
        assert_eq!(l_shape().edges().count(), 6);
    }
}
