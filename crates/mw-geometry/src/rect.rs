use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GeometryError, Point, Vec2};

/// An axis-aligned rectangle — the minimum bounding rectangle (MBR) of
/// MiddleWhere's fusion algorithm.
///
/// The paper deliberately approximates every sensor region by its MBR
/// (§4.1.2): "While approximating sensor regions with minimum bounding
/// rectangles decreases the accuracy of location detection, the advantages
/// in terms of performance and simplicity far outweigh the loss in
/// accuracy." All lattice operations (intersection, area, containment) are
/// O(1) on this type.
///
/// Invariants: `min.x <= max.x`, `min.y <= max.y`, all coordinates finite.
/// A zero-area rectangle (a point or a horizontal/vertical segment) is
/// valid.
///
/// # Example
///
/// ```
/// use mw_geometry::{Point, Rect};
///
/// let room = Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0));
/// assert_eq!(room.area(), 600.0);
/// assert!(room.contains_point(Point::new(340.0, 10.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates the rectangle spanning `a` and `b` (any two opposite
    /// corners, in any order).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is not finite. Use [`Rect::try_new`] for a
    /// fallible constructor.
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        Rect::try_new(a, b).expect("rectangle corners must be finite")
    }

    /// Fallible version of [`Rect::new`].
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::NonFiniteCoordinate`] when a coordinate is
    /// NaN or infinite.
    pub fn try_new(a: Point, b: Point) -> Result<Self, GeometryError> {
        if !a.is_finite() || !b.is_finite() {
            return Err(GeometryError::NonFiniteCoordinate);
        }
        Ok(Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        })
    }

    /// Creates a rectangle from its center, width and height.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative or any value is non-finite.
    #[must_use]
    pub fn from_center(center: Point, width: f64, height: f64) -> Self {
        assert!(
            width >= 0.0 && height >= 0.0,
            "width and height must be non-negative"
        );
        let half = Vec2::new(width / 2.0, height / 2.0);
        Rect::new(center - half, center + half)
    }

    /// Creates a degenerate rectangle covering a single point.
    #[must_use]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p, p)
    }

    /// Smallest rectangle containing every point of `iter`, or `None` when
    /// the iterator is empty.
    pub fn bounding<I: IntoIterator<Item = Point>>(iter: I) -> Option<Self> {
        let mut it = iter.into_iter();
        let first = it.next()?;
        let mut r = Rect::from_point(first);
        for p in it {
            r = r.expanded_to(p);
        }
        Some(r)
    }

    /// The corner with the smallest coordinates.
    #[must_use]
    pub fn min(&self) -> Point {
        self.min
    }

    /// The corner with the largest coordinates.
    #[must_use]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width along the x axis.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along the y axis.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle. Zero for degenerate rectangles.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter of the rectangle.
    #[must_use]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// The four corners in counter-clockwise order starting at `min`.
    #[must_use]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when `other` lies entirely inside (or equals) `self`.
    #[must_use]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Returns `true` when `other` is strictly inside `self` (contained and
    /// not equal).
    #[must_use]
    pub fn contains_rect_strict(&self, other: &Rect) -> bool {
        self.contains_rect(other) && self != other
    }

    /// Returns `true` when the rectangles share at least one point
    /// (touching edges count as intersecting).
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Intersection rectangle, or `None` when the rectangles are disjoint.
    ///
    /// This is the `int()` function of the paper's Equation 7.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// Area of the intersection with `other`; zero when disjoint.
    ///
    /// Convenience for `area_int(Ai, R)` terms in Equation 7.
    #[must_use]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Smallest rectangle containing `self` and the point `p`.
    #[must_use]
    pub fn expanded_to(&self, p: Point) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// Rectangle grown by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if shrinking (`margin < 0`) would invert the rectangle.
    #[must_use]
    pub fn inflated(&self, margin: f64) -> Rect {
        let m = Vec2::new(margin, margin);
        Rect::new(self.min - m, self.max + m)
    }

    /// Rectangle translated by `delta`.
    #[must_use]
    pub fn translated(&self, delta: Vec2) -> Rect {
        Rect {
            min: self.min + delta,
            max: self.max + delta,
        }
    }

    /// Minimum Euclidean distance between the rectangles' boundaries; zero
    /// when they intersect.
    #[must_use]
    pub fn distance_to_rect(&self, other: &Rect) -> f64 {
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0.0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Minimum Euclidean distance from `p` to the rectangle; zero when the
    /// point is inside.
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(p.x - self.max.x).max(0.0);
        let dy = (self.min.y - p.y).max(p.y - self.max.y).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns `true` when the rectangle has zero area.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn corners_are_normalized() {
        let a = Rect::new(Point::new(5.0, 7.0), Point::new(1.0, 2.0));
        assert_eq!(a.min(), Point::new(1.0, 2.0));
        assert_eq!(a.max(), Point::new(5.0, 7.0));
    }

    #[test]
    fn non_finite_rejected() {
        let err = Rect::try_new(Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0));
        assert_eq!(err, Err(GeometryError::NonFiniteCoordinate));
    }

    #[test]
    fn area_and_perimeter() {
        let a = r(0.0, 0.0, 4.0, 3.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(a.perimeter(), 14.0);
        assert_eq!(a.center(), Point::new(2.0, 1.5));
    }

    #[test]
    fn from_center_roundtrip() {
        let a = Rect::from_center(Point::new(10.0, 20.0), 4.0, 6.0);
        assert_eq!(a.center(), Point::new(10.0, 20.0));
        assert_eq!(a.width(), 4.0);
        assert_eq!(a.height(), 6.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_center_rejects_negative() {
        let _ = Rect::from_center(Point::ORIGIN, -1.0, 1.0);
    }

    #[test]
    fn containment_point() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert!(a.contains_point(Point::new(0.0, 0.0))); // boundary counts
        assert!(a.contains_point(Point::new(10.0, 10.0)));
        assert!(a.contains_point(Point::new(5.0, 5.0)));
        assert!(!a.contains_point(Point::new(10.1, 5.0)));
    }

    #[test]
    fn containment_rect() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 8.0, 8.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect_strict(&outer));
        assert!(outer.contains_rect_strict(&inner));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        // Overlapping.
        let b = r(5.0, 5.0, 15.0, 15.0);
        assert_eq!(a.intersection(&b), Some(r(5.0, 5.0, 10.0, 10.0)));
        assert_eq!(a.intersection_area(&b), 25.0);
        // Touching edge: degenerate intersection.
        let c = r(10.0, 0.0, 20.0, 10.0);
        let i = a.intersection(&c).unwrap();
        assert_eq!(i.area(), 0.0);
        // Disjoint.
        let d = r(20.0, 20.0, 30.0, 30.0);
        assert_eq!(a.intersection(&d), None);
        assert_eq!(a.intersection_area(&d), 0.0);
    }

    #[test]
    fn intersection_is_commutative() {
        let a = r(0.0, 0.0, 7.0, 7.0);
        let b = r(3.0, -2.0, 12.0, 4.0);
        assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn union_contains_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(5.0, 5.0, 6.0, 7.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, r(0.0, 0.0, 6.0, 7.0));
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let b = Rect::bounding(pts).unwrap();
        assert_eq!(b, r(-2.0, -1.0, 4.0, 5.0));
        assert_eq!(Rect::bounding(std::iter::empty()), None);
    }

    #[test]
    fn distances() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(13.0, 14.0, 20.0, 20.0);
        assert_eq!(a.distance_to_rect(&b), 5.0); // dx=3, dy=4
        assert_eq!(a.distance_to_rect(&a), 0.0);
        assert_eq!(a.distance_to_point(Point::new(13.0, 14.0)), 5.0);
        assert_eq!(a.distance_to_point(Point::new(5.0, 5.0)), 0.0);
    }

    #[test]
    fn inflate_translate() {
        let a = r(2.0, 2.0, 4.0, 4.0);
        assert_eq!(a.inflated(1.0), r(1.0, 1.0, 5.0, 5.0));
        assert_eq!(a.translated(Vec2::new(1.0, -1.0)), r(3.0, 1.0, 5.0, 3.0));
    }

    #[test]
    fn degenerate_rects() {
        assert!(Rect::from_point(Point::new(1.0, 1.0)).is_degenerate());
        assert!(r(0.0, 0.0, 5.0, 0.0).is_degenerate());
        assert!(!r(0.0, 0.0, 1.0, 1.0).is_degenerate());
    }

    #[test]
    fn display() {
        assert_eq!(r(0.0, 0.0, 1.0, 2.0).to_string(), "[(0, 0) .. (1, 2)]");
    }
}
