//! A Guttman R-tree with quadratic split.
//!
//! The paper's spatial database cites Guttman's R-tree (reference \[4\]) as
//! the index structure behind efficient spatial queries. This module
//! provides an in-memory R-tree keyed by [`Rect`] with arbitrary payloads:
//! window queries, point queries, nearest-neighbour search and removal.
//!
//! # Example
//!
//! ```
//! use mw_geometry::{Point, Rect, RTree};
//!
//! let mut tree = RTree::new();
//! tree.insert(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), "room-a");
//! tree.insert(Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)), "room-b");
//!
//! let window = Rect::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
//! let hits: Vec<_> = tree.query_window(&window).map(|(_, v)| *v).collect();
//! assert_eq!(hits, vec!["room-a"]);
//! ```

use crate::{Point, Rect};

const MAX_ENTRIES: usize = 8;
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(Rect, T)>),
    Inner(Vec<(Rect, Box<Node<T>>)>),
}

impl<T> Node<T> {
    fn mbr(&self) -> Option<Rect> {
        match self {
            Node::Leaf(entries) => union_of(entries.iter().map(|(r, _)| *r)),
            Node::Inner(children) => union_of(children.iter().map(|(r, _)| *r)),
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner(c) => c.len(),
        }
    }
}

fn union_of<I: Iterator<Item = Rect>>(mut it: I) -> Option<Rect> {
    let first = it.next()?;
    Some(it.fold(first, |acc, r| acc.union(&r)))
}

/// An in-memory R-tree mapping rectangles to payloads.
///
/// Duplicate rectangles are allowed; they are distinct entries.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bounding rectangle of all entries, or `None` when empty.
    #[must_use]
    pub fn mbr(&self) -> Option<Rect> {
        self.root.mbr()
    }

    /// Inserts an entry with bounding rectangle `rect`.
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.len += 1;
        if let Some((r1, n1, r2, n2)) = insert_rec(&mut self.root, rect, value) {
            // Root split: grow the tree by one level.
            self.root = Node::Inner(vec![(r1, Box::new(n1)), (r2, Box::new(n2))]);
        }
    }

    /// Iterates over entries whose rectangle intersects `window`.
    pub fn query_window<'a>(&'a self, window: &Rect) -> impl Iterator<Item = (Rect, &'a T)> {
        let mut out = Vec::new();
        collect_window(&self.root, window, &mut out);
        out.into_iter()
    }

    /// Iterates over entries whose rectangle contains the point `p`.
    pub fn query_point(&self, p: Point) -> impl Iterator<Item = (Rect, &T)> {
        self.query_window(&Rect::from_point(p))
    }

    /// Iterates over entries whose rectangle is fully contained in
    /// `window`.
    pub fn query_contained<'a>(&'a self, window: &Rect) -> impl Iterator<Item = (Rect, &'a T)> {
        let w = *window;
        self.query_window(window)
            .filter(move |(r, _)| w.contains_rect(r))
    }

    /// The entry whose rectangle is nearest to `p` (by boundary distance;
    /// containing rectangles have distance zero). Ties break arbitrarily.
    #[must_use]
    pub fn nearest(&self, p: Point) -> Option<(Rect, &T)> {
        if self.is_empty() {
            return None;
        }
        let mut best: Option<(f64, Rect, &T)> = None;
        nearest_rec(&self.root, p, &mut best);
        best.map(|(_, r, v)| (r, v))
    }

    /// Removes one entry matching `rect` exactly and for which `pred`
    /// returns `true`. Returns the removed payload, or `None`.
    pub fn remove_if<F: FnMut(&T) -> bool>(&mut self, rect: &Rect, mut pred: F) -> Option<T> {
        let removed = remove_rec(&mut self.root, rect, &mut pred);
        if removed.is_some() {
            self.len -= 1;
            // Condense: re-insert entries from underfull paths. Our simple
            // variant rebuilds only when the root became a trivial chain.
            self.collapse_root();
        }
        removed
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Rect, &T)> {
        let mut out = Vec::new();
        collect_all(&self.root, &mut out);
        out.into_iter()
    }

    fn collapse_root(&mut self) {
        loop {
            match &mut self.root {
                Node::Inner(children) if children.len() == 1 => {
                    let (_, only) = children.pop().expect("one child");
                    self.root = *only;
                }
                _ => break,
            }
        }
    }
}

fn collect_window<'a, T>(node: &'a Node<T>, window: &Rect, out: &mut Vec<(Rect, &'a T)>) {
    match node {
        Node::Leaf(entries) => {
            for (r, v) in entries {
                if r.intersects(window) {
                    out.push((*r, v));
                }
            }
        }
        Node::Inner(children) => {
            for (r, child) in children {
                if r.intersects(window) {
                    collect_window(child, window, out);
                }
            }
        }
    }
}

fn collect_all<'a, T>(node: &'a Node<T>, out: &mut Vec<(Rect, &'a T)>) {
    match node {
        Node::Leaf(entries) => out.extend(entries.iter().map(|(r, v)| (*r, v))),
        Node::Inner(children) => {
            for (_, child) in children {
                collect_all(child, out);
            }
        }
    }
}

fn nearest_rec<'a, T>(node: &'a Node<T>, p: Point, best: &mut Option<(f64, Rect, &'a T)>) {
    match node {
        Node::Leaf(entries) => {
            for (r, v) in entries {
                let d = r.distance_to_point(p);
                if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
                    *best = Some((d, *r, v));
                }
            }
        }
        Node::Inner(children) => {
            // Visit children in order of promise; prune by current best.
            let mut order: Vec<_> = children
                .iter()
                .map(|(r, c)| (r.distance_to_point(p), c))
                .collect();
            order.sort_by(|a, b| a.0.total_cmp(&b.0));
            for (d, child) in order {
                if best.as_ref().is_some_and(|(bd, _, _)| d > *bd) {
                    break;
                }
                nearest_rec(child, p, best);
            }
        }
    }
}

/// Recursive insert; returns `Some((mbr1, node1, mbr2, node2))` when the
/// child split and the caller must replace it with two nodes.
fn insert_rec<T>(
    node: &mut Node<T>,
    rect: Rect,
    value: T,
) -> Option<(Rect, Node<T>, Rect, Node<T>)> {
    match node {
        Node::Leaf(entries) => {
            entries.push((rect, value));
            if entries.len() > MAX_ENTRIES {
                let (left, right) = split_leaf(std::mem::take(entries));
                let r1 = union_of(left.iter().map(|(r, _)| *r)).expect("non-empty");
                let r2 = union_of(right.iter().map(|(r, _)| *r)).expect("non-empty");
                Some((r1, Node::Leaf(left), r2, Node::Leaf(right)))
            } else {
                None
            }
        }
        Node::Inner(children) => {
            // Choose subtree: least area enlargement, ties by smaller area.
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, (r1, _)), (_, (r2, _))| {
                    let e1 = r1.union(&rect).area() - r1.area();
                    let e2 = r2.union(&rect).area() - r2.area();
                    e1.total_cmp(&e2).then(r1.area().total_cmp(&r2.area()))
                })
                .map(|(i, _)| i)
                .expect("inner node has children");
            let split = insert_rec(&mut children[idx].1, rect, value);
            children[idx].0 = children[idx].0.union(&rect);
            if let Some((r1, n1, r2, n2)) = split {
                children[idx] = (r1, Box::new(n1));
                children.push((r2, Box::new(n2)));
                if children.len() > MAX_ENTRIES {
                    let (left, right) = split_inner(std::mem::take(children));
                    let r1 = union_of(left.iter().map(|(r, _)| *r)).expect("non-empty");
                    let r2 = union_of(right.iter().map(|(r, _)| *r)).expect("non-empty");
                    return Some((r1, Node::Inner(left), r2, Node::Inner(right)));
                }
            }
            None
        }
    }
}

/// Quadratic split: pick the pair of seeds wasting the most area together,
/// then greedily assign remaining entries by least enlargement.
fn quadratic_partition<E, F: Fn(&E) -> Rect>(entries: Vec<E>, key: F) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() >= 2);
    // Seed selection.
    let mut worst = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let ri = key(&entries[i]);
            let rj = key(&entries[j]);
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst.2 {
                worst = (i, j, waste);
            }
        }
    }
    let mut left: Vec<E> = Vec::new();
    let mut right: Vec<E> = Vec::new();
    let mut left_mbr = key(&entries[worst.0]);
    let mut right_mbr = key(&entries[worst.1]);
    let mut rest = Vec::new();
    for (idx, e) in entries.into_iter().enumerate() {
        if idx == worst.0 {
            left.push(e);
        } else if idx == worst.1 {
            right.push(e);
        } else {
            rest.push(e);
        }
    }
    let total = rest.len() + 2;
    for e in rest {
        let r = key(&e);
        // Force balance so both sides reach MIN_ENTRIES.
        let remaining = total - left.len() - right.len();
        let _ = remaining;
        if left.len() + 1 < MIN_ENTRIES && right.len() >= MIN_ENTRIES {
            left_mbr = left_mbr.union(&r);
            left.push(e);
            continue;
        }
        if right.len() + 1 < MIN_ENTRIES && left.len() >= MIN_ENTRIES {
            right_mbr = right_mbr.union(&r);
            right.push(e);
            continue;
        }
        let grow_l = left_mbr.union(&r).area() - left_mbr.area();
        let grow_r = right_mbr.union(&r).area() - right_mbr.area();
        if grow_l <= grow_r {
            left_mbr = left_mbr.union(&r);
            left.push(e);
        } else {
            right_mbr = right_mbr.union(&r);
            right.push(e);
        }
    }
    (left, right)
}

/// A pair of entry lists produced by a node split.
type SplitHalves<E> = (Vec<E>, Vec<E>);

fn split_leaf<T>(entries: Vec<(Rect, T)>) -> SplitHalves<(Rect, T)> {
    quadratic_partition(entries, |(r, _)| *r)
}

fn split_inner<T>(children: Vec<(Rect, Box<Node<T>>)>) -> SplitHalves<(Rect, Box<Node<T>>)> {
    quadratic_partition(children, |(r, _)| *r)
}

fn remove_rec<T, F: FnMut(&T) -> bool>(node: &mut Node<T>, rect: &Rect, pred: &mut F) -> Option<T> {
    match node {
        Node::Leaf(entries) => {
            let pos = entries.iter().position(|(r, v)| r == rect && pred(v))?;
            Some(entries.remove(pos).1)
        }
        Node::Inner(children) => {
            for (mbr, child) in children.iter_mut() {
                if mbr.contains_rect(rect) || mbr.intersects(rect) {
                    if let Some(v) = remove_rec(child, rect, pred) {
                        if let Some(new_mbr) = child.mbr() {
                            *mbr = new_mbr;
                        }
                        // Drop empty children.
                        children.retain(|(_, c)| c.len() > 0);
                        return Some(v);
                    }
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn grid_tree(n: usize) -> RTree<usize> {
        // n x n unit cells at integer offsets.
        let mut t = RTree::new();
        for i in 0..n {
            for j in 0..n {
                let cell = r(i as f64, j as f64, i as f64 + 1.0, j as f64 + 1.0);
                t.insert(cell, i * n + j);
            }
        }
        t
    }

    #[test]
    fn empty_tree() {
        let t: RTree<i32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.mbr(), None);
        assert!(t.nearest(Point::ORIGIN).is_none());
        assert_eq!(t.query_window(&r(0.0, 0.0, 1.0, 1.0)).count(), 0);
    }

    #[test]
    fn insert_and_query_small() {
        let mut t = RTree::new();
        t.insert(r(0.0, 0.0, 1.0, 1.0), "a");
        t.insert(r(5.0, 5.0, 6.0, 6.0), "b");
        assert_eq!(t.len(), 2);
        let hits: Vec<_> = t
            .query_window(&r(0.5, 0.5, 2.0, 2.0))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(hits, vec!["a"]);
    }

    #[test]
    fn window_query_matches_linear_scan() {
        let t = grid_tree(12); // 144 entries, forces splits
        assert_eq!(t.len(), 144);
        let window = r(2.5, 3.5, 6.5, 7.5);
        let mut from_tree: Vec<usize> = t.query_window(&window).map(|(_, v)| *v).collect();
        let mut from_scan: Vec<usize> = t
            .iter()
            .filter(|(rect, _)| rect.intersects(&window))
            .map(|(_, v)| *v)
            .collect();
        from_tree.sort_unstable();
        from_scan.sort_unstable();
        assert_eq!(from_tree, from_scan);
        assert!(!from_tree.is_empty());
    }

    #[test]
    fn contained_query() {
        let t = grid_tree(6);
        let window = r(1.0, 1.0, 4.0, 4.0);
        let contained: Vec<_> = t.query_contained(&window).collect();
        // Cells [1..3]x[1..3] fit fully: 3x3 = 9.
        assert_eq!(contained.len(), 9);
        for (rect, _) in contained {
            assert!(window.contains_rect(&rect));
        }
    }

    #[test]
    fn point_query() {
        let t = grid_tree(4);
        // Interior point hits exactly one cell.
        let hits: Vec<_> = t.query_point(Point::new(2.5, 3.5)).collect();
        assert_eq!(hits.len(), 1);
        // A lattice point touches up to four cells.
        let corner_hits = t.query_point(Point::new(2.0, 2.0)).count();
        assert_eq!(corner_hits, 4);
    }

    #[test]
    fn nearest_neighbour() {
        let t = grid_tree(10);
        let (rect, _) = t.nearest(Point::new(-5.0, -5.0)).unwrap();
        assert_eq!(rect, r(0.0, 0.0, 1.0, 1.0));
        // Point inside a cell: that cell (distance 0).
        let (rect2, _) = t.nearest(Point::new(7.5, 2.5)).unwrap();
        assert!(rect2.contains_point(Point::new(7.5, 2.5)));
    }

    #[test]
    fn mbr_tracks_entries() {
        let t = grid_tree(5);
        assert_eq!(t.mbr().unwrap(), r(0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn remove_entry() {
        let mut t = grid_tree(8);
        let n0 = t.len();
        let cell = r(3.0, 3.0, 4.0, 4.0);
        let removed = t.remove_if(&cell, |_| true);
        assert_eq!(removed, Some(3 * 8 + 3));
        assert_eq!(t.len(), n0 - 1);
        // The cell no longer matches a point query in its interior only.
        let hits = t.query_point(Point::new(3.5, 3.5)).count();
        assert_eq!(hits, 0);
        // Removing again fails.
        assert_eq!(t.remove_if(&cell, |_| true), None);
    }

    #[test]
    fn remove_respects_predicate() {
        let mut t = RTree::new();
        let same = r(0.0, 0.0, 1.0, 1.0);
        t.insert(same, 1);
        t.insert(same, 2);
        assert_eq!(t.remove_if(&same, |v| *v == 2), Some(2));
        assert_eq!(t.len(), 1);
        let left: Vec<_> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(left, vec![1]);
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = RTree::new();
        let same = r(0.0, 0.0, 1.0, 1.0);
        for i in 0..20 {
            t.insert(same, i);
        }
        assert_eq!(t.len(), 20);
        assert_eq!(t.query_window(&same).count(), 20);
    }

    #[test]
    fn heavy_insert_then_drain() {
        let mut t = grid_tree(15); // 225 entries
        let all: Vec<(Rect, usize)> = t.iter().map(|(r, v)| (r, *v)).collect();
        for (rect, v) in &all {
            assert_eq!(t.remove_if(rect, |x| x == v), Some(*v));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn iter_yields_everything() {
        let t = grid_tree(9);
        let mut vals: Vec<usize> = t.iter().map(|(_, v)| *v).collect();
        vals.sort_unstable();
        let expected: Vec<usize> = (0..81).collect();
        assert_eq!(vals, expected);
    }
}
