use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Point, Rect, EPSILON};

/// A line segment between two points.
///
/// MiddleWhere uses line geometries for doors and non-enclosing walls
/// (§5.1): a door is a symbolic line location such as
/// `SC/3/3216/(1,3),(4,5)`.
///
/// # Example
///
/// ```
/// use mw_geometry::{Point, Segment};
///
/// let door = Segment::new(Point::new(0.0, 0.0), Point::new(0.0, 3.0));
/// assert_eq!(door.length(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    #[must_use]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[must_use]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Minimum bounding rectangle of the segment.
    #[must_use]
    pub fn mbr(&self) -> Rect {
        Rect::new(self.a, self.b)
    }

    /// Minimum distance from `p` to any point on the segment.
    #[must_use]
    pub fn distance_to_point(&self, p: Point) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// The point on the segment closest to `p`.
    #[must_use]
    pub fn closest_point(&self, p: Point) -> Point {
        let ab = self.b - self.a;
        let len_sq = ab.dot(ab);
        if len_sq == 0.0 {
            return self.a;
        }
        let t = ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        self.a.lerp(self.b, t)
    }

    /// Returns `true` when `p` lies on the segment (within [`EPSILON`]).
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        self.distance_to_point(p) <= EPSILON
    }

    /// Returns `true` when the two segments share at least one point.
    ///
    /// Collinear overlapping segments count as intersecting.
    #[must_use]
    pub fn intersects(&self, other: &Segment) -> bool {
        self.intersection(other).is_some() || self.collinear_overlap(other)
    }

    /// The intersection point when the segments cross at exactly one point
    /// (properly or at an endpoint), or `None` for disjoint, parallel or
    /// collinear-overlapping segments.
    #[must_use]
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        let qp = other.a - self.a;
        if denom.abs() <= EPSILON {
            return None; // parallel or collinear
        }
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = EPSILON;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            Some(self.a.lerp(self.b, t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }

    /// Returns `true` when the segments are collinear and overlap over a
    /// positive-length or single-point range.
    #[must_use]
    pub fn collinear_overlap(&self, other: &Segment) -> bool {
        let r = self.b - self.a;
        let s = other.b - other.a;
        if r.cross(s).abs() > EPSILON {
            return false;
        }
        if (other.a - self.a).cross(r).abs() > EPSILON {
            return false; // parallel, not collinear
        }
        // Project onto the dominant axis and compare ranges.
        let use_x = r.x.abs() >= r.y.abs();
        let (a0, a1, b0, b1) = if use_x {
            (self.a.x, self.b.x, other.a.x, other.b.x)
        } else {
            (self.a.y, self.b.y, other.a.y, other.b.y)
        };
        let (a_lo, a_hi) = (a0.min(a1), a0.max(a1));
        let (b_lo, b_hi) = (b0.min(b1), b0.max(b1));
        a_lo <= b_hi + EPSILON && b_lo <= a_hi + EPSILON
    }

    /// Returns `true` when any part of the segment lies inside or on the
    /// rectangle.
    #[must_use]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        if rect.contains_point(self.a) || rect.contains_point(self.b) {
            return true;
        }
        let c = rect.corners();
        for i in 0..4 {
            let edge = Segment::new(c[i], c[(i + 1) % 4]);
            if self.intersects(&edge) {
                return true;
            }
        }
        false
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} - {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Point::new(-5.0, 3.0)), Point::new(0.0, 0.0));
        assert_eq!(
            s.closest_point(Point::new(15.0, 3.0)),
            Point::new(10.0, 0.0)
        );
        assert_eq!(s.closest_point(Point::new(4.0, 3.0)), Point::new(4.0, 0.0));
    }

    #[test]
    fn distance_to_point() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.distance_to_point(Point::new(5.0, 4.0)), 4.0);
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn proper_crossing() {
        let s1 = seg(0.0, 0.0, 10.0, 10.0);
        let s2 = seg(0.0, 10.0, 10.0, 0.0);
        let p = s1.intersection(&s2).unwrap();
        assert!((p.x - 5.0).abs() < 1e-9 && (p.y - 5.0).abs() < 1e-9);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn endpoint_touch_counts() {
        let s1 = seg(0.0, 0.0, 5.0, 5.0);
        let s2 = seg(5.0, 5.0, 10.0, 0.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn parallel_disjoint() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 1.0, 10.0, 1.0);
        assert_eq!(s1.intersection(&s2), None);
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlap_detected() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(5.0, 0.0, 15.0, 0.0);
        assert!(s1.collinear_overlap(&s2));
        assert!(s1.intersects(&s2));
        let s3 = seg(11.0, 0.0, 15.0, 0.0);
        assert!(!s1.collinear_overlap(&s3));
        assert!(!s1.intersects(&s3));
    }

    #[test]
    fn vertical_collinear_overlap() {
        let s1 = seg(2.0, 0.0, 2.0, 10.0);
        let s2 = seg(2.0, 5.0, 2.0, 20.0);
        assert!(s1.collinear_overlap(&s2));
    }

    #[test]
    fn contains_point_on_segment() {
        let s = seg(0.0, 0.0, 10.0, 10.0);
        assert!(s.contains_point(Point::new(5.0, 5.0)));
        assert!(!s.contains_point(Point::new(5.0, 6.0)));
    }

    #[test]
    fn rect_intersection() {
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        // Fully inside.
        assert!(seg(1.0, 1.0, 2.0, 2.0).intersects_rect(&rect));
        // Crossing through without endpoints inside.
        assert!(seg(-5.0, 5.0, 15.0, 5.0).intersects_rect(&rect));
        // Outside.
        assert!(!seg(20.0, 20.0, 30.0, 30.0).intersects_rect(&rect));
        // Touching a corner.
        assert!(seg(10.0, 10.0, 20.0, 20.0).intersects_rect(&rect));
    }

    #[test]
    fn mbr_covers_segment() {
        let s = seg(3.0, 7.0, 1.0, 2.0);
        let mbr = s.mbr();
        assert!(mbr.contains_point(s.a));
        assert!(mbr.contains_point(s.b));
        assert_eq!(mbr, Rect::new(Point::new(1.0, 2.0), Point::new(3.0, 7.0)));
    }

    #[test]
    fn display() {
        assert_eq!(seg(0.0, 0.0, 1.0, 3.0).to_string(), "(0, 0) - (1, 3)");
    }
}
