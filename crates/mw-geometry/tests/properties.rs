//! Property-based tests for the geometric kernel.

use mw_geometry::{
    frame::{FrameTree, Transform2},
    Point, Polygon, RTree, Rect, Segment, Vec2,
};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -1000.0..1000.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (point(), point()).prop_map(|(a, b)| Rect::new(a, b))
}

proptest! {
    #[test]
    fn rect_area_non_negative(r in rect()) {
        prop_assert!(r.area() >= 0.0);
    }

    #[test]
    fn intersection_contained_in_both(a in rect(), b in rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() <= a.area() + 1e-9);
            prop_assert!(i.area() <= b.area() + 1e-9);
        }
    }

    #[test]
    fn intersection_commutes(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn union_contains_both(a in rect(), b in rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn containment_implies_intersection(a in rect(), b in rect()) {
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
            prop_assert_eq!(a.intersection(&b), Some(b));
        }
    }

    #[test]
    fn rect_distance_is_symmetric_and_zero_iff_intersecting(a in rect(), b in rect()) {
        let d1 = a.distance_to_rect(&b);
        let d2 = b.distance_to_rect(&a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        if a.intersects(&b) {
            prop_assert_eq!(d1, 0.0);
        } else {
            prop_assert!(d1 > 0.0);
        }
    }

    #[test]
    fn rect_center_inside(r in rect()) {
        prop_assert!(r.contains_point(r.center()));
    }

    #[test]
    fn segment_closest_point_is_on_segment(a in point(), b in point(), p in point()) {
        let s = Segment::new(a, b);
        let c = s.closest_point(p);
        // The closest point lies within the segment's MBR and on the line.
        prop_assert!(s.mbr().inflated(1e-6).contains_point(c));
        prop_assert!(s.distance_to_point(p) <= p.distance(a) + 1e-9);
        prop_assert!(s.distance_to_point(p) <= p.distance(b) + 1e-9);
    }

    #[test]
    fn polygon_mbr_contains_all_vertices(raw in proptest::collection::vec(point(), 3..12)) {
        // Sort vertices by angle around the centroid so the polygon is
        // simple (star-shaped): `Polygon` documents simple polygons, and
        // the shoelace area of a self-intersecting polygon can legally
        // exceed its MBR (double-counted winding regions).
        let cx = raw.iter().map(|p| p.x).sum::<f64>() / raw.len() as f64;
        let cy = raw.iter().map(|p| p.y).sum::<f64>() / raw.len() as f64;
        let mut pts = raw;
        pts.sort_by(|a, b| {
            (a.y - cy).atan2(a.x - cx).total_cmp(&(b.y - cy).atan2(b.x - cx))
        });
        if let Ok(poly) = Polygon::new(pts.clone()) {
            let mbr = poly.mbr();
            for p in pts {
                prop_assert!(mbr.contains_point(p));
            }
            prop_assert!(poly.area() <= mbr.area() + 1e-6);
        }
    }

    #[test]
    fn polygon_contains_implies_mbr_contains(pts in proptest::collection::vec(point(), 3..10), q in point()) {
        if let Ok(poly) = Polygon::new(pts) {
            if poly.contains_point(q) {
                prop_assert!(poly.mbr().inflated(1e-9).contains_point(q));
            }
        }
    }

    #[test]
    fn transform_roundtrip(p in point(), angle in -6.3..6.3f64, tx in coord(), ty in coord()) {
        let t = Transform2::new(angle, Vec2::new(tx, ty));
        let q = t.inverse().apply(t.apply(p));
        prop_assert!((q.x - p.x).abs() < 1e-6);
        prop_assert!((q.y - p.y).abs() < 1e-6);
    }

    #[test]
    fn transform_compose_associates(p in point(), a1 in -3.2..3.2f64, a2 in -3.2..3.2f64, t1 in coord(), t2 in coord()) {
        let f = Transform2::new(a1, Vec2::new(t1, -t1));
        let g = Transform2::new(a2, Vec2::new(t2, t2 / 2.0));
        let lhs = f.compose(&g).apply(p);
        let rhs = f.apply(g.apply(p));
        prop_assert!((lhs.x - rhs.x).abs() < 1e-6);
        prop_assert!((lhs.y - rhs.y).abs() < 1e-6);
    }

    #[test]
    fn frame_tree_conversion_roundtrip(p in point(), off1 in coord(), off2 in coord(), ang in -3.0..3.0f64) {
        let mut tree = FrameTree::new("b");
        let floor = tree.add_frame("f", tree.root(), Transform2::new(0.0, Vec2::new(off1, off2))).unwrap();
        let room = tree.add_frame("r", floor, Transform2::new(ang, Vec2::new(off2, off1))).unwrap();
        let there = tree.convert(p, room, tree.root()).unwrap();
        let back = tree.convert(there, tree.root(), room).unwrap();
        prop_assert!((back.x - p.x).abs() < 1e-6);
        prop_assert!((back.y - p.y).abs() < 1e-6);
    }

    #[test]
    fn rtree_window_query_equals_linear_scan(
        rects in proptest::collection::vec(rect(), 1..60),
        window in rect(),
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        let mut from_tree: Vec<usize> = tree.query_window(&window).map(|(_, v)| *v).collect();
        let mut from_scan: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i)
            .collect();
        from_tree.sort_unstable();
        from_scan.sort_unstable();
        prop_assert_eq!(from_tree, from_scan);
    }

    #[test]
    fn rtree_nearest_equals_linear_scan(
        rects in proptest::collection::vec(rect(), 1..40),
        p in point(),
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        let (nearest_rect, _) = tree.nearest(p).unwrap();
        let best_scan = rects
            .iter()
            .map(|r| r.distance_to_point(p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((nearest_rect.distance_to_point(p) - best_scan).abs() < 1e-9);
    }

    #[test]
    fn rtree_len_tracks_inserts_and_removes(
        rects in proptest::collection::vec(rect(), 1..30),
    ) {
        let mut tree = RTree::new();
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i);
        }
        prop_assert_eq!(tree.len(), rects.len());
        // Remove every other entry.
        let mut expected = rects.len();
        for (i, r) in rects.iter().enumerate().step_by(2) {
            prop_assert_eq!(tree.remove_if(r, |v| *v == i), Some(i));
            expected -= 1;
        }
        prop_assert_eq!(tree.len(), expected);
    }

    #[test]
    fn circle_mbr_contains_circle_points(cx in coord(), cy in coord(), rad in 0.0..100.0f64, ang in 0.0..6.3f64) {
        let c = mw_geometry::Circle::new(Point::new(cx, cy), rad);
        let boundary = Point::new(cx + rad * ang.cos(), cy + rad * ang.sin());
        prop_assert!(c.mbr().inflated(1e-9).contains_point(boundary));
    }
}
