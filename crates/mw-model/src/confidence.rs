use std::fmt;
use std::ops::Mul;

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A probability in `[0, 1]` — the *confidence* quality metric of §3.2.
///
/// "Confidence … is measured as the probability that the person is actually
/// within a certain area returned by the sensor."
///
/// The newtype enforces the range invariant at construction so downstream
/// Bayesian arithmetic never sees an out-of-range probability.
///
/// # Example
///
/// ```
/// use mw_model::Confidence;
///
/// let c = Confidence::new(0.95)?;
/// assert_eq!(c.value(), 0.95);
/// assert_eq!((c * Confidence::new(0.5)?).value(), 0.475);
/// # Ok::<(), mw_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Confidence(f64);

impl Confidence {
    /// Certainty (probability 1).
    pub const CERTAIN: Confidence = Confidence(1.0);
    /// Impossibility (probability 0).
    pub const ZERO: Confidence = Confidence(0.0);

    /// Creates a confidence value.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConfidenceOutOfRange`] when `value` is not in
    /// `[0, 1]` or is NaN.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Confidence(value))
        } else {
            Err(ModelError::ConfidenceOutOfRange { value })
        }
    }

    /// Creates a confidence value, clamping into `[0, 1]`.
    ///
    /// NaN becomes 0.
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Confidence(0.0)
        } else {
            Confidence(value.clamp(0.0, 1.0))
        }
    }

    /// The underlying probability.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The complementary probability `1 - p`.
    #[must_use]
    pub fn complement(self) -> Confidence {
        Confidence(1.0 - self.0)
    }

    /// Returns the larger of the two confidences.
    #[must_use]
    pub fn max(self, other: Confidence) -> Confidence {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of the two confidences.
    #[must_use]
    pub fn min(self, other: Confidence) -> Confidence {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Default for Confidence {
    /// Defaults to certainty, matching a reading with no uncertainty model.
    fn default() -> Self {
        Confidence::CERTAIN
    }
}

impl Mul for Confidence {
    type Output = Confidence;
    /// Product of independent probabilities; stays in `[0, 1]`.
    fn mul(self, rhs: Confidence) -> Confidence {
        Confidence(self.0 * rhs.0)
    }
}

impl TryFrom<f64> for Confidence {
    type Error = ModelError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Confidence::new(value)
    }
}

impl From<Confidence> for f64 {
    fn from(c: Confidence) -> f64 {
        c.0
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_range() {
        assert!(Confidence::new(0.0).is_ok());
        assert!(Confidence::new(1.0).is_ok());
        assert!(Confidence::new(0.5).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Confidence::new(-0.01).is_err());
        assert!(Confidence::new(1.01).is_err());
        assert!(Confidence::new(f64::NAN).is_err());
        assert!(Confidence::new(f64::INFINITY).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Confidence::saturating(2.0).value(), 1.0);
        assert_eq!(Confidence::saturating(-1.0).value(), 0.0);
        assert_eq!(Confidence::saturating(f64::NAN).value(), 0.0);
        assert_eq!(Confidence::saturating(0.7).value(), 0.7);
    }

    #[test]
    fn complement() {
        assert_eq!(Confidence::new(0.3).unwrap().complement().value(), 0.7);
        assert_eq!(Confidence::CERTAIN.complement(), Confidence::ZERO);
    }

    #[test]
    fn multiplication_stays_in_range() {
        let a = Confidence::new(0.9).unwrap();
        let b = Confidence::new(0.8).unwrap();
        let c = a * b;
        assert!((c.value() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let a = Confidence::new(0.2).unwrap();
        let b = Confidence::new(0.8).unwrap();
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn ordering() {
        assert!(Confidence::new(0.2).unwrap() < Confidence::new(0.8).unwrap());
    }

    #[test]
    fn display_three_decimals() {
        assert_eq!(Confidence::new(0.12345).unwrap().to_string(), "0.123");
    }

    #[test]
    fn conversion_roundtrip() {
        let c = Confidence::try_from(0.4).unwrap();
        let f: f64 = c.into();
        assert_eq!(f, 0.4);
    }
}
