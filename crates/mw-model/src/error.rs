use std::fmt;

/// Errors produced by the location model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A GLOB string could not be parsed.
    ParseGlob {
        /// The offending input (possibly truncated).
        input: String,
        /// What went wrong.
        reason: &'static str,
    },
    /// A confidence value was outside `[0, 1]`.
    ConfidenceOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// A duration or time value was negative or non-finite.
    InvalidTime {
        /// The rejected value in seconds.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ParseGlob { input, reason } => {
                write!(f, "cannot parse glob {input:?}: {reason}")
            }
            ModelError::ConfidenceOutOfRange { value } => {
                write!(f, "confidence {value} outside [0, 1]")
            }
            ModelError::InvalidTime { value } => {
                write!(f, "invalid time value {value}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::ConfidenceOutOfRange { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = ModelError::ParseGlob {
            input: "x//y".into(),
            reason: "empty segment",
        };
        assert!(e.to_string().contains("empty segment"));
    }
}
