use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use mw_geometry::Point3;
use serde::{Deserialize, Serialize};

use crate::ModelError;

/// The coordinate payload optionally carried by the last segment of a
/// [`Glob`].
///
/// §3.1 of the paper: a GLOB "can represent point, line or polygon
/// regions" — one tuple is a point, two a line, three or more a polygon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GlobLeaf {
    /// A single coordinate, e.g. `(12,3,4)`.
    Point(Point3),
    /// A line between two coordinates, e.g. a door `(1,3),(4,5)`.
    Line(Point3, Point3),
    /// A polygon given by three or more vertices.
    Polygon(Vec<Point3>),
}

impl GlobLeaf {
    /// All coordinates of the leaf, in order.
    #[must_use]
    pub fn points(&self) -> Vec<Point3> {
        match self {
            GlobLeaf::Point(p) => vec![*p],
            GlobLeaf::Line(a, b) => vec![*a, *b],
            GlobLeaf::Polygon(v) => v.clone(),
        }
    }
}

impl fmt::Display for GlobLeaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_point = |p: &Point3| {
            if p.z == 0.0 {
                format!("({},{})", p.x, p.y)
            } else {
                format!("({},{},{})", p.x, p.y, p.z)
            }
        };
        match self {
            GlobLeaf::Point(p) => write!(f, "{}", fmt_point(p)),
            GlobLeaf::Line(a, b) => write!(f, "{},{}", fmt_point(a), fmt_point(b)),
            GlobLeaf::Polygon(v) => {
                let parts: Vec<String> = v.iter().map(fmt_point).collect();
                write!(f, "{}", parts.join(","))
            }
        }
    }
}

/// A *Gaia LOcation Byte-string* — MiddleWhere's hierarchical location name
/// (§3.1).
///
/// A GLOB is a `/`-separated path of symbolic segments, optionally
/// terminated by a coordinate leaf expressed in the coordinate system of the
/// last symbolic segment:
///
/// - `SC/3/3216/lightswitch1` — symbolic point location,
/// - `SC/3/3216/(12,3,4)` — the same location in coordinates of room 3216,
/// - `SC/3/3216/(1,3),(4,5)` — a door (line),
/// - `SC/3/(45,12),(45,40),(65,40),(65,12)` — room 3216's polygon in floor
///   coordinates.
///
/// # Example
///
/// ```
/// use mw_model::Glob;
///
/// let g: Glob = "SC/3/3216/lightswitch1".parse()?;
/// assert_eq!(g.segments(), ["SC", "3", "3216", "lightswitch1"]);
/// assert!(g.leaf().is_none());
///
/// let c: Glob = "SC/3/3216/(12,3,4)".parse()?;
/// assert!(c.leaf().is_some());
/// assert!(g.parent().unwrap().is_prefix_of(&c));
/// # Ok::<(), mw_model::ModelError>(())
/// ```
/// The symbolic path is immutable once built — every combinator
/// (`parent`, `child`, `truncated`, …) returns a new GLOB — so the
/// segments live behind an `Arc` slice: cloning a GLOB is a refcount
/// bump, and the thousands of sensor readings naming one room all share
/// that room's single segment allocation (the city-scale
/// bytes-per-object budget of `DESIGN.md` §14 counts on this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Glob {
    segments: Arc<[String]>,
    leaf: Option<GlobLeaf>,
}

impl Glob {
    /// Creates a purely symbolic GLOB from path segments.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseGlob`] when any segment is empty or
    /// contains `/` or parentheses.
    pub fn symbolic<S: Into<String>, I: IntoIterator<Item = S>>(
        segments: I,
    ) -> Result<Self, ModelError> {
        let segments: Vec<String> = segments.into_iter().map(Into::into).collect();
        for s in &segments {
            if s.is_empty() {
                return Err(ModelError::ParseGlob {
                    input: segments.join("/"),
                    reason: "empty segment",
                });
            }
            if s.contains('/') || s.contains('(') || s.contains(')') {
                return Err(ModelError::ParseGlob {
                    input: s.clone(),
                    reason: "segment contains reserved character",
                });
            }
        }
        Ok(Glob {
            segments: segments.into(),
            leaf: None,
        })
    }

    /// Creates a GLOB with a coordinate leaf under the symbolic prefix
    /// `segments`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseGlob`] for invalid segments (see
    /// [`Glob::symbolic`]).
    pub fn with_leaf<S: Into<String>, I: IntoIterator<Item = S>>(
        segments: I,
        leaf: GlobLeaf,
    ) -> Result<Self, ModelError> {
        let mut g = Glob::symbolic(segments)?;
        g.leaf = Some(leaf);
        Ok(g)
    }

    /// The symbolic path segments.
    #[must_use]
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// The coordinate leaf, if any.
    #[must_use]
    pub fn leaf(&self) -> Option<&GlobLeaf> {
        self.leaf.as_ref()
    }

    /// Number of symbolic segments.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// The last symbolic segment, e.g. the room number for
    /// `SC/3/3216/(12,3,4)`.
    #[must_use]
    pub fn last_segment(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }

    /// The GLOB with the last symbolic segment (and any leaf) removed, or
    /// `None` for an empty or single-segment GLOB.
    #[must_use]
    pub fn parent(&self) -> Option<Glob> {
        if self.segments.len() <= 1 {
            return None;
        }
        Some(Glob {
            segments: self.segments[..self.segments.len() - 1].to_vec().into(),
            leaf: None,
        })
    }

    /// A new GLOB with `segment` appended (drops any coordinate leaf).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseGlob`] for an invalid segment.
    pub fn child(&self, segment: impl Into<String>) -> Result<Glob, ModelError> {
        let mut segments = self.segments.to_vec();
        segments.push(segment.into());
        Glob::symbolic(segments)
    }

    /// Returns `true` when `self`'s symbolic path is a (non-strict) prefix
    /// of `other`'s.
    ///
    /// This is the containment relation on the GLOB hierarchy: `SC/3` is a
    /// prefix of `SC/3/3216/(12,3,4)`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &Glob) -> bool {
        other.segments.len() >= self.segments.len()
            && self.segments[..] == other.segments[..self.segments.len()]
    }

    /// Truncates the GLOB to at most `depth` symbolic segments, dropping
    /// the leaf when truncation occurs.
    ///
    /// §4.5 of the paper: "The lattice representation also allows
    /// incorporating privacy constraints that specify that a user's location
    /// can only be revealed upto a certain granularity (like a room or a
    /// floor)." Truncating `SC/3/3216/desk1` to depth 2 reveals only
    /// `SC/3`.
    #[must_use]
    pub fn truncated(&self, depth: usize) -> Glob {
        if depth >= self.segments.len() {
            return self.clone();
        }
        Glob {
            segments: self.segments[..depth].to_vec().into(),
            leaf: None,
        }
    }

    /// The longest common symbolic prefix of two GLOBs.
    #[must_use]
    pub fn common_prefix(&self, other: &Glob) -> Glob {
        let n = self
            .segments
            .iter()
            .zip(other.segments.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Glob {
            segments: self.segments[..n].to_vec().into(),
            leaf: None,
        }
    }
}

impl FromStr for Glob {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ModelError::ParseGlob {
                input: s.into(),
                reason: "empty glob",
            });
        }
        let mut segments = Vec::new();
        let mut leaf = None;
        let parts: Vec<&str> = s.split('/').collect();
        for (i, part) in parts.iter().enumerate() {
            if part.is_empty() {
                return Err(ModelError::ParseGlob {
                    input: s.into(),
                    reason: "empty segment",
                });
            }
            if part.starts_with('(') {
                if i != parts.len() - 1 {
                    return Err(ModelError::ParseGlob {
                        input: s.into(),
                        reason: "coordinates allowed only in the last segment",
                    });
                }
                leaf = Some(parse_leaf(part, s)?);
            } else {
                segments.push((*part).to_string());
            }
        }
        if segments.is_empty() && leaf.is_some() {
            return Err(ModelError::ParseGlob {
                input: s.into(),
                reason: "coordinate leaf needs a symbolic prefix",
            });
        }
        Ok(Glob {
            segments: segments.into(),
            leaf,
        })
    }
}

fn parse_leaf(text: &str, whole: &str) -> Result<GlobLeaf, ModelError> {
    // Parse a run of `(a,b[,c])` tuples separated by commas.
    let err = |reason: &'static str| ModelError::ParseGlob {
        input: whole.into(),
        reason,
    };
    let mut points = Vec::new();
    let mut rest = text;
    loop {
        let open = rest.find('(').ok_or_else(|| err("expected '('"))?;
        if open != 0 {
            return Err(err("unexpected text before '('"));
        }
        let close = rest.find(')').ok_or_else(|| err("missing ')'"))?;
        let inner = &rest[1..close];
        let nums: Result<Vec<f64>, _> = inner.split(',').map(|n| n.trim().parse::<f64>()).collect();
        let nums = nums.map_err(|_| err("invalid number in coordinates"))?;
        let p = match nums.len() {
            2 => Point3::new(nums[0], nums[1], 0.0),
            3 => Point3::new(nums[0], nums[1], nums[2]),
            _ => return Err(err("coordinate tuples must have 2 or 3 numbers")),
        };
        if !p.is_finite() {
            return Err(err("non-finite coordinate"));
        }
        points.push(p);
        rest = &rest[close + 1..];
        if rest.is_empty() {
            break;
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| err("expected ',' between coordinate tuples"))?;
        rest = rest.trim_start();
    }
    Ok(match points.len() {
        0 => return Err(err("no coordinates")),
        1 => GlobLeaf::Point(points[0]),
        2 => GlobLeaf::Line(points[0], points[1]),
        _ => GlobLeaf::Polygon(points),
    })
}

impl fmt::Display for Glob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.segments.join("/"))?;
        if let Some(leaf) = &self.leaf {
            if !self.segments.is_empty() {
                write!(f, "/")?;
            }
            write!(f, "{leaf}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_symbolic_point() {
        let g: Glob = "SC/3/3216/lightswitch1".parse().unwrap();
        assert_eq!(g.segments(), ["SC", "3", "3216", "lightswitch1"]);
        assert_eq!(g.leaf(), None);
        assert_eq!(g.depth(), 4);
        assert_eq!(g.last_segment(), Some("lightswitch1"));
    }

    #[test]
    fn parse_coordinate_point() {
        let g: Glob = "SC/3/3216/(12,3,4)".parse().unwrap();
        assert_eq!(g.segments(), ["SC", "3", "3216"]);
        assert_eq!(
            g.leaf(),
            Some(&GlobLeaf::Point(Point3::new(12.0, 3.0, 4.0)))
        );
    }

    #[test]
    fn parse_line_leaf() {
        let g: Glob = "SC/3/3216/(1,3),(4,5)".parse().unwrap();
        assert_eq!(
            g.leaf(),
            Some(&GlobLeaf::Line(
                Point3::new(1.0, 3.0, 0.0),
                Point3::new(4.0, 5.0, 0.0)
            ))
        );
    }

    #[test]
    fn parse_polygon_leaf() {
        let g: Glob = "SC/3/(45,12),(45,40),(65,40),(65,12)".parse().unwrap();
        assert_eq!(g.segments(), ["SC", "3"]);
        match g.leaf() {
            Some(GlobLeaf::Polygon(v)) => assert_eq!(v.len(), 4),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert!("".parse::<Glob>().is_err());
        assert!("SC//3".parse::<Glob>().is_err());
        assert!("SC/(1,2)/3".parse::<Glob>().is_err()); // coords not last
        assert!("(1,2)".parse::<Glob>().is_err()); // no prefix
        assert!("SC/(1)".parse::<Glob>().is_err()); // 1-tuple
        assert!("SC/(1,2,3,4)".parse::<Glob>().is_err()); // 4-tuple
        assert!("SC/(a,b)".parse::<Glob>().is_err()); // not numbers
        assert!("SC/(1,2".parse::<Glob>().is_err()); // missing )
        assert!("SC/(1,2)(3,4)".parse::<Glob>().is_err()); // missing comma
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "SC/3/3216/lightswitch1",
            "SC/3/3216/(12,3,4)",
            "SC/3/3216/(1,3),(4,5)",
            "SC/3/(45,12),(45,40),(65,40),(65,12)",
        ] {
            let g: Glob = s.parse().unwrap();
            let round: Glob = g.to_string().parse().unwrap();
            assert_eq!(g, round, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn prefix_relation() {
        let floor: Glob = "SC/3".parse().unwrap();
        let room: Glob = "SC/3/3216".parse().unwrap();
        let coord: Glob = "SC/3/3216/(12,3,4)".parse().unwrap();
        assert!(floor.is_prefix_of(&room));
        assert!(floor.is_prefix_of(&coord));
        assert!(room.is_prefix_of(&coord));
        assert!(!room.is_prefix_of(&floor));
        assert!(floor.is_prefix_of(&floor));
        let other: Glob = "SC/4".parse().unwrap();
        assert!(!other.is_prefix_of(&room));
    }

    #[test]
    fn parent_and_child() {
        let room: Glob = "SC/3/3216".parse().unwrap();
        assert_eq!(room.parent().unwrap().to_string(), "SC/3");
        assert_eq!(room.child("desk1").unwrap().to_string(), "SC/3/3216/desk1");
        let top: Glob = "SC".parse().unwrap();
        assert_eq!(top.parent(), None);
    }

    #[test]
    fn truncation_for_privacy() {
        let fine: Glob = "SC/3/3216/(12,3,4)".parse().unwrap();
        assert_eq!(fine.truncated(2).to_string(), "SC/3");
        assert_eq!(fine.truncated(1).to_string(), "SC");
        // Truncating beyond depth keeps everything including the leaf.
        assert_eq!(fine.truncated(10), fine);
    }

    #[test]
    fn common_prefix() {
        let a: Glob = "SC/3/3216".parse().unwrap();
        let b: Glob = "SC/3/3105".parse().unwrap();
        assert_eq!(a.common_prefix(&b).to_string(), "SC/3");
        let c: Glob = "EB/1".parse().unwrap();
        assert_eq!(a.common_prefix(&c).depth(), 0);
    }

    #[test]
    fn symbolic_constructor_validates() {
        assert!(Glob::symbolic(["SC", "3"]).is_ok());
        assert!(Glob::symbolic(["SC", ""]).is_err());
        assert!(Glob::symbolic(["SC", "a/b"]).is_err());
        assert!(Glob::symbolic(["SC", "(x)"]).is_err());
    }

    #[test]
    fn with_leaf_constructor() {
        let g = Glob::with_leaf(["SC", "3"], GlobLeaf::Point(Point3::new(1.0, 2.0, 0.0))).unwrap();
        assert_eq!(g.to_string(), "SC/3/(1,2)");
    }

    #[test]
    fn leaf_points() {
        let line = GlobLeaf::Line(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 0.0));
        assert_eq!(line.points().len(), 2);
        let poly = GlobLeaf::Polygon(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
        ]);
        assert_eq!(poly.points().len(), 3);
    }

    #[test]
    fn display_3d_vs_2d_points() {
        let g = Glob::with_leaf(["A"], GlobLeaf::Point(Point3::new(1.0, 2.0, 3.0))).unwrap();
        assert_eq!(g.to_string(), "A/(1,2,3)");
        let g2 = Glob::with_leaf(["A"], GlobLeaf::Point(Point3::new(1.0, 2.0, 0.0))).unwrap();
        assert_eq!(g2.to_string(), "A/(1,2)");
    }
}
