//! Location model for the MiddleWhere reproduction.
//!
//! Implements §3 of the paper:
//!
//! - [`Glob`] — the hierarchical *Gaia LOcation Byte-string* that names both
//!   symbolic locations (`SC/3/3216/lightswitch1`) and coordinate locations
//!   (`SC/3/3216/(12,3,4)`),
//! - [`LocationKind`] / [`Location`] — the hybrid symbolic + coordinate
//!   model with point, line and polygon location types,
//! - [`Confidence`], [`Resolution`], [`quality::QualityOfLocation`] — the
//!   three quality metrics of §3.2 (resolution, confidence, freshness),
//! - [`TemporalDegradation`] — the `tdf: conf × time → conf` family that
//!   decays confidence as readings age,
//! - [`time`] — a deterministic simulation clock ([`SimTime`],
//!   [`SimDuration`]) so every experiment is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confidence;
mod error;
mod glob;
mod location;
pub mod quality;
pub mod tdf;
pub mod time;

pub use confidence::Confidence;
pub use error::ModelError;
pub use glob::{Glob, GlobLeaf};
pub use location::{Location, LocationKind};
pub use quality::{QualityOfLocation, Resolution};
pub use tdf::TemporalDegradation;
pub use time::{SimDuration, SimTime};
