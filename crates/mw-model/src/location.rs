use std::fmt;

use mw_geometry::{Point, Polygon, Rect, Segment};
use serde::{Deserialize, Serialize};

use crate::{Glob, GlobLeaf, ModelError};

/// The geometric type of a location (§3 of the paper).
///
/// "The location model defines three types of locations: points, lines and
/// polygons" — a light switch is a point, a door a line, a room or a
/// work-region a polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocationKind {
    /// A single coordinate (light switch, card reader).
    Point,
    /// A line segment (door, non-enclosing wall).
    Line,
    /// A polygonal region (room, corridor, table, usage region).
    Polygon,
}

impl fmt::Display for LocationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocationKind::Point => "point",
            LocationKind::Line => "line",
            LocationKind::Polygon => "polygon",
        };
        f.write_str(s)
    }
}

/// A location in MiddleWhere's hybrid model: either a symbolic name or a
/// coordinate geometry, both expressed as a [`Glob`].
///
/// §3: "Location-sensitive applications can express locations either in
/// terms of coordinates with respect to a certain axis of reference, or in
/// terms of symbolic names."
///
/// # Example
///
/// ```
/// use mw_model::{Location, LocationKind};
///
/// let sym = Location::parse("SC/3/3216/lightswitch1")?;
/// assert!(sym.is_symbolic());
///
/// let coord = Location::parse("SC/3/3216/(12,3,4)")?;
/// assert!(coord.is_coordinate());
/// assert_eq!(coord.kind(), Some(LocationKind::Point));
/// # Ok::<(), mw_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Location {
    glob: Glob,
}

impl Location {
    /// Parses a GLOB string into a location.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ParseGlob`] when the string is not a valid
    /// GLOB.
    pub fn parse(s: &str) -> Result<Self, ModelError> {
        Ok(Location { glob: s.parse()? })
    }

    /// The underlying GLOB.
    #[must_use]
    pub fn glob(&self) -> &Glob {
        &self.glob
    }

    /// Returns `true` for a purely symbolic location.
    #[must_use]
    pub fn is_symbolic(&self) -> bool {
        self.glob.leaf().is_none()
    }

    /// Returns `true` for a coordinate location.
    #[must_use]
    pub fn is_coordinate(&self) -> bool {
        self.glob.leaf().is_some()
    }

    /// The geometric kind for a coordinate location, or `None` for a
    /// symbolic one.
    #[must_use]
    pub fn kind(&self) -> Option<LocationKind> {
        self.glob.leaf().map(|leaf| match leaf {
            GlobLeaf::Point(_) => LocationKind::Point,
            GlobLeaf::Line(_, _) => LocationKind::Line,
            GlobLeaf::Polygon(_) => LocationKind::Polygon,
        })
    }

    /// Floor-plane MBR of a coordinate location (in the coordinate system
    /// named by the GLOB prefix), or `None` for a symbolic location.
    ///
    /// The fusion algorithm converts every location to an MBR (§4.1.2);
    /// this is that conversion for model-level locations.
    #[must_use]
    pub fn mbr(&self) -> Option<Rect> {
        let leaf = self.glob.leaf()?;
        Rect::bounding(leaf.points().into_iter().map(|p| p.to_floor()))
    }

    /// The floor-plane point of a point location.
    #[must_use]
    pub fn as_point(&self) -> Option<Point> {
        match self.glob.leaf()? {
            GlobLeaf::Point(p) => Some(p.to_floor()),
            _ => None,
        }
    }

    /// The floor-plane segment of a line location.
    #[must_use]
    pub fn as_segment(&self) -> Option<Segment> {
        match self.glob.leaf()? {
            GlobLeaf::Line(a, b) => Some(Segment::new(a.to_floor(), b.to_floor())),
            _ => None,
        }
    }

    /// The floor-plane polygon of a polygon location.
    #[must_use]
    pub fn as_polygon(&self) -> Option<Polygon> {
        match self.glob.leaf()? {
            GlobLeaf::Polygon(v) => Polygon::new(v.iter().map(|p| p.to_floor()).collect()).ok(),
            _ => None,
        }
    }
}

impl From<Glob> for Location {
    fn from(glob: Glob) -> Self {
        Location { glob }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.glob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_has_no_geometry() {
        let l = Location::parse("SC/3/3216/lightswitch1").unwrap();
        assert!(l.is_symbolic());
        assert!(!l.is_coordinate());
        assert_eq!(l.kind(), None);
        assert_eq!(l.mbr(), None);
        assert_eq!(l.as_point(), None);
    }

    #[test]
    fn point_location() {
        let l = Location::parse("SC/3/3216/(12,3,4)").unwrap();
        assert!(l.is_coordinate());
        assert_eq!(l.kind(), Some(LocationKind::Point));
        assert_eq!(l.as_point(), Some(Point::new(12.0, 3.0)));
        let mbr = l.mbr().unwrap();
        assert!(mbr.is_degenerate());
        assert_eq!(mbr.center(), Point::new(12.0, 3.0));
    }

    #[test]
    fn line_location() {
        let l = Location::parse("SC/3/3216/(1,3),(4,5)").unwrap();
        assert_eq!(l.kind(), Some(LocationKind::Line));
        let seg = l.as_segment().unwrap();
        assert_eq!(seg.a, Point::new(1.0, 3.0));
        assert_eq!(seg.b, Point::new(4.0, 5.0));
        assert_eq!(l.as_point(), None);
        assert_eq!(l.as_polygon(), None);
    }

    #[test]
    fn polygon_location() {
        let l = Location::parse("SC/3/(45,12),(45,40),(65,40),(65,12)").unwrap();
        assert_eq!(l.kind(), Some(LocationKind::Polygon));
        let poly = l.as_polygon().unwrap();
        assert_eq!(poly.area(), 20.0 * 28.0);
        let mbr = l.mbr().unwrap();
        assert_eq!(mbr.area(), 20.0 * 28.0);
    }

    #[test]
    fn from_glob_and_display() {
        let g: Glob = "SC/3/3105".parse().unwrap();
        let l: Location = g.clone().into();
        assert_eq!(l.glob(), &g);
        assert_eq!(l.to_string(), "SC/3/3105");
    }

    #[test]
    fn kind_display() {
        assert_eq!(LocationKind::Point.to_string(), "point");
        assert_eq!(LocationKind::Line.to_string(), "line");
        assert_eq!(LocationKind::Polygon.to_string(), "polygon");
    }
}
