//! Quality of location information.
//!
//! §3.2 of the paper measures quality along three axes:
//!
//! 1. **Resolution** — the region the sensor says the object is in, either
//!    a distance (GPS: "within 50 feet") or a symbolic region (card
//!    reader: "somewhere inside this room").
//! 2. **Confidence** — the probability the object really is in that region.
//! 3. **Freshness** — how long ago the reading was taken; every reading has
//!    an expiry time and a temporal degradation function.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Confidence, Glob, SimDuration, SimTime, TemporalDegradation};

/// The resolution of a sensor reading (§3.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Resolution {
    /// The object lies within this distance of the reported coordinate
    /// (RF badges, GPS).
    Distance(f64),
    /// The object lies somewhere inside this symbolic region (card
    /// readers, biometric logins).
    Symbolic(Glob),
}

impl Resolution {
    /// The error radius for distance resolutions, `None` for symbolic.
    #[must_use]
    pub fn radius(&self) -> Option<f64> {
        match self {
            Resolution::Distance(r) => Some(*r),
            Resolution::Symbolic(_) => None,
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resolution::Distance(r) => write!(f, "±{r}"),
            Resolution::Symbolic(g) => write!(f, "within {g}"),
        }
    }
}

/// The complete quality descriptor attached to a piece of location
/// information.
///
/// # Example
///
/// ```
/// use mw_model::{
///     quality::{QualityOfLocation, Resolution},
///     Confidence, SimDuration, SimTime, TemporalDegradation,
/// };
///
/// let q = QualityOfLocation::new(
///     Resolution::Distance(0.5),
///     Confidence::new(0.95)?,
///     SimTime::ZERO,
///     SimDuration::from_secs(3.0),
///     TemporalDegradation::Linear { lifetime: SimDuration::from_secs(3.0) },
/// );
/// assert!(!q.is_expired(SimTime::from_secs(2.0)));
/// assert!(q.is_expired(SimTime::from_secs(3.5)));
/// // Confidence decays with age.
/// assert!(q.confidence_at(SimTime::from_secs(2.0)) < q.confidence_at(SimTime::ZERO));
/// # Ok::<(), mw_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityOfLocation {
    resolution: Resolution,
    confidence: Confidence,
    detected_at: SimTime,
    time_to_live: SimDuration,
    tdf: TemporalDegradation,
}

impl QualityOfLocation {
    /// Creates a quality descriptor.
    #[must_use]
    pub fn new(
        resolution: Resolution,
        confidence: Confidence,
        detected_at: SimTime,
        time_to_live: SimDuration,
        tdf: TemporalDegradation,
    ) -> Self {
        QualityOfLocation {
            resolution,
            confidence,
            detected_at,
            time_to_live,
            tdf,
        }
    }

    /// The reading's resolution.
    #[must_use]
    pub fn resolution(&self) -> &Resolution {
        &self.resolution
    }

    /// The confidence at detection time, before any temporal degradation.
    #[must_use]
    pub fn base_confidence(&self) -> Confidence {
        self.confidence
    }

    /// When the reading was taken.
    #[must_use]
    pub fn detected_at(&self) -> SimTime {
        self.detected_at
    }

    /// How long the reading stays valid ("time-to-live" in Table 2's
    /// companion sensor table).
    #[must_use]
    pub fn time_to_live(&self) -> SimDuration {
        self.time_to_live
    }

    /// The temporal degradation function in force for this reading.
    #[must_use]
    pub fn tdf(&self) -> &TemporalDegradation {
        &self.tdf
    }

    /// Age of the reading at `now`.
    #[must_use]
    pub fn freshness(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.detected_at)
    }

    /// Returns `true` once the reading is older than its time-to-live.
    ///
    /// §5.2: "A card reader location value that is older than 10 seconds is
    /// considered stale."
    #[must_use]
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.freshness(now) > self.time_to_live
    }

    /// Confidence after temporal degradation at `now`; zero once expired.
    #[must_use]
    pub fn confidence_at(&self, now: SimTime) -> Confidence {
        if self.is_expired(now) {
            return Confidence::ZERO;
        }
        self.tdf.apply(self.confidence, self.freshness(now))
    }

    /// Returns `true` when the descriptor claims a detection time later
    /// than `now` — the producing sensor's clock runs ahead of the
    /// service clock. Because [`freshness`](QualityOfLocation::freshness)
    /// saturates at zero, such a reading would look maximally fresh for
    /// as long as the skew lasts and its expiry would be postponed by the
    /// same amount.
    #[must_use]
    pub fn is_from_future(&self, now: SimTime) -> bool {
        self.detected_at > now
    }

    /// Clamps a future detection time to `now`, returning `true` when a
    /// clamp happened. Afterwards freshness, temporal degradation and
    /// expiry all count from the moment the middleware actually saw the
    /// reading — never negative staleness, never inflated freshness.
    pub fn clamp_detection_time(&mut self, now: SimTime) -> bool {
        if self.is_from_future(now) {
            self.detected_at = now;
            true
        } else {
            false
        }
    }

    /// Forces the reading to expire immediately (used by the biometric
    /// adapter when a user manually logs out, §6).
    pub fn expire_now(&mut self, now: SimTime) {
        self.time_to_live = now.saturating_since(self.detected_at);
        // Anything strictly after `now` counts as expired.
        self.confidence = Confidence::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ttl: f64) -> QualityOfLocation {
        QualityOfLocation::new(
            Resolution::Distance(1.0),
            Confidence::new(0.9).unwrap(),
            SimTime::from_secs(10.0),
            SimDuration::from_secs(ttl),
            TemporalDegradation::Linear {
                lifetime: SimDuration::from_secs(ttl),
            },
        )
    }

    #[test]
    fn freshness_counts_from_detection() {
        let quality = q(60.0);
        assert_eq!(
            quality.freshness(SimTime::from_secs(25.0)),
            SimDuration::from_secs(15.0)
        );
        // Before detection: clamped to zero.
        assert_eq!(
            quality.freshness(SimTime::from_secs(5.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn expiry() {
        let quality = q(60.0);
        assert!(!quality.is_expired(SimTime::from_secs(70.0)));
        assert!(quality.is_expired(SimTime::from_secs(70.1)));
    }

    #[test]
    fn confidence_decays_then_zeroes() {
        let quality = q(100.0);
        let at_detection = quality.confidence_at(SimTime::from_secs(10.0));
        assert_eq!(at_detection.value(), 0.9);
        let halfway = quality.confidence_at(SimTime::from_secs(60.0));
        assert!((halfway.value() - 0.45).abs() < 1e-12);
        let expired = quality.confidence_at(SimTime::from_secs(111.0));
        assert_eq!(expired, Confidence::ZERO);
    }

    #[test]
    fn expire_now_kills_reading() {
        let mut quality = q(1000.0);
        quality.expire_now(SimTime::from_secs(20.0));
        assert!(quality.is_expired(SimTime::from_secs(20.1)));
        assert_eq!(
            quality.confidence_at(SimTime::from_secs(20.0)),
            Confidence::ZERO
        );
    }

    #[test]
    fn future_detection_times_clamp_to_now() {
        // Detected at t=10 with a 60 s ttl; the service clock is at t=4.
        let mut quality = q(60.0);
        let now = SimTime::from_secs(4.0);
        assert!(quality.is_from_future(now));
        // Unclamped, the skew inflates freshness (age saturates at zero,
        // so confidence shows no decay) and postpones expiry to t=70.1.
        assert_eq!(quality.freshness(now), SimDuration::ZERO);
        assert_eq!(quality.confidence_at(now).value(), 0.9);
        assert!(!quality.is_expired(SimTime::from_secs(70.0)));
        // Clamped, the reading's lifetime counts from `now`.
        assert!(quality.clamp_detection_time(now));
        assert_eq!(quality.detected_at(), now);
        assert!(!quality.clamp_detection_time(now), "idempotent");
        assert!(!quality.is_from_future(now));
        assert_eq!(
            quality.freshness(SimTime::from_secs(34.0)),
            SimDuration::from_secs(30.0)
        );
        assert!(quality.is_expired(SimTime::from_secs(64.1)));
        // Past detection times are untouched.
        assert!(!quality.clamp_detection_time(SimTime::from_secs(100.0)));
        assert_eq!(quality.detected_at(), now);
    }

    #[test]
    fn resolution_radius() {
        assert_eq!(Resolution::Distance(2.5).radius(), Some(2.5));
        let sym = Resolution::Symbolic("SC/3/3105".parse().unwrap());
        assert_eq!(sym.radius(), None);
    }

    #[test]
    fn resolution_display() {
        assert_eq!(Resolution::Distance(0.5).to_string(), "±0.5");
        let sym = Resolution::Symbolic("SC/3/3105".parse().unwrap());
        assert_eq!(sym.to_string(), "within SC/3/3105");
    }

    #[test]
    fn accessors() {
        let quality = q(60.0);
        assert_eq!(quality.base_confidence().value(), 0.9);
        assert_eq!(quality.detected_at(), SimTime::from_secs(10.0));
        assert_eq!(quality.time_to_live(), SimDuration::from_secs(60.0));
        assert!(matches!(quality.resolution(), Resolution::Distance(_)));
        assert!(matches!(quality.tdf(), TemporalDegradation::Linear { .. }));
    }
}
