//! Temporal degradation functions.
//!
//! §3.2 of the paper: "our location model employs a temporal degradation
//! function (tdf) that reduces the confidence of the location information
//! from a particular sensor with time. `tdf_sensor-type : conf × time →
//! conf`. The tdf may degrade the confidence in a continuous or in a
//! discrete manner with time."
//!
//! A card-swipe reading is near-certain at swipe time and nearly worthless
//! minutes later; a continuously-tracking UWB tag barely degrades between
//! refreshes. Each sensor type picks the [`TemporalDegradation`] matching
//! its physics.

use serde::{Deserialize, Serialize};

use crate::{Confidence, SimDuration};

/// A temporal degradation function `conf × time → conf`.
///
/// All variants are monotonically non-increasing in elapsed time and map a
/// zero elapsed time to the original confidence.
///
/// # Example
///
/// ```
/// use mw_model::{Confidence, SimDuration, TemporalDegradation};
///
/// let tdf = TemporalDegradation::ExponentialHalfLife {
///     half_life: SimDuration::from_secs(60.0),
/// };
/// let c0 = Confidence::new(0.8)?;
/// let c1 = tdf.apply(c0, SimDuration::from_secs(60.0));
/// assert!((c1.value() - 0.4).abs() < 1e-12);
/// # Ok::<(), mw_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum TemporalDegradation {
    /// No decay: the reading is as good as new until it expires.
    #[default]
    None,
    /// Linear decay reaching zero at `lifetime`.
    Linear {
        /// Time at which confidence reaches zero.
        lifetime: SimDuration,
    },
    /// Continuous exponential decay with the given half-life.
    ExponentialHalfLife {
        /// Time for confidence to halve.
        half_life: SimDuration,
    },
    /// Discrete decay: multiply confidence by `factor` after each full
    /// `step` elapsed.
    Step {
        /// Length of one step.
        step: SimDuration,
        /// Multiplier applied per step, in `[0, 1]`.
        factor: f64,
    },
}

impl TemporalDegradation {
    /// Applies the degradation to `confidence` after `elapsed` time.
    #[must_use]
    pub fn apply(&self, confidence: Confidence, elapsed: SimDuration) -> Confidence {
        let c = confidence.value();
        let degraded = match self {
            TemporalDegradation::None => c,
            TemporalDegradation::Linear { lifetime } => {
                if lifetime.as_secs() == 0.0 {
                    if elapsed.as_secs() > 0.0 {
                        0.0
                    } else {
                        c
                    }
                } else {
                    c * (1.0 - (elapsed.as_secs() / lifetime.as_secs()).min(1.0))
                }
            }
            TemporalDegradation::ExponentialHalfLife { half_life } => {
                if half_life.as_secs() == 0.0 {
                    if elapsed.as_secs() > 0.0 {
                        0.0
                    } else {
                        c
                    }
                } else {
                    c * 0.5f64.powf(elapsed.as_secs() / half_life.as_secs())
                }
            }
            TemporalDegradation::Step { step, factor } => {
                if step.as_secs() == 0.0 {
                    c
                } else {
                    let steps = (elapsed.as_secs() / step.as_secs()).floor();
                    c * factor.clamp(0.0, 1.0).powf(steps)
                }
            }
        };
        Confidence::saturating(degraded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: f64) -> Confidence {
        Confidence::new(v).unwrap()
    }

    fn s(v: f64) -> SimDuration {
        SimDuration::from_secs(v)
    }

    #[test]
    fn none_is_identity() {
        let tdf = TemporalDegradation::None;
        assert_eq!(tdf.apply(c(0.7), s(1e6)), c(0.7));
    }

    #[test]
    fn zero_elapsed_is_identity_for_all() {
        let tdfs = [
            TemporalDegradation::None,
            TemporalDegradation::Linear { lifetime: s(10.0) },
            TemporalDegradation::ExponentialHalfLife { half_life: s(10.0) },
            TemporalDegradation::Step {
                step: s(10.0),
                factor: 0.5,
            },
        ];
        for tdf in tdfs {
            assert_eq!(tdf.apply(c(0.9), SimDuration::ZERO), c(0.9), "{tdf:?}");
        }
    }

    #[test]
    fn linear_hits_zero_at_lifetime() {
        let tdf = TemporalDegradation::Linear { lifetime: s(100.0) };
        assert_eq!(tdf.apply(c(0.8), s(50.0)), c(0.4));
        assert_eq!(tdf.apply(c(0.8), s(100.0)), c(0.0));
        assert_eq!(tdf.apply(c(0.8), s(200.0)), c(0.0)); // clamped
    }

    #[test]
    fn exponential_half_life() {
        let tdf = TemporalDegradation::ExponentialHalfLife { half_life: s(30.0) };
        let out = tdf.apply(c(1.0), s(30.0));
        assert!((out.value() - 0.5).abs() < 1e-12);
        let out2 = tdf.apply(c(1.0), s(60.0));
        assert!((out2.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn step_decay_is_discrete() {
        let tdf = TemporalDegradation::Step {
            step: s(10.0),
            factor: 0.5,
        };
        // Within the first step: unchanged.
        assert_eq!(tdf.apply(c(0.8), s(9.99)), c(0.8));
        // After one full step: halved.
        assert_eq!(tdf.apply(c(0.8), s(10.0)), c(0.4));
        // After three steps: /8.
        assert_eq!(tdf.apply(c(0.8), s(30.0)), c(0.1));
    }

    #[test]
    fn monotone_non_increasing() {
        let tdfs = [
            TemporalDegradation::Linear { lifetime: s(50.0) },
            TemporalDegradation::ExponentialHalfLife { half_life: s(20.0) },
            TemporalDegradation::Step {
                step: s(5.0),
                factor: 0.8,
            },
        ];
        for tdf in tdfs {
            let mut prev = tdf.apply(c(1.0), SimDuration::ZERO);
            for t in 1..100 {
                let cur = tdf.apply(c(1.0), s(t as f64));
                assert!(cur <= prev, "{tdf:?} increased at t={t}");
                prev = cur;
            }
        }
    }

    #[test]
    fn degenerate_parameters_do_not_panic() {
        let lin = TemporalDegradation::Linear {
            lifetime: SimDuration::ZERO,
        };
        assert_eq!(lin.apply(c(0.9), s(1.0)), c(0.0));
        assert_eq!(lin.apply(c(0.9), SimDuration::ZERO), c(0.9));
        let exp = TemporalDegradation::ExponentialHalfLife {
            half_life: SimDuration::ZERO,
        };
        assert_eq!(exp.apply(c(0.9), s(1.0)), c(0.0));
        let step = TemporalDegradation::Step {
            step: SimDuration::ZERO,
            factor: 0.5,
        };
        assert_eq!(step.apply(c(0.9), s(1.0)), c(0.9));
    }

    #[test]
    fn step_factor_is_clamped() {
        let tdf = TemporalDegradation::Step {
            step: s(1.0),
            factor: 1.5, // invalid, clamped to 1.0
        };
        assert_eq!(tdf.apply(c(0.5), s(10.0)), c(0.5));
    }

    #[test]
    fn default_is_none() {
        assert_eq!(TemporalDegradation::default(), TemporalDegradation::None);
    }
}
