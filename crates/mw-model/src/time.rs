//! Deterministic simulation time.
//!
//! The paper's middleware stamps every sensor reading with a detection time
//! and decays confidence as readings age (§3.2, §5.2). Real wall-clock time
//! would make experiments irreproducible, so the whole workspace runs on an
//! explicit simulated clock: [`SimTime`] is an instant, [`SimDuration`] an
//! interval, both in seconds.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in seconds since the start of the
/// experiment.
///
/// # Example
///
/// ```
/// use mw_model::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_secs(30.0);
/// assert_eq!(t1 - t0, SimDuration::from_secs(30.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The start of the experiment.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant `secs` seconds after the start.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is not finite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite(), "time must be finite");
        SimTime(secs)
    }

    /// Seconds since the start of the experiment.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Time elapsed since `earlier`; zero when `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Signed difference is clamped at zero; simulation time only moves
    /// forward.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

/// A non-negative interval on the simulation clock, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    /// The zero-length interval.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates an interval of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration(secs)
    }

    /// Creates an interval of `mins` minutes.
    ///
    /// # Panics
    ///
    /// Panics when `mins` is negative or not finite.
    #[must_use]
    pub fn from_mins(mins: f64) -> Self {
        SimDuration::from_secs(mins * 60.0)
    }

    /// Length in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating subtraction: never negative.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 * rhs).max(0.0))
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!(
            SimTime::from_secs(20.0) - SimTime::from_secs(5.0),
            SimDuration::from_secs(15.0)
        );
    }

    #[test]
    fn subtraction_saturates() {
        let d = SimTime::from_secs(5.0) - SimTime::from_secs(10.0);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(3.0) - SimDuration::from_secs(7.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(2.5);
        t += SimDuration::from_secs(2.5);
        assert_eq!(t.as_secs(), 5.0);
    }

    #[test]
    fn from_mins() {
        assert_eq!(SimDuration::from_mins(15.0).as_secs(), 900.0);
    }

    #[test]
    fn duration_scaling_and_ratio() {
        let d = SimDuration::from_secs(10.0);
        assert_eq!((d * 0.5).as_secs(), 5.0);
        assert_eq!(d / SimDuration::from_secs(4.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_panics() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1.0) < SimTime::from_secs(2.0));
        assert!(SimDuration::from_secs(1.0) < SimDuration::from_secs(2.0));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250s");
    }
}
