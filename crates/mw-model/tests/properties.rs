//! Property-based tests for the location model.

use mw_model::{Confidence, Glob, Location, SimDuration, SimTime, TemporalDegradation};
use proptest::prelude::*;

fn segment_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_-]{0,8}"
}

fn glob_strategy() -> impl Strategy<Value = Glob> {
    proptest::collection::vec(segment_strategy(), 1..6)
        .prop_map(|segs| Glob::symbolic(segs).expect("valid segments"))
}

proptest! {
    #[test]
    fn glob_display_parse_roundtrip(g in glob_strategy()) {
        let parsed: Glob = g.to_string().parse().unwrap();
        prop_assert_eq!(g, parsed);
    }

    #[test]
    fn glob_coordinate_roundtrip(
        segs in proptest::collection::vec(segment_strategy(), 1..4),
        x in -100i32..100, y in -100i32..100, z in -10i32..10,
    ) {
        // Integer coordinates survive float formatting exactly.
        let s = format!("{}/({},{},{})", segs.join("/"), x, y, z);
        let g: Glob = s.parse().unwrap();
        let round: Glob = g.to_string().parse().unwrap();
        prop_assert_eq!(g, round);
    }

    #[test]
    fn truncation_is_prefix(g in glob_strategy(), depth in 0usize..8) {
        let t = g.truncated(depth);
        prop_assert!(t.is_prefix_of(&g));
        prop_assert!(t.depth() <= g.depth());
    }

    #[test]
    fn common_prefix_is_prefix_of_both(a in glob_strategy(), b in glob_strategy()) {
        let c = a.common_prefix(&b);
        if c.depth() > 0 {
            prop_assert!(c.is_prefix_of(&a));
            prop_assert!(c.is_prefix_of(&b));
        }
    }

    #[test]
    fn prefix_is_transitive(g in glob_strategy()) {
        // Every ancestor chain member is a prefix of the full glob.
        let mut cur = Some(g.clone());
        while let Some(c) = cur {
            prop_assert!(c.is_prefix_of(&g));
            cur = c.parent();
        }
    }

    #[test]
    fn confidence_product_within_bounds(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let p = Confidence::new(a).unwrap() * Confidence::new(b).unwrap();
        prop_assert!((0.0..=1.0).contains(&p.value()));
        prop_assert!(p.value() <= a && p.value() <= b);
    }

    #[test]
    fn complement_involution(a in 0.0..=1.0f64) {
        let c = Confidence::new(a).unwrap();
        prop_assert!((c.complement().complement().value() - a).abs() < 1e-12);
    }

    #[test]
    fn tdf_output_in_range_and_monotone(
        base in 0.0..=1.0f64,
        life in 0.1..1000.0f64,
        t1 in 0.0..2000.0f64,
        dt in 0.0..500.0f64,
    ) {
        let tdfs = [
            TemporalDegradation::None,
            TemporalDegradation::Linear { lifetime: SimDuration::from_secs(life) },
            TemporalDegradation::ExponentialHalfLife { half_life: SimDuration::from_secs(life) },
            TemporalDegradation::Step { step: SimDuration::from_secs(life / 4.0), factor: 0.7 },
        ];
        let c = Confidence::new(base).unwrap();
        for tdf in tdfs {
            let early = tdf.apply(c, SimDuration::from_secs(t1));
            let late = tdf.apply(c, SimDuration::from_secs(t1 + dt));
            prop_assert!((0.0..=1.0).contains(&early.value()));
            prop_assert!(late <= early, "{tdf:?} not monotone");
            // Never exceeds the base confidence.
            prop_assert!(early.value() <= base + 1e-12);
        }
    }

    #[test]
    fn sim_time_ordering_consistent(a in 0.0..1e6f64, b in 0.0..1e6f64) {
        let ta = SimTime::from_secs(a);
        let tb = SimTime::from_secs(b);
        if a < b {
            prop_assert!(ta < tb);
            prop_assert_eq!((tb - ta).as_secs(), b - a);
            prop_assert_eq!(ta - tb, SimDuration::ZERO);
        }
    }

    #[test]
    fn location_mbr_contains_all_leaf_points(
        x0 in -50.0..50.0f64, y0 in -50.0..50.0f64,
        x1 in -50.0..50.0f64, y1 in -50.0..50.0f64,
    ) {
        let s = format!("B/({x0},{y0}),({x1},{y1})");
        let loc = Location::parse(&s).unwrap();
        let mbr = loc.mbr().unwrap();
        let seg = loc.as_segment().unwrap();
        prop_assert!(mbr.contains_point(seg.a));
        prop_assert!(mbr.contains_point(seg.b));
    }
}
