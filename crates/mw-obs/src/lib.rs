//! Observability layer for the MiddleWhere pipeline: metrics + tracing.
//!
//! The middleware sits between many sensors and many applications
//! (paper §2, Figure 1), which makes it exactly the component whose
//! ingest latency, fusion cost, and subscription fan-out must be
//! measurable before it can be scaled. This crate provides that
//! measurement layer with **zero external dependencies** beyond the
//! workspace shims:
//!
//! - [`MetricsRegistry`] — a cheap-to-clone handle to a named set of
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s.
//!   Handles are resolved once at component construction and then
//!   updated lock-free on the hot path.
//! - [`Tracer`] — a lightweight `span!`-style tracing facade with a
//!   bounded ring-buffer event sink and pluggable [`TraceSubscriber`]s.
//! - [`Snapshot`] — a point-in-time, deterministic (sorted) view of a
//!   registry, serializable through the `serde_json` shim so it can be
//!   answered over a stats RPC, published on a topic, or dumped to a
//!   `BENCH_*.json` file.
//!
//! # Metric naming scheme
//!
//! Names are dotted, lowercase, coarse-to-fine:
//! `<layer>.<component>.<metric>[_<unit>]` — e.g.
//! `core.ingest.latency_us`, `fusion.cache.hits`,
//! `bus.client.duplicates_discarded`. Durations are always recorded in
//! microseconds and suffixed `_us`. See `DESIGN.md` §8 for the full
//! taxonomy.
//!
//! # Example
//!
//! ```
//! use mw_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let ingested = registry.counter("core.ingest.readings");
//! let latency = registry.histogram("core.ingest.latency_us");
//!
//! ingested.inc();
//! {
//!     let _timer = latency.start_timer(); // records on drop
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("core.ingest.readings"), Some(1));
//! assert_eq!(snap.histogram("core.ingest.latency_us").unwrap().count, 1);
//! let json = snap.to_json_pretty();
//! assert!(json.contains("core.ingest.readings"));
//! ```

pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramTimer, MetricsRegistry};
pub use snapshot::{BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};
pub use trace::{SpanGuard, TraceEvent, TraceSubscriber, Tracer};
