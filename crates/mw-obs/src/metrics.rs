//! Atomic counters, gauges, and fixed-bucket histograms behind a
//! cheap-to-clone registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed:
//! resolve them once by name at component construction, then update
//! them on the hot path without touching the registry's maps again.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::snapshot::{BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};
use crate::trace::Tracer;

/// A monotonically increasing atomic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful as a field
    /// default; swap in a registry-backed one to publish it).
    #[must_use]
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge storing an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (`0.0` if never set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Upper bounds (inclusive) of the histogram buckets, in the recorded
/// unit (microseconds for `_us` histograms). A 1-2-5 ladder from 1 µs
/// to 1 s; values above the last bound land in an implicit overflow
/// bucket whose count is `count - Σ buckets`.
pub const BUCKET_BOUNDS: [u64; 19] = [
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000,
];

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKET_BOUNDS.len()],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram with p50/p95/p99 summaries.
///
/// Designed for latencies in microseconds but unit-agnostic: any
/// non-negative integer series whose interesting range fits the
/// [1, 1 000 000] 1-2-5 ladder works (lattice sizes, fan-out counts).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry.
    #[must_use]
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        let core = &*self.0;
        if let Some(i) = BUCKET_BOUNDS.iter().position(|&le| value <= le) {
            core.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn observe(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Starts a timer that records its elapsed microseconds on drop.
    #[must_use]
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            histogram: self.clone(),
            start: Instant::now(),
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0 < q <= 1`) as the upper bound of
    /// the bucket holding the target rank; values past the ladder
    /// report the exact observed maximum.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0;
        for (i, bucket) in core.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return BUCKET_BOUNDS[i];
            }
        }
        core.max.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let core = &*self.0;
        let buckets = BUCKET_BOUNDS
            .iter()
            .zip(core.buckets.iter())
            .map(|(&le, count)| BucketCount {
                le,
                count: count.load(Ordering::Relaxed),
            })
            .filter(|b| b.count > 0)
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: core.count.load(Ordering::Relaxed),
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            buckets,
        }
    }
}

/// A guard that records the time since its creation into a histogram
/// when dropped.
#[derive(Debug)]
pub struct HistogramTimer {
    histogram: Histogram,
    start: Instant,
}

impl HistogramTimer {
    /// Stops the timer early, recording now instead of at drop.
    pub fn stop(self) {}
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram.observe(self.start.elapsed());
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    tracer: Tracer,
}

/// A named family of metrics. Cloning is cheap and every clone sees
/// the same metrics, so one registry can be threaded through the
/// whole pipeline (sensors → fusion → core → bus) and snapshotted
/// from anywhere.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. Repeated calls with the same name return handles to
    /// the same underlying value.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner
            .gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The tracer attached to this registry.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// A deterministic (name-sorted) point-in-time view of every
    /// metric in the registry.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .read()
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
    }

    #[test]
    fn gauge_stores_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        assert_eq!(g.get(), 0.0);
        g.set(4.5);
        assert_eq!(reg.gauge("depth").get(), 4.5);
    }

    #[test]
    fn histogram_quantiles_use_bucket_bounds() {
        let h = Histogram::detached();
        // 90 fast (≤10) and 10 slow (≤1000) observations.
        for _ in 0..90 {
            h.record(7);
        }
        for _ in 0..10 {
            h.record(900);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 10);
        assert_eq!(h.quantile(0.95), 1_000);
        assert_eq!(h.quantile(0.99), 1_000);
    }

    #[test]
    fn histogram_overflow_reports_observed_max() {
        let h = Histogram::detached();
        h.record(5);
        h.record(2_000_000); // beyond the ladder
        assert_eq!(h.quantile(1.0), 2_000_000);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, 2_000_000);
        let bucketed: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(snap.count - bucketed, 1, "one value in the overflow bucket");
    }

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::detached();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::detached();
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b.two").inc();
        reg.counter("a.one").add(5);
        reg.gauge("z.gauge").set(1.25);
        reg.histogram("m.hist").record(42);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
        assert_eq!(snap.counter("a.one"), Some(5));
        assert_eq!(snap.gauge("z.gauge"), Some(1.25));
        assert_eq!(snap.histogram("m.hist").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
    }
}
