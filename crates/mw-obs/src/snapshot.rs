//! Serializable point-in-time views of a [`MetricsRegistry`].
//!
//! A [`Snapshot`] is plain data: `Vec`s of small named structs, sorted
//! by name, so two snapshots of the same state serialize identically.
//! It round-trips through the `serde_json` shim, which is how it
//! travels over the stats RPC, the snapshot topic, and into
//! `BENCH_*.json` files.
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use serde::{Deserialize, Serialize};

/// One counter's name and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dotted metric name (see the crate docs for the scheme).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge's name and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Value at snapshot time (`0.0` if never set).
    pub value: f64,
}

/// Count of observations at or below `le` (one histogram bucket).
/// Empty buckets are omitted; observations above the last ladder bound
/// live in an implicit overflow bucket of size `count - Σ buckets`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket, in the recorded unit.
    pub le: u64,
    /// Observations that fell at or below `le` but above the previous
    /// bound.
    pub count: u64,
}

/// One histogram's summary and (non-empty) buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Dotted metric name; `_us` suffix means microseconds.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, even past the bucket ladder).
    pub max: u64,
    /// Median estimate (upper bound of the median's bucket).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Non-empty buckets in ascending `le` order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observed value, or `0.0` with no observations.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum as f64 / self.count as f64
            }
        }
    }
}

/// A point-in-time view of every metric in a registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// All counters, name-sorted.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, name-sorted.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of the gauge named `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The histogram named `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// A filtered snapshot holding only the metrics whose names start
    /// with `prefix` — e.g. `section("health.")` for the sensor
    /// supervision layer, `section("bus.")` for the transport. The
    /// result preserves name order, so two sections of equal state
    /// still serialize identically.
    #[must_use]
    pub fn section(&self, prefix: &str) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| c.name.starts_with(prefix))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| g.name.starts_with(prefix))
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// Compact JSON encoding.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Pretty-printed JSON encoding (the `BENCH_*.json` format).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses a snapshot back from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns the shim's deserialization error when `json` is not a
    /// snapshot.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("bus.client.reconnects").add(3);
        reg.gauge("fusion.lattice.size").set(10.0);
        let h = reg.histogram("core.ingest.latency_us");
        for v in [3, 8, 8, 40, 700] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(parsed, snap);
        let pretty = Snapshot::from_json(&snap.to_json_pretty()).expect("parse pretty");
        assert_eq!(pretty, snap);
    }

    #[test]
    fn lookups_on_empty_snapshot() {
        let snap = Snapshot::default();
        assert_eq!(snap.counter("x"), None);
        assert_eq!(snap.gauge("x"), None);
        assert!(snap.histogram("x").is_none());
    }

    #[test]
    fn section_filters_every_metric_kind_by_prefix() {
        let reg = MetricsRegistry::new();
        reg.counter("health.quarantines").add(2);
        reg.counter("bus.fault.injected").add(7);
        reg.gauge("health.sensor.ubi-1.state").set(2.0);
        reg.gauge("fusion.lattice.size").set(9.0);
        reg.histogram("health.probe.latency_us").record(5);
        reg.histogram("core.ingest.latency_us").record(40);
        let health = reg.snapshot().section("health.");
        assert_eq!(health.counter("health.quarantines"), Some(2));
        assert_eq!(health.gauge("health.sensor.ubi-1.state"), Some(2.0));
        assert!(health.histogram("health.probe.latency_us").is_some());
        assert_eq!(health.counters.len(), 1);
        assert_eq!(health.gauges.len(), 1);
        assert_eq!(health.histograms.len(), 1);
        assert!(reg.snapshot().section("nothing.").counters.is_empty());
    }

    #[test]
    fn mean_of_histogram_snapshot() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h");
        h.record(10);
        h.record(30);
        let snap = reg.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.mean(), 20.0);
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                ..hs.clone()
            }
            .mean(),
            0.0
        );
    }
}
