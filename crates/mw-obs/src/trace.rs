//! A lightweight `span!`-style tracing facade.
//!
//! A [`Tracer`] records [`TraceEvent`]s into a bounded ring buffer
//! (oldest events are evicted first) and fans each event out to any
//! registered [`TraceSubscriber`]s. Spans are RAII guards: [`span!`]
//! or [`Tracer::span`] opens one, and dropping the guard records the
//! span's duration.
//!
//! Span names follow the same dotted taxonomy as metric names
//! (`core.ingest`, `fusion.fuse`, `bus.frame.recv`, …); see
//! `DESIGN.md` §8.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

/// One recorded trace event: an instant annotation or a closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number, unique per tracer.
    pub seq: u64,
    /// Dotted span name (`core.ingest`, `fusion.fuse`, …).
    pub span: String,
    /// Free-form detail, empty for bare spans.
    pub detail: String,
    /// Span duration in microseconds; `0` for instant events.
    pub elapsed_us: u64,
}

/// Receives every event a [`Tracer`] records, in order.
pub trait TraceSubscriber: Send + Sync {
    /// Called synchronously from the recording thread.
    fn on_event(&self, event: &TraceEvent);
}

#[derive(Debug)]
struct TracerInner {
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    enabled: AtomicBool,
    subscribers: RwLock<Vec<Arc<dyn TraceSubscriber>>>,
}

impl std::fmt::Debug for dyn TraceSubscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSubscriber")
    }
}

/// Default ring-buffer capacity.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Records trace events into a ring buffer and fans them out to
/// subscribers. Cloning is cheap; clones share the same sink.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// A tracer whose ring buffer keeps the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer ring buffer needs capacity >= 1");
        Tracer {
            inner: Arc::new(TracerInner {
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
                seq: AtomicU64::new(0),
                enabled: AtomicBool::new(true),
                subscribers: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Turns recording on or off; a disabled tracer drops events and
    /// spans without touching the ring buffer or subscribers.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether events are currently recorded.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Registers a subscriber; it sees every event recorded after this
    /// call.
    pub fn subscribe(&self, subscriber: Arc<dyn TraceSubscriber>) {
        self.inner.subscribers.write().push(subscriber);
    }

    /// Records an instant event.
    pub fn event(&self, span: &str, detail: impl Into<String>) {
        self.record(span, detail.into(), 0);
    }

    /// Opens a span; dropping the returned guard records its duration.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, String::new())
    }

    /// Opens a span carrying a free-form detail string.
    #[must_use]
    pub fn span_with(&self, name: &str, detail: impl Into<String>) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            name: name.to_string(),
            detail: detail.into(),
            start: Instant::now(),
        }
    }

    /// The buffered events, oldest first. At most `capacity` events
    /// are retained.
    #[must_use]
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Total events recorded since creation (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    fn record(&self, span: &str, detail: String, elapsed_us: u64) {
        if !self.enabled() {
            return;
        }
        let event = TraceEvent {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            span: span.to_string(),
            detail,
            elapsed_us,
        };
        {
            let mut ring = self.inner.ring.lock();
            if ring.len() == self.inner.capacity {
                ring.pop_front();
            }
            ring.push_back(event.clone());
        }
        for sub in self.inner.subscribers.read().iter() {
            sub.on_event(&event);
        }
    }
}

/// RAII guard for an open span; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    name: String,
    detail: String,
    start: Instant,
}

impl SpanGuard {
    /// Closes the span now instead of at end of scope.
    pub fn close(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.tracer
            .record(&self.name, std::mem::take(&mut self.detail), elapsed);
    }
}

/// Opens a span on a tracer: `span!(tracer, "core.ingest")` or, with a
/// formatted detail, `span!(tracer, "core.ingest", "object={id}")`.
/// The span closes (and records) when the returned guard drops.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr) => {
        $tracer.span($name)
    };
    ($tracer:expr, $name:expr, $($fmt:tt)+) => {
        $tracer.span_with($name, format!($($fmt)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_spans_land_in_the_ring() {
        let tracer = Tracer::new(8);
        tracer.event("core.ingest", "reading accepted");
        {
            let _span = tracer.span("fusion.fuse");
        }
        let events = tracer.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].span, "core.ingest");
        assert_eq!(events[0].detail, "reading accepted");
        assert_eq!(events[0].elapsed_us, 0);
        assert_eq!(events[1].span, "fusion.fuse");
    }

    #[test]
    fn ring_evicts_oldest() {
        let tracer = Tracer::new(3);
        for i in 0..5 {
            tracer.event("e", format!("{i}"));
        }
        let events = tracer.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "2");
        assert_eq!(events[2].detail, "4");
        assert_eq!(tracer.recorded(), 5);
    }

    #[test]
    fn subscribers_see_every_event() {
        struct Collect(Mutex<Vec<String>>);
        impl TraceSubscriber for Collect {
            fn on_event(&self, event: &TraceEvent) {
                self.0.lock().push(event.span.clone());
            }
        }
        let tracer = Tracer::new(4);
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        tracer.subscribe(Arc::clone(&sink) as Arc<dyn TraceSubscriber>);
        tracer.event("a", "");
        {
            let _s = span!(tracer, "b", "obj={}", 7);
        }
        assert_eq!(*sink.0.lock(), vec!["a".to_string(), "b".to_string()]);
        let events = tracer.recent();
        assert_eq!(events[1].detail, "obj=7");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(4);
        tracer.set_enabled(false);
        tracer.event("a", "");
        {
            let _s = tracer.span("b");
        }
        assert!(tracer.recent().is_empty());
        assert_eq!(tracer.recorded(), 0);
        tracer.set_enabled(true);
        tracer.event("c", "");
        assert_eq!(tracer.recent().len(), 1);
    }
}
