//! A composition-table inference engine for RCC-8 — the stand-in for the
//! paper's XSB Prolog reasoner ("The Location Service reasons further
//! about these relations using XSB Prolog").
//!
//! Facts are relations between named regions, asserted directly or
//! computed from geometry. The engine runs the standard RCC-8
//! *algebraic-closure* (path-consistency) algorithm: for every triple
//! `(a, b, c)`, the possible relations of `(a, c)` are intersected with
//! the composition of `(a, b)` and `(b, c)`, until a fixpoint. Empty sets
//! signal contradictory facts.

use std::collections::HashMap;
use std::fmt;

use mw_geometry::Rect;

use crate::{Rcc8, ReasoningError};

/// A set of possible RCC-8 relations (a bitmask over [`Rcc8::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelationSet(u8);

impl RelationSet {
    /// The empty set (a contradiction).
    pub const EMPTY: RelationSet = RelationSet(0);
    /// The full set (total ignorance).
    pub const ALL: RelationSet = RelationSet(0xFF);

    /// The singleton set for one relation.
    #[must_use]
    pub fn only(rel: Rcc8) -> Self {
        RelationSet(1 << rel.index())
    }

    /// Builds a set from relations.
    #[must_use]
    pub fn from_relations(rels: &[Rcc8]) -> Self {
        let mut s = RelationSet::EMPTY;
        for &r in rels {
            s.0 |= 1 << r.index();
        }
        s
    }

    /// Returns `true` when `rel` is possible.
    #[must_use]
    pub fn contains(self, rel: Rcc8) -> bool {
        self.0 & (1 << rel.index()) != 0
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 & other.0)
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RelationSet) -> RelationSet {
        RelationSet(self.0 | other.0)
    }

    /// Returns `true` for the empty (contradictory) set.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of possible relations.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The single relation if exactly one remains.
    #[must_use]
    pub fn as_singleton(self) -> Option<Rcc8> {
        if self.len() == 1 {
            Rcc8::ALL.into_iter().find(|r| self.contains(*r))
        } else {
            None
        }
    }

    /// The converse of every member.
    #[must_use]
    pub fn converse(self) -> RelationSet {
        let mut out = RelationSet::EMPTY;
        for r in Rcc8::ALL {
            if self.contains(r) {
                out.0 |= 1 << r.converse().index();
            }
        }
        out
    }

    /// Iterates over the member relations.
    pub fn iter(self) -> impl Iterator<Item = Rcc8> {
        Rcc8::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl fmt::Display for RelationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Composition of two single relations per the standard RCC-8 table.
#[must_use]
pub(crate) fn compose(r1: Rcc8, r2: Rcc8) -> RelationSet {
    use Rcc8::*;
    // Shorthand sets.
    let all = RelationSet::ALL;
    let s = |rels: &[Rcc8]| RelationSet::from_relations(rels);
    match (r1, r2) {
        (Eq, x) => RelationSet::only(x),
        (x, Eq) => RelationSet::only(x),

        (Dc, Dc) => all,
        (Dc, Ec) | (Dc, Po) | (Dc, Tpp) | (Dc, Ntpp) => s(&[Dc, Ec, Po, Tpp, Ntpp]),
        (Dc, Tppi) | (Dc, Ntppi) => s(&[Dc]),

        (Ec, Dc) => s(&[Dc, Ec, Po, Tppi, Ntppi]),
        (Ec, Ec) => s(&[Dc, Ec, Po, Tpp, Tppi, Eq]),
        (Ec, Po) => s(&[Dc, Ec, Po, Tpp, Ntpp]),
        (Ec, Tpp) => s(&[Ec, Po, Tpp, Ntpp]),
        (Ec, Ntpp) => s(&[Po, Tpp, Ntpp]),
        (Ec, Tppi) => s(&[Dc, Ec]),
        (Ec, Ntppi) => s(&[Dc]),

        (Po, Dc) | (Po, Ec) => s(&[Dc, Ec, Po, Tppi, Ntppi]),
        (Po, Po) => all,
        (Po, Tpp) | (Po, Ntpp) => s(&[Po, Tpp, Ntpp]),
        (Po, Tppi) | (Po, Ntppi) => s(&[Dc, Ec, Po, Tppi, Ntppi]),

        (Tpp, Dc) => s(&[Dc]),
        (Tpp, Ec) => s(&[Dc, Ec]),
        (Tpp, Po) => s(&[Dc, Ec, Po, Tpp, Ntpp]),
        (Tpp, Tpp) => s(&[Tpp, Ntpp]),
        (Tpp, Ntpp) => s(&[Ntpp]),
        (Tpp, Tppi) => s(&[Dc, Ec, Po, Tpp, Tppi, Eq]),
        (Tpp, Ntppi) => s(&[Dc, Ec, Po, Tppi, Ntppi]),

        (Ntpp, Dc) => s(&[Dc]),
        (Ntpp, Ec) => s(&[Dc]),
        (Ntpp, Po) => s(&[Dc, Ec, Po, Tpp, Ntpp]),
        (Ntpp, Tpp) => s(&[Ntpp]),
        (Ntpp, Ntpp) => s(&[Ntpp]),
        (Ntpp, Tppi) => s(&[Dc, Ec, Po, Tpp, Ntpp]),
        (Ntpp, Ntppi) => all,

        (Tppi, Dc) => s(&[Dc, Ec, Po, Tppi, Ntppi]),
        (Tppi, Ec) => s(&[Ec, Po, Tppi, Ntppi]),
        (Tppi, Po) => s(&[Po, Tppi, Ntppi]),
        (Tppi, Tpp) => s(&[Po, Tpp, Tppi, Eq]),
        (Tppi, Ntpp) => s(&[Po, Tpp, Ntpp]),
        (Tppi, Tppi) => s(&[Tppi, Ntppi]),
        (Tppi, Ntppi) => s(&[Ntppi]),

        (Ntppi, Dc) => s(&[Dc, Ec, Po, Tppi, Ntppi]),
        (Ntppi, Ec) => s(&[Po, Tppi, Ntppi]),
        (Ntppi, Po) => s(&[Po, Tppi, Ntppi]),
        (Ntppi, Tpp) => s(&[Po, Tppi, Ntppi]),
        (Ntppi, Ntpp) => s(&[Po, Tpp, Ntpp, Tppi, Ntppi, Eq]),
        (Ntppi, Tppi) => s(&[Ntppi]),
        (Ntppi, Ntppi) => s(&[Ntppi]),
    }
}

/// Composition lifted to sets: union over member compositions.
#[must_use]
pub(crate) fn compose_sets(a: RelationSet, b: RelationSet) -> RelationSet {
    let mut out = RelationSet::EMPTY;
    for r1 in a.iter() {
        for r2 in b.iter() {
            out = out.union(compose(r1, r2));
        }
    }
    out
}

/// The forward-chaining RCC-8 engine over named regions.
#[derive(Debug, Clone, Default)]
pub struct RccEngine {
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// Constraint matrix: `constraints[a][b]` is the set of possible
    /// relations of `(a, b)`.
    constraints: Vec<Vec<RelationSet>>,
}

impl RccEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        RccEngine::default()
    }

    /// Declares a region (idempotent) and returns its internal index.
    pub fn declare(&mut self, name: impl Into<String>) -> usize {
        let name = name.into();
        if let Some(&i) = self.index.get(&name) {
            return i;
        }
        let i = self.names.len();
        self.index.insert(name.clone(), i);
        self.names.push(name);
        for row in &mut self.constraints {
            row.push(RelationSet::ALL);
        }
        self.constraints.push(vec![RelationSet::ALL; i + 1]);
        self.constraints[i][i] = RelationSet::only(Rcc8::Eq);
        i
    }

    /// Number of declared regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when no regions are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Asserts that the relation of `(a, b)` is exactly `rel` (and `(b,
    /// a)` its converse). Regions are declared on first use.
    pub fn assert_fact(&mut self, a: &str, b: &str, rel: Rcc8) {
        self.assert_possible(a, b, RelationSet::only(rel));
    }

    /// Asserts that the relation of `(a, b)` lies within `set`.
    pub fn assert_possible(&mut self, a: &str, b: &str, set: RelationSet) {
        let i = self.declare(a.to_string());
        let j = self.declare(b.to_string());
        self.constraints[i][j] = self.constraints[i][j].intersect(set);
        self.constraints[j][i] = self.constraints[j][i].intersect(set.converse());
    }

    /// Declares a region with a rectangle, asserting exact relations to
    /// every previously declared rectangle region.
    pub fn declare_region(
        &mut self,
        name: impl Into<String>,
        rect: Rect,
        known: &[(String, Rect)],
    ) {
        let name = name.into();
        self.declare(name.clone());
        for (other, other_rect) in known {
            let rel = Rcc8::of(&rect, other_rect);
            self.assert_fact(&name, other, rel);
        }
    }

    /// Runs algebraic closure to a fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::Inconsistent`] when some pair's relation
    /// set becomes empty.
    pub fn close(&mut self) -> Result<(), ReasoningError> {
        let n = self.names.len();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                for a in 0..n {
                    if a == b {
                        continue;
                    }
                    for c in 0..n {
                        if c == a || c == b {
                            continue;
                        }
                        let composed = compose_sets(self.constraints[a][b], self.constraints[b][c]);
                        let refined = self.constraints[a][c].intersect(composed);
                        if refined != self.constraints[a][c] {
                            if refined.is_empty() {
                                return Err(ReasoningError::Inconsistent {
                                    a: self.names[a].clone(),
                                    b: self.names[c].clone(),
                                });
                            }
                            self.constraints[a][c] = refined;
                            self.constraints[c][a] = refined.converse();
                            changed = true;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The possible relations between two regions (run [`RccEngine::close`]
    /// first to get derived knowledge).
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::UnknownRegion`] for undeclared names.
    pub fn query(&self, a: &str, b: &str) -> Result<RelationSet, ReasoningError> {
        let i = *self
            .index
            .get(a)
            .ok_or_else(|| ReasoningError::UnknownRegion { name: a.into() })?;
        let j = *self
            .index
            .get(b)
            .ok_or_else(|| ReasoningError::UnknownRegion { name: b.into() })?;
        Ok(self.constraints[i][j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::Point;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn relation_set_basics() {
        let s = RelationSet::from_relations(&[Rcc8::Dc, Rcc8::Ec]);
        assert!(s.contains(Rcc8::Dc));
        assert!(!s.contains(Rcc8::Po));
        assert_eq!(s.len(), 2);
        assert_eq!(s.union(RelationSet::only(Rcc8::Po)).len(), 3);
        assert_eq!(
            s.intersect(RelationSet::only(Rcc8::Ec)),
            RelationSet::only(Rcc8::Ec)
        );
        assert_eq!(
            RelationSet::only(Rcc8::Tpp).converse(),
            RelationSet::only(Rcc8::Tppi)
        );
        assert_eq!(RelationSet::only(Rcc8::Dc).as_singleton(), Some(Rcc8::Dc));
        assert_eq!(RelationSet::ALL.as_singleton(), None);
        assert_eq!(s.to_string(), "{DC,EC}");
    }

    #[test]
    fn composition_identity() {
        for rel in Rcc8::ALL {
            assert_eq!(compose(Rcc8::Eq, rel), RelationSet::only(rel));
            assert_eq!(compose(rel, Rcc8::Eq), RelationSet::only(rel));
        }
    }

    #[test]
    fn composition_table_is_sound_for_rectangles() {
        // Exhaustive-ish check: for a pool of rectangles, the observed
        // relation of (a, c) must always be in compose(of(a,b), of(b,c)).
        let pool = [
            r(0.0, 0.0, 10.0, 10.0),
            r(2.0, 2.0, 8.0, 8.0),
            r(0.0, 2.0, 5.0, 8.0),
            r(5.0, 5.0, 15.0, 15.0),
            r(10.0, 0.0, 20.0, 10.0),
            r(30.0, 30.0, 40.0, 40.0),
            r(0.0, 0.0, 10.0, 10.0), // duplicate -> EQ pairs
            r(4.0, 4.0, 6.0, 6.0),
            r(0.0, 0.0, 40.0, 40.0),
        ];
        for a in &pool {
            for b in &pool {
                for c in &pool {
                    let r1 = Rcc8::of(a, b);
                    let r2 = Rcc8::of(b, c);
                    let r3 = Rcc8::of(a, c);
                    let allowed = compose(r1, r2);
                    assert!(
                        allowed.contains(r3),
                        "table unsound: {r1} ∘ {r2} = {allowed} but observed {r3}\n a={a} b={b} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn converse_consistency_of_table() {
        // compose(r1, r2).converse() == compose(r2.conv, r1.conv).
        for r1 in Rcc8::ALL {
            for r2 in Rcc8::ALL {
                let lhs = compose(r1, r2).converse();
                let rhs = compose(r2.converse(), r1.converse());
                assert_eq!(lhs, rhs, "converse mismatch for {r1}, {r2}");
            }
        }
    }

    #[test]
    fn transitive_containment_is_derived() {
        let mut e = RccEngine::new();
        // desk NTPP room, room NTPP floor ⊢ desk NTPP floor.
        e.assert_fact("desk", "room", Rcc8::Ntpp);
        e.assert_fact("room", "floor", Rcc8::Ntpp);
        e.close().unwrap();
        assert_eq!(
            e.query("desk", "floor").unwrap().as_singleton(),
            Some(Rcc8::Ntpp)
        );
        // And the converse direction.
        assert_eq!(
            e.query("floor", "desk").unwrap().as_singleton(),
            Some(Rcc8::Ntppi)
        );
    }

    #[test]
    fn disjoint_rooms_imply_disjoint_contents() {
        let mut e = RccEngine::new();
        e.assert_fact("printer", "roomA", Rcc8::Ntpp);
        e.assert_fact("roomA", "roomB", Rcc8::Dc);
        e.close().unwrap();
        assert_eq!(
            e.query("printer", "roomB").unwrap().as_singleton(),
            Some(Rcc8::Dc)
        );
    }

    #[test]
    fn contradiction_detected() {
        let mut e = RccEngine::new();
        e.assert_fact("a", "b", Rcc8::Ntpp);
        e.assert_fact("b", "c", Rcc8::Ntpp);
        e.assert_fact("a", "c", Rcc8::Dc); // contradicts derived NTPP
        let err = e.close().unwrap_err();
        assert!(matches!(err, ReasoningError::Inconsistent { .. }));
    }

    #[test]
    fn declare_region_computes_geometry_facts() {
        let mut e = RccEngine::new();
        let floor = r(0.0, 0.0, 100.0, 100.0);
        let room = r(10.0, 10.0, 30.0, 30.0);
        let desk = r(12.0, 12.0, 16.0, 16.0);
        let known = vec![("floor".to_string(), floor)];
        e.declare_region("floor", floor, &[]);
        e.declare_region("room", room, &known);
        // desk only compared against the room…
        let known2 = vec![("room".to_string(), room)];
        e.declare_region("desk", desk, &known2);
        e.close().unwrap();
        // …but closure derives desk NTPP floor anyway.
        assert_eq!(
            e.query("desk", "floor").unwrap().as_singleton(),
            Some(Rcc8::Ntpp)
        );
    }

    #[test]
    fn unknown_region_query_errors() {
        let e = RccEngine::new();
        assert!(matches!(
            e.query("nope", "nada"),
            Err(ReasoningError::UnknownRegion { .. })
        ));
    }

    #[test]
    fn declare_is_idempotent() {
        let mut e = RccEngine::new();
        let i1 = e.declare("room");
        let i2 = e.declare("room");
        assert_eq!(i1, i2);
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
    }

    #[test]
    fn self_relation_is_eq() {
        let mut e = RccEngine::new();
        e.declare("a");
        assert_eq!(e.query("a", "a").unwrap().as_singleton(), Some(Rcc8::Eq));
    }

    #[test]
    fn partial_knowledge_stays_partial() {
        let mut e = RccEngine::new();
        e.assert_fact("a", "b", Rcc8::Ec);
        e.assert_fact("b", "c", Rcc8::Ec);
        e.close().unwrap();
        let possible = e.query("a", "c").unwrap();
        // EC ∘ EC leaves several possibilities open.
        assert!(possible.len() > 1);
        assert!(possible.contains(Rcc8::Dc));
        assert!(possible.contains(Rcc8::Eq));
    }
}
