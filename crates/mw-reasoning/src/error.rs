use std::fmt;

/// Errors produced by the reasoning engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReasoningError {
    /// A region name was used before being declared.
    UnknownRegion {
        /// The missing region name.
        name: String,
    },
    /// A route-graph node id does not exist.
    UnknownNode {
        /// The missing node index.
        index: usize,
    },
    /// The asserted facts are contradictory (a pair's relation set became
    /// empty during closure).
    Inconsistent {
        /// First region of the contradictory pair.
        a: String,
        /// Second region of the contradictory pair.
        b: String,
    },
}

impl fmt::Display for ReasoningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasoningError::UnknownRegion { name } => write!(f, "unknown region {name:?}"),
            ReasoningError::UnknownNode { index } => write!(f, "unknown route node {index}"),
            ReasoningError::Inconsistent { a, b } => {
                write!(f, "contradictory facts about regions {a:?} and {b:?}")
            }
        }
    }
}

impl std::error::Error for ReasoningError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ReasoningError::UnknownRegion {
            name: "3105".into(),
        };
        assert!(e.to_string().contains("3105"));
    }
}
