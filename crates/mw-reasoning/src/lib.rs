//! Spatial reasoning for the MiddleWhere reproduction (§4.6.1, Figure 7).
//!
//! The paper grounds region-to-region relationships in the Region
//! Connection Calculus (RCC-8) and extends the external-connection
//! relation with passage information:
//!
//! - [`Rcc8`] — the eight base relations (DC, EC, PO, TPP, NTPP, TPPi,
//!   NTPPi, EQ), computed in O(1) from rectangle vertices,
//! - [`Passage`] / [`ec_refinement`] — the ECFP / ECRP / ECNP refinements
//!   ("free passage", "restricted passage", "no passage") driven by door
//!   and wall data,
//! - [`RccEngine`] — a composition-table forward-chaining engine standing
//!   in for the paper's XSB Prolog: derives possible relations between
//!   regions that were never compared directly,
//! - [`RouteGraph`] — rooms and corridors connected by portals; computes
//!   the paper's *path-distance* (Dijkstra) alongside Euclidean distance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod passage;
mod rcc;
mod route;

pub use engine::{RccEngine, RelationSet};
pub use error::ReasoningError;
pub use passage::{ec_refinement, EcKind, Passage, PassageKind};
pub use rcc::Rcc8;
pub use route::{RouteGraph, RouteNodeId};
