//! Passage-aware refinement of external connection (§4.6.1).
//!
//! "If two regions are externally connected, it means that it may be
//! possible to go from one region to another. … However two adjacent
//! rooms that just have a wall (with no door) in between are also
//! externally connected. To make this distinction, we define three
//! additional relations: ECFP (free passage), ECRP (restricted passage)
//! and ECNP (no passage)."

use mw_geometry::{Rect, Segment};

use crate::Rcc8;

/// How a passage can be traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassageKind {
    /// An always-open doorway or opening.
    Free,
    /// A door requiring a card swipe or key ("a door that is normally
    /// locked and which requires either a card swipe or a key to open").
    Restricted,
}

/// A passage (door, archway) in the building, as a line geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Passage {
    /// The door's line segment in building coordinates.
    pub segment: Segment,
    /// Whether the passage is free or restricted.
    pub kind: PassageKind,
}

impl Passage {
    /// Creates a free passage along `segment`.
    #[must_use]
    pub fn free(segment: Segment) -> Self {
        Passage {
            segment,
            kind: PassageKind::Free,
        }
    }

    /// Creates a restricted passage along `segment`.
    #[must_use]
    pub fn restricted(segment: Segment) -> Self {
        Passage {
            segment,
            kind: PassageKind::Restricted,
        }
    }

    /// Returns `true` when the passage connects regions `a` and `b`: the
    /// door segment touches both rectangles.
    #[must_use]
    pub fn connects(&self, a: &Rect, b: &Rect) -> bool {
        // Inflate slightly so a door lying exactly on the shared wall
        // registers against both rooms despite floating-point edges.
        let a2 = a.inflated(1e-9);
        let b2 = b.inflated(1e-9);
        self.segment.intersects_rect(&a2) && self.segment.intersects_rect(&b2)
    }
}

/// The refined external-connection relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcKind {
    /// `ECFP(a,b)`: externally connected with a free passage.
    FreePassage,
    /// `ECRP(a,b)`: externally connected with a restricted passage.
    RestrictedPassage,
    /// `ECNP(a,b)`: externally connected with no passage (a plain wall).
    NoPassage,
}

/// Refines an EC relation between `a` and `b` using the building's
/// passages. Returns `None` when `a` and `b` are not externally connected
/// at all.
///
/// "the relations ECFP, ECRP and ECNP are evaluated by checking if there
/// is a door or an obstruction like a wall between the regions." A free
/// passage wins over a restricted one when both exist.
#[must_use]
pub fn ec_refinement(a: &Rect, b: &Rect, passages: &[Passage]) -> Option<EcKind> {
    if Rcc8::of(a, b) != Rcc8::Ec {
        return None;
    }
    let mut best: Option<EcKind> = None;
    for p in passages {
        if !p.connects(a, b) {
            continue;
        }
        match p.kind {
            PassageKind::Free => return Some(EcKind::FreePassage),
            PassageKind::Restricted => best = Some(EcKind::RestrictedPassage),
        }
    }
    Some(best.unwrap_or(EcKind::NoPassage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::Point;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn door(x0: f64, y0: f64, x1: f64, y1: f64, kind: PassageKind) -> Passage {
        Passage {
            segment: Segment::new(Point::new(x0, y0), Point::new(x1, y1)),
            kind,
        }
    }

    #[test]
    fn rooms_with_door_are_ecfp() {
        let room = r(330.0, 0.0, 350.0, 30.0);
        let corridor = r(310.0, 0.0, 330.0, 30.0);
        // A doorway on the shared wall x = 330.
        let passages = vec![door(330.0, 10.0, 330.0, 14.0, PassageKind::Free)];
        assert_eq!(
            ec_refinement(&room, &corridor, &passages),
            Some(EcKind::FreePassage)
        );
    }

    #[test]
    fn locked_door_is_ecrp() {
        let room = r(330.0, 0.0, 350.0, 30.0);
        let corridor = r(310.0, 0.0, 330.0, 30.0);
        let passages = vec![door(330.0, 10.0, 330.0, 14.0, PassageKind::Restricted)];
        assert_eq!(
            ec_refinement(&room, &corridor, &passages),
            Some(EcKind::RestrictedPassage)
        );
    }

    #[test]
    fn plain_wall_is_ecnp() {
        let room = r(330.0, 0.0, 350.0, 30.0);
        let corridor = r(310.0, 0.0, 330.0, 30.0);
        assert_eq!(
            ec_refinement(&room, &corridor, &[]),
            Some(EcKind::NoPassage)
        );
    }

    #[test]
    fn free_passage_beats_restricted() {
        let room = r(330.0, 0.0, 350.0, 30.0);
        let corridor = r(310.0, 0.0, 330.0, 30.0);
        let passages = vec![
            door(330.0, 2.0, 330.0, 5.0, PassageKind::Restricted),
            door(330.0, 20.0, 330.0, 24.0, PassageKind::Free),
        ];
        assert_eq!(
            ec_refinement(&room, &corridor, &passages),
            Some(EcKind::FreePassage)
        );
    }

    #[test]
    fn door_elsewhere_does_not_connect() {
        let room = r(330.0, 0.0, 350.0, 30.0);
        let corridor = r(310.0, 0.0, 330.0, 30.0);
        // A door on the far wall of the room (x = 350) does not connect
        // the pair.
        let passages = vec![door(350.0, 10.0, 350.0, 14.0, PassageKind::Free)];
        assert_eq!(
            ec_refinement(&room, &corridor, &passages),
            Some(EcKind::NoPassage)
        );
    }

    #[test]
    fn non_ec_regions_have_no_refinement() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let far = r(100.0, 0.0, 110.0, 10.0);
        assert_eq!(ec_refinement(&a, &far, &[]), None);
        let overlapping = r(5.0, 0.0, 15.0, 10.0);
        assert_eq!(ec_refinement(&a, &overlapping, &[]), None);
    }

    #[test]
    fn passage_connects_is_symmetric() {
        let room = r(330.0, 0.0, 350.0, 30.0);
        let corridor = r(310.0, 0.0, 330.0, 30.0);
        let p = door(330.0, 10.0, 330.0, 14.0, PassageKind::Free);
        assert!(p.connects(&room, &corridor));
        assert!(p.connects(&corridor, &room));
    }

    #[test]
    fn constructors() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(0.0, 3.0));
        assert_eq!(Passage::free(s).kind, PassageKind::Free);
        assert_eq!(Passage::restricted(s).kind, PassageKind::Restricted);
    }
}
