use std::fmt;

use mw_geometry::{Rect, EPSILON};

/// The eight base relations of the Region Connection Calculus (RCC-8),
/// the paper's reference \[2\] and Figure 7.
///
/// "Any two regions are related by exactly one of these relations."
///
/// Regions are the paper's MBRs; all predicates are O(1) on rectangle
/// vertices ("Evaluating the relation between 2 regions is just O(1)
/// given the vertices of the two regions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rcc8 {
    /// Dis-Connected: the regions share no point.
    Dc,
    /// Externally Connected: boundaries touch, interiors disjoint.
    Ec,
    /// Partial Overlap: interiors intersect, neither contains the other.
    Po,
    /// Tangential Proper Part: `a ⊂ b`, touching `b`'s boundary.
    Tpp,
    /// Non-Tangential Proper Part: `a ⊂ b`, away from `b`'s boundary.
    Ntpp,
    /// Inverse of [`Rcc8::Tpp`]: `b ⊂ a`, touching `a`'s boundary.
    Tppi,
    /// Inverse of [`Rcc8::Ntpp`]: `b ⊂ a`, away from `a`'s boundary.
    Ntppi,
    /// Equality.
    Eq,
}

impl Rcc8 {
    /// All eight relations, in a fixed order.
    pub const ALL: [Rcc8; 8] = [
        Rcc8::Dc,
        Rcc8::Ec,
        Rcc8::Po,
        Rcc8::Tpp,
        Rcc8::Ntpp,
        Rcc8::Tppi,
        Rcc8::Ntppi,
        Rcc8::Eq,
    ];

    /// Computes the unique RCC-8 relation between rectangles `a` and `b`.
    #[must_use]
    pub fn of(a: &Rect, b: &Rect) -> Rcc8 {
        if a == b {
            return Rcc8::Eq;
        }
        if !a.intersects(b) {
            return Rcc8::Dc;
        }
        let overlap = a.intersection(b).expect("rectangles intersect");
        if overlap.area() <= 0.0 {
            // Touching along an edge or at a corner.
            return Rcc8::Ec;
        }
        if b.contains_rect_strict(a) {
            return if touches_boundary(a, b) {
                Rcc8::Tpp
            } else {
                Rcc8::Ntpp
            };
        }
        if a.contains_rect_strict(b) {
            return if touches_boundary(b, a) {
                Rcc8::Tppi
            } else {
                Rcc8::Ntppi
            };
        }
        Rcc8::Po
    }

    /// The converse relation: `of(a, b).converse() == of(b, a)`.
    #[must_use]
    pub fn converse(self) -> Rcc8 {
        match self {
            Rcc8::Tpp => Rcc8::Tppi,
            Rcc8::Tppi => Rcc8::Tpp,
            Rcc8::Ntpp => Rcc8::Ntppi,
            Rcc8::Ntppi => Rcc8::Ntpp,
            other => other,
        }
    }

    /// Returns `true` for relations implying `a` is inside `b` (the
    /// paper's *containment* object–region relation uses these).
    #[must_use]
    pub fn is_part_of(self) -> bool {
        matches!(self, Rcc8::Tpp | Rcc8::Ntpp | Rcc8::Eq)
    }

    /// Returns `true` when the regions share at least one point.
    #[must_use]
    pub fn is_connected(self) -> bool {
        self != Rcc8::Dc
    }

    /// Index of the relation within [`Rcc8::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Rcc8::Dc => 0,
            Rcc8::Ec => 1,
            Rcc8::Po => 2,
            Rcc8::Tpp => 3,
            Rcc8::Ntpp => 4,
            Rcc8::Tppi => 5,
            Rcc8::Ntppi => 6,
            Rcc8::Eq => 7,
        }
    }
}

/// Does the inner rectangle (strictly contained in `outer`) touch
/// `outer`'s boundary?
fn touches_boundary(inner: &Rect, outer: &Rect) -> bool {
    (inner.min().x - outer.min().x).abs() <= EPSILON
        || (inner.min().y - outer.min().y).abs() <= EPSILON
        || (inner.max().x - outer.max().x).abs() <= EPSILON
        || (inner.max().y - outer.max().y).abs() <= EPSILON
}

impl fmt::Display for Rcc8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rcc8::Dc => "DC",
            Rcc8::Ec => "EC",
            Rcc8::Po => "PO",
            Rcc8::Tpp => "TPP",
            Rcc8::Ntpp => "NTPP",
            Rcc8::Tppi => "TPPi",
            Rcc8::Ntppi => "NTPPi",
            Rcc8::Eq => "EQ",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::Point;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn figure_7_witnesses() {
        let base = r(0.0, 0.0, 10.0, 10.0);
        // DC: far away.
        assert_eq!(Rcc8::of(&r(20.0, 0.0, 30.0, 10.0), &base), Rcc8::Dc);
        // EC: sharing an edge.
        assert_eq!(Rcc8::of(&r(10.0, 0.0, 20.0, 10.0), &base), Rcc8::Ec);
        // PO: overlapping.
        assert_eq!(Rcc8::of(&r(5.0, 5.0, 15.0, 15.0), &base), Rcc8::Po);
        // TPP: inside touching the boundary.
        assert_eq!(Rcc8::of(&r(0.0, 2.0, 5.0, 8.0), &base), Rcc8::Tpp);
        // NTPP: strictly inside.
        assert_eq!(Rcc8::of(&r(2.0, 2.0, 8.0, 8.0), &base), Rcc8::Ntpp);
        // TPPi / NTPPi: the inverses.
        assert_eq!(Rcc8::of(&base, &r(0.0, 2.0, 5.0, 8.0)), Rcc8::Tppi);
        assert_eq!(Rcc8::of(&base, &r(2.0, 2.0, 8.0, 8.0)), Rcc8::Ntppi);
        // EQ.
        assert_eq!(Rcc8::of(&base, &base.clone()), Rcc8::Eq);
    }

    #[test]
    fn corner_touch_is_ec() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(10.0, 10.0, 20.0, 20.0);
        assert_eq!(Rcc8::of(&a, &b), Rcc8::Ec);
    }

    #[test]
    fn converse_is_involutive_and_correct() {
        let pairs = [
            (r(0.0, 0.0, 10.0, 10.0), r(20.0, 0.0, 30.0, 10.0)),
            (r(0.0, 0.0, 10.0, 10.0), r(10.0, 0.0, 20.0, 10.0)),
            (r(0.0, 0.0, 10.0, 10.0), r(5.0, 5.0, 15.0, 15.0)),
            (r(0.0, 2.0, 5.0, 8.0), r(0.0, 0.0, 10.0, 10.0)),
            (r(2.0, 2.0, 8.0, 8.0), r(0.0, 0.0, 10.0, 10.0)),
            (r(0.0, 0.0, 10.0, 10.0), r(0.0, 0.0, 10.0, 10.0)),
        ];
        for (a, b) in pairs {
            assert_eq!(Rcc8::of(&a, &b).converse(), Rcc8::of(&b, &a));
            assert_eq!(Rcc8::of(&a, &b).converse().converse(), Rcc8::of(&a, &b));
        }
    }

    #[test]
    fn relations_are_exhaustive_and_exclusive() {
        // Every pair gets exactly one relation (by construction of `of`,
        // but verify index() covers ALL).
        for (i, rel) in Rcc8::ALL.iter().enumerate() {
            assert_eq!(rel.index(), i);
        }
    }

    #[test]
    fn part_of_classification() {
        assert!(Rcc8::Tpp.is_part_of());
        assert!(Rcc8::Ntpp.is_part_of());
        assert!(Rcc8::Eq.is_part_of());
        assert!(!Rcc8::Po.is_part_of());
        assert!(!Rcc8::Tppi.is_part_of());
    }

    #[test]
    fn connectivity_classification() {
        assert!(!Rcc8::Dc.is_connected());
        for rel in Rcc8::ALL.iter().skip(1) {
            assert!(rel.is_connected(), "{rel} should be connected");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Rcc8::Ntppi.to_string(), "NTPPi");
        assert_eq!(Rcc8::Dc.to_string(), "DC");
    }

    #[test]
    fn adjacent_rooms_sharing_wall_are_ec() {
        // Rooms 3105 and LabCorridor from Table 1 share the x=330 wall.
        let room_3105 = r(330.0, 0.0, 350.0, 30.0);
        let corridor = r(310.0, 0.0, 330.0, 30.0);
        assert_eq!(Rcc8::of(&room_3105, &corridor), Rcc8::Ec);
    }
}
