//! Route graph and path distance (§4.6.1).
//!
//! "Two kinds of distance measures are used: Euclidean, which is the
//! shortest straight line distance between the centers of the regions,
//! and path-distance, which is the length of a path from the center of
//! one region to the center of the other region."
//!
//! Rooms and corridors become graph nodes; passages (doors) become edges.
//! An edge's length is center → door-midpoint → center, so the path
//! distance follows the actual walkable route. The paper's route-finding
//! applications run on this graph.

use std::collections::BinaryHeap;

use mw_geometry::{Point, Rect};

use crate::{Passage, PassageKind, ReasoningError};

/// Identifier of a node (region) in a [`RouteGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteNodeId(usize);

impl RouteNodeId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct RouteNode {
    name: String,
    region: Rect,
    /// `(neighbour, door midpoint, edge length, restricted)`.
    edges: Vec<(RouteNodeId, Point, f64, bool)>,
}

/// A graph of walkable regions connected by passages.
#[derive(Debug, Clone, Default)]
pub struct RouteGraph {
    nodes: Vec<RouteNode>,
}

impl RouteGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        RouteGraph::default()
    }

    /// Adds a region (room or corridor) and returns its node id.
    pub fn add_region(&mut self, name: impl Into<String>, region: Rect) -> RouteNodeId {
        let id = RouteNodeId(self.nodes.len());
        self.nodes.push(RouteNode {
            name: name.into(),
            region,
            edges: Vec::new(),
        });
        id
    }

    /// Number of regions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the graph has no regions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a region by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<RouteNodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(RouteNodeId)
    }

    /// The region rectangle of a node.
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::UnknownNode`] for a stale id.
    pub fn region(&self, id: RouteNodeId) -> Result<Rect, ReasoningError> {
        self.node(id).map(|n| n.region)
    }

    /// The region name of a node.
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::UnknownNode`] for a stale id.
    pub fn name(&self, id: RouteNodeId) -> Result<&str, ReasoningError> {
        self.node(id).map(|n| n.name.as_str())
    }

    /// The node containing point `p`, if any (first match wins).
    #[must_use]
    pub fn locate(&self, p: Point) -> Option<RouteNodeId> {
        self.nodes
            .iter()
            .position(|n| n.region.contains_point(p))
            .map(RouteNodeId)
    }

    /// Connects two regions through `passage`. The edge length is the
    /// walking distance center → door midpoint → center.
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::UnknownNode`] for stale ids.
    pub fn connect(
        &mut self,
        a: RouteNodeId,
        b: RouteNodeId,
        passage: &Passage,
    ) -> Result<(), ReasoningError> {
        let ra = self.node(a)?.region;
        let rb = self.node(b)?.region;
        let door = passage.segment.midpoint();
        let length = ra.center().distance(door) + door.distance(rb.center());
        let restricted = passage.kind == PassageKind::Restricted;
        self.nodes[a.0].edges.push((b, door, length, restricted));
        self.nodes[b.0].edges.push((a, door, length, restricted));
        Ok(())
    }

    /// Straight-line distance between two regions' centers (the paper's
    /// Euclidean distance).
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::UnknownNode`] for stale ids.
    pub fn euclidean_distance(
        &self,
        a: RouteNodeId,
        b: RouteNodeId,
    ) -> Result<f64, ReasoningError> {
        Ok(self
            .node(a)?
            .region
            .center()
            .distance(self.node(b)?.region.center()))
    }

    /// Shortest walkable distance between two regions' centers (the
    /// paper's path-distance), optionally traversing restricted passages.
    ///
    /// Returns `None` when no route exists.
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::UnknownNode`] for stale ids.
    pub fn path_distance(
        &self,
        from: RouteNodeId,
        to: RouteNodeId,
        allow_restricted: bool,
    ) -> Result<Option<f64>, ReasoningError> {
        Ok(self
            .shortest_path(from, to, allow_restricted)?
            .map(|(d, _)| d))
    }

    /// Dijkstra over the passage graph; returns the total distance and
    /// the region sequence, or `None` when unreachable.
    ///
    /// # Errors
    ///
    /// Returns [`ReasoningError::UnknownNode`] for stale ids.
    pub fn shortest_path(
        &self,
        from: RouteNodeId,
        to: RouteNodeId,
        allow_restricted: bool,
    ) -> Result<Option<(f64, Vec<RouteNodeId>)>, ReasoningError> {
        self.node(from)?;
        self.node(to)?;
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        dist[from.0] = 0.0;
        // Max-heap on negated distance.
        let mut heap: BinaryHeap<(std::cmp::Reverse<OrderedF64>, usize)> = BinaryHeap::new();
        heap.push((std::cmp::Reverse(OrderedF64(0.0)), from.0));
        while let Some((std::cmp::Reverse(OrderedF64(d)), u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == to.0 {
                break;
            }
            for &(v, _, len, restricted) in &self.nodes[u].edges {
                if restricted && !allow_restricted {
                    continue;
                }
                let nd = d + len;
                if nd < dist[v.0] {
                    dist[v.0] = nd;
                    prev[v.0] = u;
                    heap.push((std::cmp::Reverse(OrderedF64(nd)), v.0));
                }
            }
        }
        if dist[to.0].is_infinite() {
            return Ok(None);
        }
        let mut path = vec![to.0];
        let mut cur = to.0;
        while cur != from.0 {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Ok(Some((
            dist[to.0],
            path.into_iter().map(RouteNodeId).collect(),
        )))
    }

    fn node(&self, id: RouteNodeId) -> Result<&RouteNode, ReasoningError> {
        self.nodes
            .get(id.0)
            .ok_or(ReasoningError::UnknownNode { index: id.0 })
    }
}

/// f64 wrapper with a total order for the heap (no NaNs enter the graph).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::Segment;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn door_at(x: f64, y0: f64, y1: f64, kind: PassageKind) -> Passage {
        Passage {
            segment: Segment::new(Point::new(x, y0), Point::new(x, y1)),
            kind,
        }
    }

    /// Three rooms along a corridor:
    /// roomA (0..20) | roomB (20..40) | roomC (40..60), all 0..20 in y.
    fn corridor_graph() -> (RouteGraph, RouteNodeId, RouteNodeId, RouteNodeId) {
        let mut g = RouteGraph::new();
        let a = g.add_region("roomA", r(0.0, 0.0, 20.0, 20.0));
        let b = g.add_region("roomB", r(20.0, 0.0, 40.0, 20.0));
        let c = g.add_region("roomC", r(40.0, 0.0, 60.0, 20.0));
        g.connect(a, b, &door_at(20.0, 8.0, 12.0, PassageKind::Free))
            .unwrap();
        g.connect(b, c, &door_at(40.0, 8.0, 12.0, PassageKind::Free))
            .unwrap();
        (g, a, b, c)
    }

    #[test]
    fn euclidean_vs_path_distance() {
        let (g, a, _, c) = corridor_graph();
        let euclid = g.euclidean_distance(a, c).unwrap();
        assert_eq!(euclid, 40.0); // centers at (10,10) and (50,10)
        let path = g.path_distance(a, c, false).unwrap().unwrap();
        // a-center(10,10) → door(20,10) → b-center(30,10) → door(40,10)
        // → c-center(50,10): 10 + 10 + 10 + 10 = 40.
        assert_eq!(path, 40.0);
        // With an off-center door the path is longer than Euclidean.
        let mut g2 = RouteGraph::new();
        let a2 = g2.add_region("a", r(0.0, 0.0, 20.0, 20.0));
        let b2 = g2.add_region("b", r(20.0, 0.0, 40.0, 20.0));
        g2.connect(a2, b2, &door_at(20.0, 18.0, 20.0, PassageKind::Free))
            .unwrap();
        let path2 = g2.path_distance(a2, b2, false).unwrap().unwrap();
        assert!(path2 > g2.euclidean_distance(a2, b2).unwrap());
    }

    #[test]
    fn shortest_path_sequence() {
        let (g, a, b, c) = corridor_graph();
        let (_, path) = g.shortest_path(a, c, false).unwrap().unwrap();
        assert_eq!(path, vec![a, b, c]);
    }

    #[test]
    fn unreachable_room() {
        let mut g = RouteGraph::new();
        let a = g.add_region("a", r(0.0, 0.0, 10.0, 10.0));
        let b = g.add_region("b", r(100.0, 0.0, 110.0, 10.0));
        assert_eq!(g.path_distance(a, b, true).unwrap(), None);
        assert!(g.shortest_path(a, b, true).unwrap().is_none());
    }

    #[test]
    fn restricted_passage_gating() {
        let mut g = RouteGraph::new();
        let a = g.add_region("lobby", r(0.0, 0.0, 20.0, 20.0));
        let b = g.add_region("lab", r(20.0, 0.0, 40.0, 20.0));
        g.connect(a, b, &door_at(20.0, 8.0, 12.0, PassageKind::Restricted))
            .unwrap();
        // Without a key there is no route.
        assert_eq!(g.path_distance(a, b, false).unwrap(), None);
        // With a card swipe the door opens.
        assert!(g.path_distance(a, b, true).unwrap().is_some());
    }

    #[test]
    fn restricted_detour_vs_free_long_way() {
        // Square of rooms: a-b locked direct door; a-c-b free but longer.
        let mut g = RouteGraph::new();
        let a = g.add_region("a", r(0.0, 0.0, 10.0, 10.0));
        let b = g.add_region("b", r(10.0, 0.0, 20.0, 10.0));
        let c = g.add_region("c", r(0.0, 10.0, 20.0, 20.0));
        g.connect(a, b, &door_at(10.0, 4.0, 6.0, PassageKind::Restricted))
            .unwrap();
        let top_door_a = Passage::free(Segment::new(Point::new(4.0, 10.0), Point::new(6.0, 10.0)));
        let top_door_b =
            Passage::free(Segment::new(Point::new(14.0, 10.0), Point::new(16.0, 10.0)));
        g.connect(a, c, &top_door_a).unwrap();
        g.connect(c, b, &top_door_b).unwrap();
        let without_key = g.path_distance(a, b, false).unwrap().unwrap();
        let with_key = g.path_distance(a, b, true).unwrap().unwrap();
        assert!(with_key < without_key);
        let (_, path) = g.shortest_path(a, b, false).unwrap().unwrap();
        assert_eq!(path, vec![a, c, b]);
    }

    #[test]
    fn locate_point() {
        let (g, a, b, _) = corridor_graph();
        assert_eq!(g.locate(Point::new(5.0, 5.0)), Some(a));
        assert_eq!(g.locate(Point::new(25.0, 5.0)), Some(b));
        assert_eq!(g.locate(Point::new(500.0, 500.0)), None);
    }

    #[test]
    fn find_by_name_and_accessors() {
        let (g, a, _, _) = corridor_graph();
        assert_eq!(g.find("roomA"), Some(a));
        assert_eq!(g.find("nope"), None);
        assert_eq!(g.name(a).unwrap(), "roomA");
        assert_eq!(g.region(a).unwrap(), r(0.0, 0.0, 20.0, 20.0));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn stale_id_errors() {
        let g = RouteGraph::new();
        let bogus = RouteNodeId(7);
        assert!(g.region(bogus).is_err());
        assert!(g.euclidean_distance(bogus, bogus).is_err());
    }

    #[test]
    fn path_to_self_is_zero() {
        let (g, a, _, _) = corridor_graph();
        assert_eq!(g.path_distance(a, a, false).unwrap(), Some(0.0));
        let (d, path) = g.shortest_path(a, a, false).unwrap().unwrap();
        assert_eq!(d, 0.0);
        assert_eq!(path, vec![a]);
    }
}
