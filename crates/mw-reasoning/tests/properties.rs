//! Property-based tests for RCC-8 and the route graph.

use mw_geometry::{Point, Rect, Segment};
use mw_reasoning::{ec_refinement, EcKind, Passage, Rcc8, RccEngine, RouteGraph};
use proptest::prelude::*;

fn rect() -> impl Strategy<Value = Rect> {
    (0.0..90.0f64, 0.0..90.0f64, 1.0..30.0f64, 1.0..30.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(Point::new(x, y), Point::new(x + w, y + h)))
}

/// Rectangles snapped to an integer grid so touching configurations (EC,
/// TPP) actually occur.
fn grid_rect() -> impl Strategy<Value = Rect> {
    (0i32..10, 0i32..10, 1i32..6, 1i32..6).prop_map(|(x, y, w, h)| {
        Rect::new(
            Point::new(x as f64, y as f64),
            Point::new((x + w) as f64, (y + h) as f64),
        )
    })
}

proptest! {
    #[test]
    fn rcc8_converse_law(a in rect(), b in rect()) {
        prop_assert_eq!(Rcc8::of(&a, &b).converse(), Rcc8::of(&b, &a));
    }

    #[test]
    fn rcc8_self_relation_is_eq(a in rect()) {
        prop_assert_eq!(Rcc8::of(&a, &a), Rcc8::Eq);
    }

    #[test]
    fn rcc8_part_of_agrees_with_containment(a in grid_rect(), b in grid_rect()) {
        let rel = Rcc8::of(&a, &b);
        if rel.is_part_of() {
            prop_assert!(b.contains_rect(&a));
        }
        if rel == Rcc8::Dc {
            prop_assert!(!a.intersects(&b));
        } else {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn composition_table_sound_on_grid(a in grid_rect(), b in grid_rect(), c in grid_rect()) {
        // Whatever geometry says about (a, c) must be allowed by the
        // composition of (a, b) and (b, c).
        let mut engine = RccEngine::new();
        engine.assert_fact("a", "b", Rcc8::of(&a, &b));
        engine.assert_fact("b", "c", Rcc8::of(&b, &c));
        engine.close().unwrap();
        let derived = engine.query("a", "c").unwrap();
        prop_assert!(
            derived.contains(Rcc8::of(&a, &c)),
            "derived {derived} does not allow observed {}",
            Rcc8::of(&a, &c)
        );
    }

    #[test]
    fn closure_of_full_geometry_is_consistent(
        rects in proptest::collection::vec(grid_rect(), 2..7),
    ) {
        // Asserting the exact relation of every pair must never yield a
        // contradiction: geometry is a model of RCC-8.
        let mut engine = RccEngine::new();
        for (i, a) in rects.iter().enumerate() {
            for (j, b) in rects.iter().enumerate() {
                if i < j {
                    engine.assert_fact(&format!("r{i}"), &format!("r{j}"), Rcc8::of(a, b));
                }
            }
        }
        prop_assert!(engine.close().is_ok());
        // After closure every asserted pair is still a singleton matching
        // geometry.
        for (i, a) in rects.iter().enumerate() {
            for (j, b) in rects.iter().enumerate() {
                if i < j {
                    let got = engine.query(&format!("r{i}"), &format!("r{j}")).unwrap();
                    prop_assert_eq!(got.as_singleton(), Some(Rcc8::of(a, b)));
                }
            }
        }
    }

    #[test]
    fn ec_refinement_only_for_ec(a in grid_rect(), b in grid_rect()) {
        let refined = ec_refinement(&a, &b, &[]);
        if Rcc8::of(&a, &b) == Rcc8::Ec {
            prop_assert_eq!(refined, Some(EcKind::NoPassage));
        } else {
            prop_assert_eq!(refined, None);
        }
    }

    #[test]
    fn path_distance_at_least_euclidean(
        doors_y in proptest::collection::vec(2.0..18.0f64, 1..4),
    ) {
        // A row of rooms, each connected to the next by one door.
        let mut g = RouteGraph::new();
        let n = doors_y.len() + 1;
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let x0 = i as f64 * 20.0;
                g.add_region(format!("room{i}"), Rect::new(Point::new(x0, 0.0), Point::new(x0 + 20.0, 20.0)))
            })
            .collect();
        for (i, &y) in doors_y.iter().enumerate() {
            let x = (i + 1) as f64 * 20.0;
            let door = Passage::free(Segment::new(Point::new(x, y - 1.0), Point::new(x, y + 1.0)));
            g.connect(ids[i], ids[i + 1], &door).unwrap();
        }
        let first = ids[0];
        let last = ids[n - 1];
        let path = g.path_distance(first, last, false).unwrap().unwrap();
        let euclid = g.euclidean_distance(first, last).unwrap();
        prop_assert!(path >= euclid - 1e-9, "path {path} < euclid {euclid}");
        // The path visits every room in order.
        let (_, seq) = g.shortest_path(first, last, false).unwrap().unwrap();
        prop_assert_eq!(seq, ids);
    }

    #[test]
    fn path_distance_symmetric(doors_y in proptest::collection::vec(2.0..18.0f64, 1..4)) {
        let mut g = RouteGraph::new();
        let n = doors_y.len() + 1;
        let ids: Vec<_> = (0..n)
            .map(|i| {
                let x0 = i as f64 * 20.0;
                g.add_region(format!("room{i}"), Rect::new(Point::new(x0, 0.0), Point::new(x0 + 20.0, 20.0)))
            })
            .collect();
        for (i, &y) in doors_y.iter().enumerate() {
            let x = (i + 1) as f64 * 20.0;
            let door = Passage::free(Segment::new(Point::new(x, y - 1.0), Point::new(x, y + 1.0)));
            g.connect(ids[i], ids[i + 1], &door).unwrap();
        }
        let d1 = g.path_distance(ids[0], ids[n - 1], false).unwrap().unwrap();
        let d2 = g.path_distance(ids[n - 1], ids[0], false).unwrap().unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9);
    }
}
