use std::collections::HashMap;
use std::fmt;

use mw_geometry::Point;
use mw_model::SimTime;
use serde::{Deserialize, Serialize};

use crate::{MobileObjectId, SensorId, SensorReading, SensorType};

/// Identifier of an adapter instance.
///
/// §6: "Every adapter has an *adapter ID* and an *adapter type*. The
/// adapter ID uniquely identifies a particular adapter. The adapter type
/// classifies adapter objects based on the location technology they wrap."
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdapterId(String);

impl AdapterId {
    /// Creates an adapter id.
    #[must_use]
    pub fn new(id: impl Into<String>) -> Self {
        AdapterId(id.into())
    }

    /// The id string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AdapterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AdapterId {
    fn from(s: &str) -> Self {
        AdapterId::new(s)
    }
}

/// A request to drop previously-reported location information.
///
/// §6: when a user logs out of a biometric device, "the adapter also
/// forces all location information relating to that user and obtained from
/// the same device to expire immediately."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Revocation {
    /// The sensor whose earlier readings must be dropped.
    pub sensor_id: SensorId,
    /// The object whose readings are revoked.
    pub object: MobileObjectId,
}

/// What an adapter emits for one native event: zero or more readings plus
/// zero or more revocations of earlier readings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdapterOutput {
    /// New readings in the common representation.
    pub readings: Vec<SensorReading>,
    /// Earlier readings to expire immediately.
    pub revocations: Vec<Revocation>,
}

impl AdapterOutput {
    /// An output with no readings or revocations.
    #[must_use]
    pub fn empty() -> Self {
        AdapterOutput::default()
    }

    /// An output carrying exactly one reading.
    #[must_use]
    pub fn single(reading: SensorReading) -> Self {
        AdapterOutput {
            readings: vec![reading],
            revocations: Vec::new(),
        }
    }
}

/// A location adapter: the device-driver-like wrapper that translates one
/// technology's native events into the common [`SensorReading`] format.
///
/// The original system implements adapters as CORBA client wrappers; the
/// translation logic — calibration of `p`/`q`, region construction, TTL
/// and degradation policy — is what this trait captures.
pub trait Adapter {
    /// The native event type of the wrapped technology.
    type Event;

    /// The unique id of this adapter instance.
    fn adapter_id(&self) -> &AdapterId;

    /// The technology this adapter wraps.
    fn sensor_type(&self) -> SensorType;

    /// Translates one native event into common-format output.
    fn translate(&mut self, event: Self::Event, now: SimTime) -> AdapterOutput;
}

/// Tracks whether a mobile object's reported position is moving over time.
///
/// The conflict-resolution rule of §4.1.2 prefers moving rectangles ("a
/// moving rectangle implies that the person is carrying a location device").
/// Adapters feed each report's center into the tracker and tag readings
/// with the verdict.
#[derive(Debug, Clone, Default)]
pub struct MovementTracker {
    threshold: f64,
    last: HashMap<MobileObjectId, Point>,
}

impl MovementTracker {
    /// Creates a tracker that deems an object moving when consecutive
    /// reports differ by more than `threshold` distance units.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        MovementTracker {
            threshold,
            last: HashMap::new(),
        }
    }

    /// Records a report of `object` at `center`; returns `true` when the
    /// object moved more than the threshold since its previous report.
    /// The first report of an object is not "moving".
    pub fn observe(&mut self, object: &MobileObjectId, center: Point) -> bool {
        let moving = self
            .last
            .get(object)
            .is_some_and(|prev| prev.distance(center) > self.threshold);
        self.last.insert(object.clone(), center);
        moving
    }

    /// Forgets an object's history (e.g. after a logout).
    pub fn forget(&mut self, object: &MobileObjectId) {
        self.last.remove(object);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_tracker_detects_motion() {
        let mut t = MovementTracker::new(0.5);
        let obj: MobileObjectId = "alice-badge".into();
        // First observation: not moving.
        assert!(!t.observe(&obj, Point::new(0.0, 0.0)));
        // Small jitter below threshold: not moving.
        assert!(!t.observe(&obj, Point::new(0.2, 0.0)));
        // Real displacement: moving.
        assert!(t.observe(&obj, Point::new(3.0, 0.0)));
        // Stationary again.
        assert!(!t.observe(&obj, Point::new(3.0, 0.0)));
    }

    #[test]
    fn movement_tracker_is_per_object() {
        let mut t = MovementTracker::new(0.1);
        let a: MobileObjectId = "a".into();
        let b: MobileObjectId = "b".into();
        t.observe(&a, Point::new(0.0, 0.0));
        // b's first report is independent of a's history.
        assert!(!t.observe(&b, Point::new(100.0, 100.0)));
        assert!(t.observe(&a, Point::new(5.0, 5.0)));
    }

    #[test]
    fn forget_resets_history() {
        let mut t = MovementTracker::new(0.1);
        let a: MobileObjectId = "a".into();
        t.observe(&a, Point::new(0.0, 0.0));
        t.forget(&a);
        assert!(!t.observe(&a, Point::new(50.0, 50.0)));
    }

    #[test]
    fn adapter_output_constructors() {
        assert!(AdapterOutput::empty().readings.is_empty());
        assert!(AdapterOutput::empty().revocations.is_empty());
    }

    #[test]
    fn adapter_id_display() {
        let id: AdapterId = "rf-adapter-1".into();
        assert_eq!(id.to_string(), "rf-adapter-1");
        assert_eq!(id.as_str(), "rf-adapter-1");
    }
}
