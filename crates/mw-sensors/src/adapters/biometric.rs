use mw_geometry::{Circle, Point, Rect};
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};

use crate::{
    Adapter, AdapterId, AdapterOutput, MobileObjectId, Revocation, SensorId, SensorReading,
    SensorSpec, SensorType,
};

/// Radius of the short-term presence region around a biometric device:
/// "define a small area (in our case, a circle centered at the device
/// position with a radius of 2 feet)".
pub const BIOMETRIC_SHORT_RADIUS_FT: f64 = 2.0;

/// Expiry of the short-term login reading (30 s per §6).
pub const BIOMETRIC_SHORT_TTL_SECS: f64 = 30.0;

/// Expiry of the long-term login reading: "T = 15 minutes is reasonable".
pub const BIOMETRIC_LONG_TTL_SECS: f64 = 15.0 * 60.0;

/// Expiry of the logout reading (15 s per §6).
pub const BIOMETRIC_LOGOUT_TTL_SECS: f64 = 15.0;

/// A native biometric event.
#[derive(Debug, Clone, PartialEq)]
pub enum BiometricEvent {
    /// A user authenticated at the device.
    Login {
        /// The identified user.
        user: MobileObjectId,
    },
    /// A user manually logged out: "a clear indication that the user is in
    /// the room now, but he is leaving soon."
    Logout {
        /// The user logging out.
        user: MobileObjectId,
    },
}

/// Adapter wrapping a fingerprint reader or other biometric login device.
///
/// Per §6 a login produces **two** readings:
///
/// 1. a *short-term* reading — 30 s expiry, 2 ft radius around the device,
///    `y = 0.99`, `z = 0.01`, `x = 1` (physical presence is required), and
/// 2. a *long-term* reading — 15 min expiry, the whole room as the region,
///    `z` = the probability of leaving the room before `T` without a
///    manual logout.
///
/// A logout produces a 15 s short reading plus revocation of the user's
/// earlier readings from this device.
#[derive(Debug)]
pub struct BiometricAdapter {
    id: AdapterId,
    sensor_id: SensorId,
    glob_prefix: Glob,
    device_position: Point,
    room_region: Rect,
    short_spec: SensorSpec,
    long_spec: SensorSpec,
}

impl BiometricAdapter {
    /// Creates an adapter for a device at `device_position` inside the
    /// room covering `room_region` (building coordinates).
    /// `leave_probability` is the chance a user leaves the room before the
    /// long-term expiry without logging out.
    #[must_use]
    pub fn with_parts(
        id: AdapterId,
        sensor_id: SensorId,
        glob_prefix: Glob,
        device_position: Point,
        room_region: Rect,
        leave_probability: f64,
    ) -> Self {
        BiometricAdapter {
            id,
            sensor_id,
            glob_prefix,
            device_position,
            room_region,
            short_spec: SensorSpec::biometric_short_term(),
            long_spec: SensorSpec::biometric_long_term(leave_probability),
        }
    }

    fn short_region(&self) -> Rect {
        Circle::new(self.device_position, BIOMETRIC_SHORT_RADIUS_FT).mbr()
    }

    fn short_reading(&self, user: MobileObjectId, now: SimTime, ttl: SimDuration) -> SensorReading {
        SensorReading {
            sensor_id: self.sensor_id.clone(),
            spec: self.short_spec,
            object: user,
            glob_prefix: self.glob_prefix.clone(),
            region: self.short_region(),
            detected_at: now,
            time_to_live: ttl,
            tdf: TemporalDegradation::Linear { lifetime: ttl },
            moving: false,
        }
    }
}

impl Adapter for BiometricAdapter {
    type Event = BiometricEvent;

    fn adapter_id(&self) -> &AdapterId {
        &self.id
    }

    fn sensor_type(&self) -> SensorType {
        SensorType::Biometric
    }

    fn translate(&mut self, event: BiometricEvent, now: SimTime) -> AdapterOutput {
        match event {
            BiometricEvent::Login { user } => {
                let short = self.short_reading(
                    user.clone(),
                    now,
                    SimDuration::from_secs(BIOMETRIC_SHORT_TTL_SECS),
                );
                let long_ttl = SimDuration::from_secs(BIOMETRIC_LONG_TTL_SECS);
                let long = SensorReading {
                    sensor_id: self.sensor_id.clone(),
                    spec: self.long_spec,
                    object: user,
                    glob_prefix: self.glob_prefix.clone(),
                    region: self.room_region,
                    detected_at: now,
                    time_to_live: long_ttl,
                    // "confidence will degrade with time anyway": halve
                    // roughly every third of the long window.
                    tdf: TemporalDegradation::ExponentialHalfLife {
                        half_life: long_ttl * (1.0 / 3.0),
                    },
                    moving: false,
                };
                AdapterOutput {
                    readings: vec![short, long],
                    revocations: Vec::new(),
                }
            }
            BiometricEvent::Logout { user } => {
                let short = self.short_reading(
                    user.clone(),
                    now,
                    SimDuration::from_secs(BIOMETRIC_LOGOUT_TTL_SECS),
                );
                AdapterOutput {
                    readings: vec![short],
                    revocations: vec![Revocation {
                        sensor_id: self.sensor_id.clone(),
                        object: user,
                    }],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> BiometricAdapter {
        BiometricAdapter::with_parts(
            "bio-adapter-1".into(),
            "Fp-3".into(),
            "SC/Floor3/3105".parse().unwrap(),
            Point::new(335.0, 5.0),
            Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0)),
            0.2,
        )
    }

    #[test]
    fn login_produces_short_and_long_reading() {
        let mut a = adapter();
        let out = a.translate(
            BiometricEvent::Login {
                user: "alice".into(),
            },
            SimTime::from_secs(100.0),
        );
        assert_eq!(out.readings.len(), 2);
        assert!(out.revocations.is_empty());
        let short = &out.readings[0];
        let long = &out.readings[1];
        // Short: 2 ft radius square around the device, 30 s TTL, x = 1.
        assert_eq!(short.region.width(), 4.0);
        assert_eq!(short.region.center(), Point::new(335.0, 5.0));
        assert_eq!(short.time_to_live, SimDuration::from_secs(30.0));
        assert_eq!(short.spec.carry_probability(), 1.0);
        // Long: the whole room, 15 min TTL.
        assert_eq!(long.region.width(), 20.0);
        assert_eq!(long.time_to_live, SimDuration::from_secs(900.0));
    }

    #[test]
    fn short_reading_is_high_confidence() {
        let mut a = adapter();
        let out = a.translate(
            BiometricEvent::Login {
                user: "alice".into(),
            },
            SimTime::ZERO,
        );
        let short = &out.readings[0];
        assert!((short.spec.hit_probability() - 0.99).abs() < 1e-12);
        assert!((short.spec.false_positive_probability(1.0, 1e6) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn logout_revokes_and_emits_short_reading() {
        let mut a = adapter();
        let out = a.translate(
            BiometricEvent::Logout {
                user: "alice".into(),
            },
            SimTime::from_secs(500.0),
        );
        assert_eq!(out.readings.len(), 1);
        assert_eq!(out.readings[0].time_to_live, SimDuration::from_secs(15.0));
        assert_eq!(out.revocations.len(), 1);
        assert_eq!(out.revocations[0].object, "alice".into());
        assert_eq!(out.revocations[0].sensor_id, "Fp-3".into());
    }

    #[test]
    fn long_reading_confidence_degrades() {
        let mut a = adapter();
        let out = a.translate(
            BiometricEvent::Login {
                user: "alice".into(),
            },
            SimTime::ZERO,
        );
        let long = &out.readings[1];
        let fresh = long.hit_probability_at(SimTime::ZERO);
        let later = long.hit_probability_at(SimTime::from_secs(600.0));
        assert!(later < fresh);
        assert!(later > 0.0);
        assert_eq!(long.hit_probability_at(SimTime::from_secs(901.0)), 0.0);
    }

    #[test]
    fn metadata() {
        let a = adapter();
        assert_eq!(a.sensor_type(), SensorType::Biometric);
        assert_eq!(a.adapter_id().as_str(), "bio-adapter-1");
    }
}
