use mw_geometry::Rect;
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};

use crate::{
    Adapter, AdapterId, AdapterOutput, MobileObjectId, SensorId, SensorReading, SensorSpec,
    SensorType,
};

/// Time-to-live of a card-swipe reading. §5.2: "a card reader has a
/// time-to-live value of 10 seconds."
pub const CARD_READER_TTL_SECS: f64 = 10.0;

/// A native card-swipe event.
#[derive(Debug, Clone, PartialEq)]
pub struct CardSwipe {
    /// The badge holder who swiped.
    pub user: MobileObjectId,
}

/// Adapter wrapping a card reader at a room entrance.
///
/// §1.1's motivating example: "people in our building have to swipe their
/// ID cards on a card reader whenever they enter certain rooms. Hence, at
/// the time of swiping their card, their location is known with high
/// confidence. With the passage of time, however, this location data
/// becomes less reliable, since they might have left the room." The
/// reported region is the whole room (symbolic resolution).
#[derive(Debug)]
pub struct CardReaderAdapter {
    id: AdapterId,
    sensor_id: SensorId,
    glob_prefix: Glob,
    room_region: Rect,
    spec: SensorSpec,
    ttl: SimDuration,
}

impl CardReaderAdapter {
    /// Creates an adapter guarding the room covering `room_region`.
    #[must_use]
    pub fn with_parts(
        id: AdapterId,
        sensor_id: SensorId,
        glob_prefix: Glob,
        room_region: Rect,
    ) -> Self {
        CardReaderAdapter {
            id,
            sensor_id,
            glob_prefix,
            room_region,
            spec: SensorSpec::card_reader(),
            ttl: SimDuration::from_secs(CARD_READER_TTL_SECS),
        }
    }

    /// Overrides the default 10 s time-to-live.
    pub fn set_time_to_live(&mut self, ttl: SimDuration) {
        self.ttl = ttl;
    }
}

impl Adapter for CardReaderAdapter {
    type Event = CardSwipe;

    fn adapter_id(&self) -> &AdapterId {
        &self.id
    }

    fn sensor_type(&self) -> SensorType {
        SensorType::CardReader
    }

    fn translate(&mut self, event: CardSwipe, now: SimTime) -> AdapterOutput {
        AdapterOutput::single(SensorReading {
            sensor_id: self.sensor_id.clone(),
            spec: self.spec,
            object: event.user,
            glob_prefix: self.glob_prefix.clone(),
            region: self.room_region,
            detected_at: now,
            time_to_live: self.ttl,
            // Swipes age fast: the user may walk straight through.
            tdf: TemporalDegradation::Linear { lifetime: self.ttl },
            moving: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::Point;

    fn adapter() -> CardReaderAdapter {
        CardReaderAdapter::with_parts(
            "card-adapter-1".into(),
            "Card-7".into(),
            "SC/Floor3/3105".parse().unwrap(),
            Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0)),
        )
    }

    #[test]
    fn swipe_reports_whole_room() {
        let mut a = adapter();
        let out = a.translate(CardSwipe { user: "bob".into() }, SimTime::from_secs(5.0));
        let r = &out.readings[0];
        assert_eq!(r.region.area(), 600.0);
        assert_eq!(r.time_to_live, SimDuration::from_secs(10.0));
        assert_eq!(r.spec.carry_probability(), 1.0);
    }

    #[test]
    fn reading_goes_stale_quickly() {
        let mut a = adapter();
        let out = a.translate(CardSwipe { user: "bob".into() }, SimTime::ZERO);
        let r = &out.readings[0];
        assert!(
            r.hit_probability_at(SimTime::from_secs(5.0)) < r.hit_probability_at(SimTime::ZERO)
        );
        assert!(r.is_expired(SimTime::from_secs(10.5)));
    }

    #[test]
    fn metadata() {
        let a = adapter();
        assert_eq!(a.sensor_type(), SensorType::CardReader);
        assert_eq!(a.adapter_id().as_str(), "card-adapter-1");
    }
}
