use mw_geometry::{Circle, Point};
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};

use crate::{
    Adapter, AdapterId, AdapterOutput, MobileObjectId, Revocation, SensorId, SensorReading,
    SensorSpec, SensorType,
};

/// Radius of the presence region around a logged-in desktop (feet).
pub const DESKTOP_RADIUS_FT: f64 = 3.0;

/// Default time-to-live of a desktop session reading: sessions linger, so
/// we keep the reading alive for 5 minutes and let degradation do the rest.
pub const DESKTOP_TTL_SECS: f64 = 5.0 * 60.0;

/// A native desktop session event.
#[derive(Debug, Clone, PartialEq)]
pub enum DesktopSessionEvent {
    /// A user logged into the machine.
    Login {
        /// The user who authenticated.
        user: MobileObjectId,
    },
    /// Periodic activity (keyboard/mouse) refreshing presence.
    Activity {
        /// The active user.
        user: MobileObjectId,
    },
    /// The user logged out or the session locked.
    Logout {
        /// The user whose session ended.
        user: MobileObjectId,
    },
}

/// Adapter wrapping login sessions on a fixed desktop workstation
/// ("login information on desktops", §1.1).
#[derive(Debug)]
pub struct DesktopLoginAdapter {
    id: AdapterId,
    sensor_id: SensorId,
    glob_prefix: Glob,
    machine_position: Point,
    spec: SensorSpec,
    ttl: SimDuration,
}

impl DesktopLoginAdapter {
    /// Creates an adapter for a workstation at `machine_position`.
    #[must_use]
    pub fn with_parts(
        id: AdapterId,
        sensor_id: SensorId,
        glob_prefix: Glob,
        machine_position: Point,
    ) -> Self {
        DesktopLoginAdapter {
            id,
            sensor_id,
            glob_prefix,
            machine_position,
            spec: SensorSpec::desktop_login(),
            ttl: SimDuration::from_secs(DESKTOP_TTL_SECS),
        }
    }

    fn reading(&self, user: MobileObjectId, now: SimTime) -> SensorReading {
        SensorReading {
            sensor_id: self.sensor_id.clone(),
            spec: self.spec,
            object: user,
            glob_prefix: self.glob_prefix.clone(),
            region: Circle::new(self.machine_position, DESKTOP_RADIUS_FT).mbr(),
            detected_at: now,
            time_to_live: self.ttl,
            tdf: TemporalDegradation::ExponentialHalfLife {
                half_life: self.ttl * 0.25,
            },
            moving: false,
        }
    }
}

impl Adapter for DesktopLoginAdapter {
    type Event = DesktopSessionEvent;

    fn adapter_id(&self) -> &AdapterId {
        &self.id
    }

    fn sensor_type(&self) -> SensorType {
        SensorType::DesktopLogin
    }

    fn translate(&mut self, event: DesktopSessionEvent, now: SimTime) -> AdapterOutput {
        match event {
            DesktopSessionEvent::Login { user } | DesktopSessionEvent::Activity { user } => {
                AdapterOutput::single(self.reading(user, now))
            }
            DesktopSessionEvent::Logout { user } => AdapterOutput {
                readings: Vec::new(),
                revocations: vec![Revocation {
                    sensor_id: self.sensor_id.clone(),
                    object: user,
                }],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> DesktopLoginAdapter {
        DesktopLoginAdapter::with_parts(
            "desk-adapter-1".into(),
            "Desk-9".into(),
            "SC/Floor3/NetLab".parse().unwrap(),
            Point::new(370.0, 10.0),
        )
    }

    #[test]
    fn login_and_activity_produce_presence() {
        let mut a = adapter();
        for event in [
            DesktopSessionEvent::Login {
                user: "carol".into(),
            },
            DesktopSessionEvent::Activity {
                user: "carol".into(),
            },
        ] {
            let out = a.translate(event, SimTime::ZERO);
            assert_eq!(out.readings.len(), 1);
            assert_eq!(out.readings[0].region.center(), Point::new(370.0, 10.0));
            assert_eq!(out.readings[0].region.width(), 6.0);
        }
    }

    #[test]
    fn logout_only_revokes() {
        let mut a = adapter();
        let out = a.translate(
            DesktopSessionEvent::Logout {
                user: "carol".into(),
            },
            SimTime::from_secs(10.0),
        );
        assert!(out.readings.is_empty());
        assert_eq!(out.revocations.len(), 1);
        assert_eq!(out.revocations[0].sensor_id, "Desk-9".into());
    }

    #[test]
    fn presence_decays_while_session_lives() {
        let mut a = adapter();
        let out = a.translate(
            DesktopSessionEvent::Login {
                user: "carol".into(),
            },
            SimTime::ZERO,
        );
        let r = &out.readings[0];
        let early = r.hit_probability_at(SimTime::from_secs(10.0));
        let later = r.hit_probability_at(SimTime::from_secs(200.0));
        assert!(later < early);
    }

    #[test]
    fn metadata() {
        let a = adapter();
        assert_eq!(a.sensor_type(), SensorType::DesktopLogin);
        assert_eq!(a.adapter_id().as_str(), "desk-adapter-1");
    }
}
