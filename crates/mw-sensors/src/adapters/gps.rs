use mw_geometry::{Circle, Point};
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};

use crate::{
    Adapter, AdapterId, AdapterOutput, MobileObjectId, MovementTracker, SensorId, SensorReading,
    SensorSpec, SensorType,
};

/// Default time-to-live for a GPS fix.
pub const GPS_TTL_SECS: f64 = 10.0;

/// A native GPS fix, already projected into the shared coordinate system
/// by the receiver driver ("the adapter should be able to translate
/// longitude, latitude, and altitude information into a coordinate
/// location that matches MiddleWhere's coordinate system", §6).
#[derive(Debug, Clone, PartialEq)]
pub struct GpsFix {
    /// The GPS device (and therefore its carrier).
    pub device: MobileObjectId,
    /// Projected position in shared coordinates (feet).
    pub position: Point,
    /// The receiver's own accuracy estimate, in feet. "Unlike the above
    /// technologies, GPS can give an estimation of its accuracy."
    pub accuracy: f64,
}

/// Adapter wrapping a GPS receiver.
///
/// Calibration per §6: area A is a disk of the receiver-estimated accuracy
/// radius, `y = 0.99`, `z = 0.01` (trusting the estimate), and `x` is the
/// probability of the person carrying the device.
#[derive(Debug)]
pub struct GpsAdapter {
    id: AdapterId,
    sensor_id: SensorId,
    glob_prefix: Glob,
    spec: SensorSpec,
    ttl: SimDuration,
    tracker: MovementTracker,
}

impl GpsAdapter {
    /// Creates an adapter instance covering outdoor space `glob_prefix`.
    #[must_use]
    pub fn with_parts(
        id: AdapterId,
        sensor_id: SensorId,
        glob_prefix: Glob,
        carry_probability: f64,
    ) -> Self {
        GpsAdapter {
            id,
            sensor_id,
            glob_prefix,
            spec: SensorSpec::gps(carry_probability),
            ttl: SimDuration::from_secs(GPS_TTL_SECS),
            tracker: MovementTracker::new(3.0),
        }
    }

    /// Overrides the default time-to-live.
    pub fn set_time_to_live(&mut self, ttl: SimDuration) {
        self.ttl = ttl;
    }
}

impl Adapter for GpsAdapter {
    type Event = GpsFix;

    fn adapter_id(&self) -> &AdapterId {
        &self.id
    }

    fn sensor_type(&self) -> SensorType {
        SensorType::Gps
    }

    fn translate(&mut self, event: GpsFix, now: SimTime) -> AdapterOutput {
        if !event.accuracy.is_finite() || event.accuracy <= 0.0 {
            // No satellite lock / garbage accuracy: drop the fix.
            return AdapterOutput::empty();
        }
        let moving = self.tracker.observe(&event.device, event.position);
        let region = Circle::new(event.position, event.accuracy).mbr();
        AdapterOutput::single(SensorReading {
            sensor_id: self.sensor_id.clone(),
            spec: self.spec,
            object: event.device,
            glob_prefix: self.glob_prefix.clone(),
            region,
            detected_at: now,
            time_to_live: self.ttl,
            tdf: TemporalDegradation::Linear { lifetime: self.ttl },
            moving,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> GpsAdapter {
        GpsAdapter::with_parts(
            "gps-adapter-1".into(),
            "Gps-1".into(),
            "Campus".parse().unwrap(),
            0.7,
        )
    }

    #[test]
    fn region_tracks_accuracy_estimate() {
        let mut a = adapter();
        let out = a.translate(
            GpsFix {
                device: "van-gps".into(),
                position: Point::new(1000.0, 2000.0),
                accuracy: 15.0,
            },
            SimTime::ZERO,
        );
        let r = &out.readings[0];
        assert_eq!(r.region.width(), 30.0);
        assert_eq!(r.region.center(), Point::new(1000.0, 2000.0));
        assert!(
            (r.spec.hit_probability() - (1.0 - ((1.0 - 0.99) * 0.7 + (1.0 - 0.01) * 0.3))).abs()
                < 1e-12
        );
    }

    #[test]
    fn bad_accuracy_drops_fix() {
        let mut a = adapter();
        for acc in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let out = a.translate(
                GpsFix {
                    device: "van-gps".into(),
                    position: Point::ORIGIN,
                    accuracy: acc,
                },
                SimTime::ZERO,
            );
            assert!(out.readings.is_empty(), "accuracy {acc} should be dropped");
        }
    }

    #[test]
    fn movement_across_fixes() {
        let mut a = adapter();
        let dev: MobileObjectId = "van-gps".into();
        let _ = a.translate(
            GpsFix {
                device: dev.clone(),
                position: Point::new(0.0, 0.0),
                accuracy: 10.0,
            },
            SimTime::ZERO,
        );
        let out = a.translate(
            GpsFix {
                device: dev,
                position: Point::new(50.0, 0.0),
                accuracy: 10.0,
            },
            SimTime::from_secs(1.0),
        );
        assert!(out.readings[0].moving);
    }

    #[test]
    fn metadata() {
        let a = adapter();
        assert_eq!(a.sensor_type(), SensorType::Gps);
        assert_eq!(a.adapter_id().as_str(), "gps-adapter-1");
    }
}
