//! Concrete location adapters for the technologies the paper deployed
//! (§6), plus the card-reader and desktop-login variants sketched in §1.1.
//!
//! All distances are in feet, matching the paper's floor plans (6 inches =
//! 0.5 ft, RFID range 15 ft, and so on).

mod biometric;
mod card_reader;
mod desktop_login;
mod gps;
mod rfid;
mod ubisense;

pub use biometric::{
    BiometricAdapter, BiometricEvent, BIOMETRIC_LOGOUT_TTL_SECS, BIOMETRIC_LONG_TTL_SECS,
    BIOMETRIC_SHORT_RADIUS_FT, BIOMETRIC_SHORT_TTL_SECS,
};
pub use card_reader::{CardReaderAdapter, CardSwipe, CARD_READER_TTL_SECS};
pub use desktop_login::{
    DesktopLoginAdapter, DesktopSessionEvent, DESKTOP_RADIUS_FT, DESKTOP_TTL_SECS,
};
pub use gps::{GpsAdapter, GpsFix, GPS_TTL_SECS};
pub use rfid::{BadgeSighting, RfidBadgeAdapter, RFID_RANGE_FT, RFID_TTL_SECS};
pub use ubisense::{UbisenseAdapter, UbisenseSighting, UBISENSE_RADIUS_FT, UBISENSE_TTL_SECS};
