use mw_geometry::{Circle, Point};
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};

use crate::{
    Adapter, AdapterId, AdapterOutput, MobileObjectId, MovementTracker, SensorId, SensorReading,
    SensorSpec, SensorType,
};

/// Default detection range of an RFID base station, per §6: "The base
/// stations can detect badges within a range of approx. 15 ft."
pub const RFID_RANGE_FT: f64 = 15.0;

/// Default time-to-live for an RFID reading, from the paper's sensor table
/// (RF-12: 60 s).
pub const RFID_TTL_SECS: f64 = 60.0;

/// A native RFID event: a base station heard a badge's ID in its vicinity.
///
/// "This system cannot give exact coordinates of the badge; instead, it is
/// capable of capturing the IDs of the badges in its vicinity."
#[derive(Debug, Clone, PartialEq)]
pub struct BadgeSighting {
    /// The badge that was heard.
    pub badge: MobileObjectId,
}

/// Adapter wrapping one RFID base station.
///
/// Calibration per §6: "the best set up for the RF badges is to define an
/// area of interest, A, and set up a base station in the center of A … we
/// set y = 0.75, and z = 0.25·area(A)/area(U)". The reported region is
/// always the station's coverage disk — the badge could be anywhere in it.
///
/// The paper instantiates one adapter per station ("we are running RF
/// badge base stations in three different locations. In each location, an
/// RF badge adapter is instantiated with the correct information").
#[derive(Debug)]
pub struct RfidBadgeAdapter {
    id: AdapterId,
    sensor_id: SensorId,
    glob_prefix: Glob,
    station_position: Point,
    range: f64,
    spec: SensorSpec,
    ttl: SimDuration,
    tracker: MovementTracker,
}

impl RfidBadgeAdapter {
    /// Creates an adapter for a base station at `station_position`
    /// (building coordinates, feet) covering the space `glob_prefix`.
    #[must_use]
    pub fn with_parts(
        id: AdapterId,
        sensor_id: SensorId,
        glob_prefix: Glob,
        station_position: Point,
        carry_probability: f64,
    ) -> Self {
        RfidBadgeAdapter {
            id,
            sensor_id,
            glob_prefix,
            station_position,
            range: RFID_RANGE_FT,
            spec: SensorSpec::rfid_badge(carry_probability),
            ttl: SimDuration::from_secs(RFID_TTL_SECS),
            tracker: MovementTracker::new(1.0),
        }
    }

    /// Overrides the default 15 ft range (obstacles weaken the signal).
    ///
    /// # Panics
    ///
    /// Panics when `range` is not positive and finite.
    pub fn set_range(&mut self, range: f64) {
        assert!(range.is_finite() && range > 0.0, "range must be positive");
        self.range = range;
    }

    /// Overrides the default time-to-live.
    pub fn set_time_to_live(&mut self, ttl: SimDuration) {
        self.ttl = ttl;
    }

    /// The station's fixed coverage region (an MBR of its range disk).
    #[must_use]
    pub fn coverage(&self) -> mw_geometry::Rect {
        Circle::new(self.station_position, self.range).mbr()
    }
}

impl Adapter for RfidBadgeAdapter {
    type Event = BadgeSighting;

    fn adapter_id(&self) -> &AdapterId {
        &self.id
    }

    fn sensor_type(&self) -> SensorType {
        SensorType::RfidBadge
    }

    fn translate(&mut self, event: BadgeSighting, now: SimTime) -> AdapterOutput {
        // The region is the station's coverage disk; its center never
        // moves, but a badge heard by a *different* station's adapter will
        // register as moving at the fusion layer via its own tracker.
        let moving = self.tracker.observe(&event.badge, self.station_position);
        AdapterOutput::single(SensorReading {
            sensor_id: self.sensor_id.clone(),
            spec: self.spec,
            object: event.badge,
            glob_prefix: self.glob_prefix.clone(),
            region: self.coverage(),
            detected_at: now,
            time_to_live: self.ttl,
            tdf: TemporalDegradation::ExponentialHalfLife {
                half_life: self.ttl * 0.5,
            },
            moving,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> RfidBadgeAdapter {
        RfidBadgeAdapter::with_parts(
            "rf-adapter-1".into(),
            "RF-12".into(),
            "SC/Floor3/3105".parse().unwrap(),
            Point::new(340.0, 15.0),
            0.8,
        )
    }

    #[test]
    fn region_is_station_coverage() {
        let mut a = adapter();
        let out = a.translate(
            BadgeSighting {
                badge: "tom-pda".into(),
            },
            SimTime::ZERO,
        );
        let r = &out.readings[0];
        assert_eq!(r.region.center(), Point::new(340.0, 15.0));
        assert_eq!(r.region.width(), 30.0); // 2 * 15 ft
        assert_eq!(r.spec.detection_probability(), 0.75);
    }

    #[test]
    fn station_region_is_stationary() {
        let mut a = adapter();
        let badge: MobileObjectId = "tom-pda".into();
        let _ = a.translate(
            BadgeSighting {
                badge: badge.clone(),
            },
            SimTime::ZERO,
        );
        let out = a.translate(BadgeSighting { badge }, SimTime::from_secs(5.0));
        assert!(!out.readings[0].moving);
    }

    #[test]
    fn range_override_shrinks_coverage() {
        let mut a = adapter();
        a.set_range(5.0);
        assert_eq!(a.coverage().width(), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        adapter().set_range(0.0);
    }

    #[test]
    fn ttl_default_matches_paper_table() {
        let mut a = adapter();
        let out = a.translate(BadgeSighting { badge: "b".into() }, SimTime::ZERO);
        assert_eq!(out.readings[0].time_to_live, SimDuration::from_secs(60.0));
    }

    #[test]
    fn metadata() {
        let a = adapter();
        assert_eq!(a.sensor_type(), SensorType::RfidBadge);
        assert_eq!(a.adapter_id().as_str(), "rf-adapter-1");
    }
}
