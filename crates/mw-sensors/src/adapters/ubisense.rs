use mw_geometry::{Circle, Point};
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};

use crate::{
    Adapter, AdapterId, AdapterOutput, MobileObjectId, MovementTracker, SensorId, SensorReading,
    SensorSpec, SensorType,
};

/// The Ubisense UWB resolution: the paper's base stations "pinpoint the
/// location of a tag within 6 inches 95% of the time".
pub const UBISENSE_RADIUS_FT: f64 = 0.5;

/// Default time-to-live for a Ubisense reading, from the paper's sensor
/// table (Ubisense-18: 3 s).
pub const UBISENSE_TTL_SECS: f64 = 3.0;

/// A native Ubisense sighting: the technology reports an exact coordinate
/// for a tag.
#[derive(Debug, Clone, PartialEq)]
pub struct UbisenseSighting {
    /// The tag (mobile object) that was located.
    pub tag: MobileObjectId,
    /// Reported position in building coordinates (feet).
    pub position: Point,
}

/// Adapter wrapping a Ubisense UWB installation.
///
/// Calibration per §6: region A is a circle of radius 6" centered at the
/// reported location, `y = 0.95`, `z = 0.05·area(A)/area(U)`, `x` from
/// user studies of badge-carrying behaviour.
#[derive(Debug)]
pub struct UbisenseAdapter {
    id: AdapterId,
    sensor_id: SensorId,
    glob_prefix: Glob,
    spec: SensorSpec,
    ttl: SimDuration,
    tdf: Option<TemporalDegradation>,
    tracker: MovementTracker,
}

impl UbisenseAdapter {
    /// Creates an adapter for the installation named `sensor_id`, covering
    /// the space `glob_prefix`, with badge-carry probability
    /// `carry_probability` (estimated from user studies, per the paper).
    #[must_use]
    pub fn with_parts(
        id: AdapterId,
        sensor_id: SensorId,
        glob_prefix: Glob,
        carry_probability: f64,
    ) -> Self {
        UbisenseAdapter {
            id,
            sensor_id,
            glob_prefix,
            spec: SensorSpec::ubisense(carry_probability),
            ttl: SimDuration::from_secs(UBISENSE_TTL_SECS),
            tdf: None,
            tracker: MovementTracker::new(UBISENSE_RADIUS_FT),
        }
    }

    /// Overrides the default time-to-live.
    pub fn set_time_to_live(&mut self, ttl: SimDuration) {
        self.ttl = ttl;
    }

    /// Overrides the default linear-to-TTL degradation — e.g. with an
    /// empirically fitted function from a user study (the paper's §11
    /// plan).
    pub fn set_tdf(&mut self, tdf: TemporalDegradation) {
        self.tdf = Some(tdf);
    }
}

impl Adapter for UbisenseAdapter {
    type Event = UbisenseSighting;

    fn adapter_id(&self) -> &AdapterId {
        &self.id
    }

    fn sensor_type(&self) -> SensorType {
        SensorType::Ubisense
    }

    fn translate(&mut self, event: UbisenseSighting, now: SimTime) -> AdapterOutput {
        let moving = self.tracker.observe(&event.tag, event.position);
        let region = Circle::new(event.position, UBISENSE_RADIUS_FT).mbr();
        AdapterOutput::single(SensorReading {
            sensor_id: self.sensor_id.clone(),
            spec: self.spec,
            object: event.tag,
            glob_prefix: self.glob_prefix.clone(),
            region,
            detected_at: now,
            time_to_live: self.ttl,
            tdf: self
                .tdf
                .clone()
                .unwrap_or(TemporalDegradation::Linear { lifetime: self.ttl }),
            moving,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> UbisenseAdapter {
        UbisenseAdapter::with_parts(
            "ubi-adapter-1".into(),
            "Ubi-18".into(),
            "SC/Floor3/3102".parse().unwrap(),
            0.9,
        )
    }

    #[test]
    fn reading_region_is_six_inch_square() {
        let mut a = adapter();
        let out = a.translate(
            UbisenseSighting {
                tag: "ralph-bat".into(),
                position: Point::new(41.0, 3.0),
            },
            SimTime::from_secs(1.0),
        );
        assert_eq!(out.readings.len(), 1);
        let r = &out.readings[0];
        assert_eq!(r.region.width(), 1.0); // 2 * 0.5 ft
        assert_eq!(r.region.center(), Point::new(41.0, 3.0));
        assert_eq!(r.spec.detection_probability(), 0.95);
        assert!(!r.moving); // first sighting
        assert!(out.revocations.is_empty());
    }

    #[test]
    fn movement_detected_across_sightings() {
        let mut a = adapter();
        let tag: MobileObjectId = "ralph-bat".into();
        let _ = a.translate(
            UbisenseSighting {
                tag: tag.clone(),
                position: Point::new(0.0, 0.0),
            },
            SimTime::from_secs(0.0),
        );
        let out = a.translate(
            UbisenseSighting {
                tag,
                position: Point::new(10.0, 0.0),
            },
            SimTime::from_secs(1.0),
        );
        assert!(out.readings[0].moving);
    }

    #[test]
    fn reading_expires_after_ttl() {
        let mut a = adapter();
        let out = a.translate(
            UbisenseSighting {
                tag: "t".into(),
                position: Point::ORIGIN,
            },
            SimTime::from_secs(0.0),
        );
        let r = &out.readings[0];
        assert!(!r.is_expired(SimTime::from_secs(2.9)));
        assert!(r.is_expired(SimTime::from_secs(3.1)));
    }

    #[test]
    fn metadata() {
        let a = adapter();
        assert_eq!(a.sensor_type(), SensorType::Ubisense);
        assert_eq!(a.adapter_id().as_str(), "ubi-adapter-1");
    }
}
