use std::fmt;

/// Errors produced by sensor specifications and adapters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SensorError {
    /// A probability parameter was outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which parameter (`"x"`, `"y"` or `"z"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A geometric parameter (radius, area) was invalid.
    InvalidGeometry {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::ProbabilityOutOfRange { parameter, value } => {
                write!(f, "sensor parameter {parameter}={value} outside [0, 1]")
            }
            SensorError::InvalidGeometry { reason } => {
                write!(f, "invalid sensor geometry: {reason}")
            }
        }
    }
}

impl std::error::Error for SensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SensorError::ProbabilityOutOfRange {
            parameter: "y",
            value: 1.2,
        };
        assert!(e.to_string().contains("y=1.2"));
    }
}
