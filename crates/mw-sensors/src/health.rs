//! Sensor supervision: per-sensor health states, sanity gates and
//! quarantine with half-open probing.
//!
//! The paper models *calibrated* sensor error (§4.1.1) and decays
//! confidence with age (§3.2), but assumes every registered adapter is
//! live and sane. This module supervises the sensing layer itself:
//!
//! - a per-sensor state machine `Healthy → Degraded → Quarantined →
//!   (half-open probe) → Healthy`,
//! - **staleness watchdogs** against each technology's declared update
//!   period ([`crate::SensorType::declared_update_period`]),
//! - **sanity gates** on every reading: calibration probabilities outside
//!   `[0, 1]`, regions outside the registered building frame, implied
//!   velocity above a per-object bound, and future timestamps (clamped
//!   and counted, never silently trusted),
//! - **chronic conflict-loss feedback** from the fusion layer's conflict
//!   resolution (§4.1.2): a sensor whose readings keep losing conflicts
//!   is probably lying.
//!
//! Quarantine re-admission uses capped-exponential half-open probing with
//! seeded jitter — the same backoff discipline as the `mw-bus` reconnect
//! path, but on the simulation clock: once a sensor's quarantine window
//! elapses, its next reading is admitted as a *probe*; a clean probe
//! recovers the sensor, a dirty one re-arms quarantine with a doubled
//! (capped) window.
//!
//! All activity is published under `health.*` when a
//! [`MetricsRegistry`] is bound, including a per-sensor state gauge
//! `health.sensor.<id>.state` (0 = healthy, 1 = degraded,
//! 2 = quarantined).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mw_geometry::{Point, Rect};
use mw_model::{SimDuration, SimTime};
use mw_obs::MetricsRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{MobileObjectId, SensorId, SensorReading};

/// Default jitter seed for quarantine backoff (deterministic unless the
/// deployment overrides it).
pub const DEFAULT_HEALTH_JITTER_SEED: u64 = 0x6d77_6865_616c_7468; // "mwhealth"

/// A sensor's supervision state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Behaving normally; readings flow into fusion.
    Healthy,
    /// Accumulating violations or silence; readings still flow, but the
    /// sensor is one step from quarantine.
    Degraded,
    /// Excluded from fusion; readings are dropped until the half-open
    /// probe window opens.
    Quarantined,
}

impl HealthState {
    /// Numeric encoding used by the `health.sensor.<id>.state` gauge.
    #[must_use]
    pub fn as_gauge(self) -> f64 {
        match self {
            HealthState::Healthy => 0.0,
            HealthState::Degraded => 1.0,
            HealthState::Quarantined => 2.0,
        }
    }
}

/// Why a reading (or a silence) counted against a sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Violation {
    /// A calibration probability outside `[0, 1]` (possible via
    /// deserialized wire data, which bypasses `SensorSpec::new`).
    ConfidenceOutOfRange,
    /// The reported region lies outside the registered building frame.
    OutOfFrame,
    /// The implied velocity between consecutive sightings of one object
    /// exceeds the per-object bound.
    Teleport,
    /// The reading was stamped ahead of the service clock (clamped, then
    /// counted — see [`SensorReading::clamp_future_timestamp`]).
    FutureTimestamp,
    /// The staleness watchdog fired: no reading within the allowed
    /// multiple of the sensor's declared update period.
    Stale,
    /// Chronic conflict losses reported by the fusion layer.
    ConflictLoss,
}

impl Violation {
    fn counter_name(self) -> &'static str {
        match self {
            Violation::ConfidenceOutOfRange => "health.violations.confidence",
            Violation::OutOfFrame => "health.violations.out_of_frame",
            Violation::Teleport => "health.violations.teleport",
            Violation::FutureTimestamp => "health.violations.future_timestamp",
            Violation::Stale => "health.violations.stale",
            Violation::ConflictLoss => "health.violations.conflict_loss",
        }
    }
}

/// The supervisor's verdict on one reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GateDecision {
    /// Sane; ingest it.
    Accept,
    /// Ingest it, but its future timestamp was clamped to `now` (the
    /// violation is counted against the sensor).
    AcceptClamped(Violation),
    /// Drop it; the violation that killed it.
    Reject(Violation),
    /// Drop it; the sensor is in closed quarantine (no probe due yet).
    Quarantined,
}

impl GateDecision {
    /// `true` when the reading should be ingested.
    #[must_use]
    pub fn is_admitted(self) -> bool {
        matches!(self, GateDecision::Accept | GateDecision::AcceptClamped(_))
    }
}

/// One recorded state transition (see
/// [`SensorSupervisor::enable_transition_log`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionEvent {
    /// The sensor that moved.
    pub sensor: SensorId,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// When it moved.
    pub at: SimTime,
}

/// Supervision policy. [`HealthConfig::new`] picks conservative defaults;
/// every knob is public for deployments (and tests) to tune.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// The registered building frame; readings must fall inside it.
    pub frame: Rect,
    /// Default implied-velocity bound, ft/s (a sprinting human is
    /// ~30 ft/s; indoor technologies should never exceed this between
    /// consecutive sightings).
    pub max_speed_ft_per_s: f64,
    /// Per-object overrides of the velocity bound (vehicles, robots).
    pub speed_bounds: HashMap<MobileObjectId, f64>,
    /// The staleness watchdog fires when a periodic sensor is silent for
    /// more than `staleness_factor ×` its declared update period.
    pub staleness_factor: f64,
    /// Violation strikes while `Healthy` before demotion to `Degraded`.
    pub degrade_after: u32,
    /// Violation strikes while `Degraded` before quarantine.
    pub quarantine_after: u32,
    /// Consecutive clean readings while `Degraded` that restore
    /// `Healthy`.
    pub recover_after: u32,
    /// Consecutive fusion conflict losses that count as one strike.
    pub conflict_loss_threshold: u32,
    /// First quarantine window.
    pub initial_quarantine: SimDuration,
    /// Cap for the doubling quarantine window.
    pub max_quarantine: SimDuration,
    /// Seed for the backoff jitter RNG (deterministic by default).
    pub jitter_seed: u64,
}

impl HealthConfig {
    /// Defaults for a deployment whose building frame is `frame`.
    #[must_use]
    pub fn new(frame: Rect) -> Self {
        HealthConfig {
            frame,
            max_speed_ft_per_s: 50.0,
            speed_bounds: HashMap::new(),
            staleness_factor: 3.0,
            degrade_after: 2,
            quarantine_after: 3,
            recover_after: 3,
            conflict_loss_threshold: 8,
            initial_quarantine: SimDuration::from_secs(5.0),
            max_quarantine: SimDuration::from_secs(80.0),
            jitter_seed: DEFAULT_HEALTH_JITTER_SEED,
        }
    }

    fn speed_bound(&self, object: &MobileObjectId) -> f64 {
        self.speed_bounds
            .get(object)
            .copied()
            .unwrap_or(self.max_speed_ft_per_s)
    }
}

/// Handles on every `health.*` metric, resolved once at bind time (the
/// per-sensor state gauges are resolved lazily as sensors register).
#[derive(Debug, Clone)]
struct HealthMetrics {
    registry: MetricsRegistry,
    violations: HashMap<&'static str, mw_obs::Counter>,
    conflict_losses: mw_obs::Counter,
    quarantines: mw_obs::Counter,
    recoveries: mw_obs::Counter,
    probes: mw_obs::Counter,
    readings_accepted: mw_obs::Counter,
    readings_clamped: mw_obs::Counter,
    readings_rejected: mw_obs::Counter,
    quarantine_dropped: mw_obs::Counter,
}

impl HealthMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let violations = [
            Violation::ConfidenceOutOfRange,
            Violation::OutOfFrame,
            Violation::Teleport,
            Violation::FutureTimestamp,
            Violation::Stale,
            Violation::ConflictLoss,
        ]
        .into_iter()
        .map(|v| (v.counter_name(), registry.counter(v.counter_name())))
        .collect();
        HealthMetrics {
            registry: registry.clone(),
            violations,
            conflict_losses: registry.counter("health.conflict_losses"),
            quarantines: registry.counter("health.quarantines"),
            recoveries: registry.counter("health.recoveries"),
            probes: registry.counter("health.probes"),
            readings_accepted: registry.counter("health.readings_accepted"),
            readings_clamped: registry.counter("health.readings_clamped"),
            readings_rejected: registry.counter("health.readings_rejected"),
            quarantine_dropped: registry.counter("health.quarantine_dropped"),
        }
    }

    fn count_violation(&self, violation: Violation) {
        if let Some(c) = self.violations.get(violation.counter_name()) {
            c.inc();
        }
    }
}

/// Per-sensor supervision record.
#[derive(Debug)]
struct SensorRecord {
    state: HealthState,
    update_period: Option<SimDuration>,
    /// Next instant the staleness watchdog considers this sensor late
    /// (`None` for event-driven sensors and while quarantined).
    stale_deadline: Option<SimTime>,
    /// Violation strikes accumulated in the current state.
    strikes: u32,
    /// Consecutive clean readings (drives Degraded → Healthy recovery).
    clean_streak: u32,
    /// Consecutive fusion conflict losses.
    conflict_losses: u32,
    /// Current quarantine window (doubles on failed probes, capped).
    backoff: SimDuration,
    /// When quarantined: the instant the half-open probe window opens.
    probe_at: SimTime,
    /// Last sighting per object, for the implied-velocity gate.
    last_positions: HashMap<MobileObjectId, (SimTime, Point)>,
    gauge: Option<mw_obs::Gauge>,
}

impl SensorRecord {
    fn new(update_period: Option<SimDuration>, now: SimTime, config: &HealthConfig) -> Self {
        SensorRecord {
            state: HealthState::Healthy,
            update_period,
            stale_deadline: update_period.map(|p| now + p * config.staleness_factor),
            strikes: 0,
            clean_streak: 0,
            conflict_losses: 0,
            backoff: config.initial_quarantine,
            probe_at: SimTime::ZERO,
            last_positions: HashMap::new(),
            gauge: None,
        }
    }
}

/// A supervisor shared between layers (adapter instrumentation at the
/// edge, the Location Service at the core).
pub type SharedSupervisor = Arc<Mutex<SensorSupervisor>>;

/// The sensor supervisor: tracks every sensor's health, gates readings,
/// runs the staleness watchdog and manages quarantine.
///
/// # Example
///
/// ```
/// use mw_geometry::{Point, Rect};
/// use mw_model::SimTime;
/// use mw_sensors::health::{GateDecision, HealthConfig, SensorSupervisor};
///
/// let frame = Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 100.0));
/// let mut supervisor = SensorSupervisor::new(HealthConfig::new(frame));
/// // Readings are admitted (and possibly clamped) via `admit`; the
/// // watchdog runs via `tick`.
/// supervisor.tick(SimTime::from_secs(1.0));
/// assert_eq!(supervisor.quarantined_count(), 0);
/// ```
#[derive(Debug)]
pub struct SensorSupervisor {
    config: HealthConfig,
    sensors: HashMap<SensorId, SensorRecord>,
    rng: StdRng,
    metrics: Option<HealthMetrics>,
    log: Option<Vec<TransitionEvent>>,
}

impl SensorSupervisor {
    /// Creates a supervisor with the given policy.
    #[must_use]
    pub fn new(config: HealthConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.jitter_seed);
        SensorSupervisor {
            config,
            sensors: HashMap::new(),
            rng,
            metrics: None,
            log: None,
        }
    }

    /// Publishes `health.*` metrics (violation counters, quarantine and
    /// recovery counts, per-sensor state gauges) to `registry`.
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.bind_metrics(registry);
        self
    }

    /// In-place variant of [`SensorSupervisor::with_metrics`].
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry) {
        let metrics = HealthMetrics::new(registry);
        for (id, record) in &mut self.sensors {
            let gauge = metrics.registry.gauge(&format!("health.sensor.{id}.state"));
            gauge.set(record.state.as_gauge());
            record.gauge = Some(gauge);
        }
        self.metrics = Some(metrics);
    }

    /// Wraps the supervisor for sharing across layers.
    #[must_use]
    pub fn shared(self) -> SharedSupervisor {
        Arc::new(Mutex::new(self))
    }

    /// Starts recording every state transition (unbounded; intended for
    /// tests verifying the state machine).
    pub fn enable_transition_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// The recorded transitions, oldest first (empty unless
    /// [`enable_transition_log`](SensorSupervisor::enable_transition_log)
    /// was called).
    #[must_use]
    pub fn transition_log(&self) -> &[TransitionEvent] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// The supervision policy.
    #[must_use]
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Registers a sensor ahead of its first reading so the staleness
    /// watchdog covers it from `now` (sensors also self-register on
    /// their first admitted reading).
    pub fn register(
        &mut self,
        sensor: impl Into<SensorId>,
        update_period: Option<SimDuration>,
        now: SimTime,
    ) {
        let sensor = sensor.into();
        if self.sensors.contains_key(&sensor) {
            return;
        }
        let mut record = SensorRecord::new(update_period, now, &self.config);
        if let Some(metrics) = &self.metrics {
            let gauge = metrics
                .registry
                .gauge(&format!("health.sensor.{sensor}.state"));
            gauge.set(record.state.as_gauge());
            record.gauge = Some(gauge);
        }
        self.sensors.insert(sensor, record);
    }

    /// Runs the sanity gates on one reading at `now`, updating the
    /// sensor's health. Future timestamps are clamped in place (hence
    /// `&mut`). Returns whether the reading should be ingested.
    pub fn admit(&mut self, reading: &mut SensorReading, now: SimTime) -> GateDecision {
        self.register(reading.sensor_id.clone(), reading.spec.update_period(), now);
        let sensor = reading.sensor_id.clone();
        let record = self.sensors.get_mut(&sensor).expect("just registered");

        // Closed quarantine: drop without counting a violation.
        if record.state == HealthState::Quarantined && now < record.probe_at {
            if let Some(m) = &self.metrics {
                m.quarantine_dropped.inc();
            }
            return GateDecision::Quarantined;
        }
        let probing = record.state == HealthState::Quarantined;
        if probing {
            if let Some(m) = &self.metrics {
                m.probes.inc();
            }
        }

        // Sanity gates. The future-timestamp gate clamps rather than
        // rejects, so run it first and remember the clamp.
        let clamped = reading.clamp_future_timestamp(now);
        let violation = Self::gate(&self.config, record, reading);

        // Any admitted-or-rejected contact counts as a sighting for the
        // staleness watchdog.
        record.stale_deadline = record
            .update_period
            .map(|p| now + p * self.config.staleness_factor);

        if probing {
            // Half-open probe: only a pristine reading recovers the
            // sensor; anything dirty re-arms quarantine with a doubled,
            // capped, jittered window.
            if violation.is_none() && !clamped {
                set_state(
                    record,
                    &sensor,
                    HealthState::Healthy,
                    now,
                    self.metrics.as_ref(),
                    &mut self.log,
                );
                record.backoff = self.config.initial_quarantine;
                if let Some(m) = &self.metrics {
                    m.recoveries.inc();
                    m.readings_accepted.inc();
                }
                return GateDecision::Accept;
            }
            let failed = violation.unwrap_or(Violation::FutureTimestamp);
            if let Some(m) = &self.metrics {
                m.count_violation(failed);
                m.readings_rejected.inc();
            }
            requarantine(record, now, &self.config, &mut self.rng);
            return GateDecision::Reject(failed);
        }

        if clamped {
            strike(
                record,
                &sensor,
                Violation::FutureTimestamp,
                now,
                &self.config,
                &mut self.rng,
                self.metrics.as_ref(),
                &mut self.log,
            );
        }
        match violation {
            Some(v) => {
                strike(
                    record,
                    &sensor,
                    v,
                    now,
                    &self.config,
                    &mut self.rng,
                    self.metrics.as_ref(),
                    &mut self.log,
                );
                if let Some(m) = &self.metrics {
                    m.readings_rejected.inc();
                }
                GateDecision::Reject(v)
            }
            None if clamped => {
                if let Some(m) = &self.metrics {
                    m.readings_clamped.inc();
                }
                GateDecision::AcceptClamped(Violation::FutureTimestamp)
            }
            None => {
                clean_reading(
                    record,
                    &sensor,
                    now,
                    &self.config,
                    self.metrics.as_ref(),
                    &mut self.log,
                );
                if let Some(m) = &self.metrics {
                    m.readings_accepted.inc();
                }
                GateDecision::Accept
            }
        }
    }

    /// The value-level gates; returns the first violation found. The
    /// velocity anchor is always advanced so an isolated jump costs one
    /// strike, not a permanent ban.
    fn gate(
        config: &HealthConfig,
        record: &mut SensorRecord,
        reading: &SensorReading,
    ) -> Option<Violation> {
        let mut violation = None;
        let in_unit = |p: f64| p.is_finite() && (0.0..=1.0).contains(&p);
        let z = match reading.spec.misident_model() {
            crate::MisidentModel::Fixed(z)
            | crate::MisidentModel::AreaProportional { factor: z } => z,
        };
        if !in_unit(reading.spec.carry_probability())
            || !in_unit(reading.spec.detection_probability())
            || !in_unit(z)
        {
            return Some(Violation::ConfidenceOutOfRange);
        }
        if !config.frame.contains_rect(&reading.region) {
            // Known-garbage position: don't let it become the velocity
            // anchor, or the next sane reading looks like a teleport.
            return Some(Violation::OutOfFrame);
        }
        // Implied velocity between consecutive sightings of the same
        // object by the same sensor. The anchor always advances, so an
        // isolated jump costs one strike, not a permanent ban.
        let center = reading.region.center();
        let at = reading.detected_at;
        if let Some(&(prev_at, prev)) = record.last_positions.get(&reading.object) {
            let dt = at.saturating_since(prev_at).as_secs().max(1e-3);
            let dist = ((center.x - prev.x).powi(2) + (center.y - prev.y).powi(2)).sqrt();
            if dist / dt > config.speed_bound(&reading.object) {
                violation = Some(Violation::Teleport);
            }
        }
        record
            .last_positions
            .insert(reading.object.clone(), (at, center));
        violation
    }

    /// Runs the staleness watchdog at `now`: every periodic sensor whose
    /// silence exceeds `staleness_factor ×` its declared period takes one
    /// strike per missed window, walking it down the
    /// Healthy → Degraded → Quarantined ladder.
    pub fn tick(&mut self, now: SimTime) {
        let ids: Vec<SensorId> = self.sensors.keys().cloned().collect();
        for sensor in ids {
            let record = self.sensors.get_mut(&sensor).expect("listed");
            loop {
                if record.state == HealthState::Quarantined {
                    break;
                }
                let Some(deadline) = record.stale_deadline else {
                    break;
                };
                if now <= deadline {
                    break;
                }
                let window =
                    record.update_period.expect("periodic sensor") * self.config.staleness_factor;
                record.stale_deadline = Some(deadline + window);
                strike(
                    record,
                    &sensor,
                    Violation::Stale,
                    now,
                    &self.config,
                    &mut self.rng,
                    self.metrics.as_ref(),
                    &mut self.log,
                );
            }
        }
    }

    /// Fusion feedback: `sensor`'s reading lost conflict resolution at
    /// `now`. Every [`HealthConfig::conflict_loss_threshold`] consecutive
    /// losses cost one strike.
    pub fn record_conflict_loss(&mut self, sensor: &SensorId, now: SimTime) {
        self.register(sensor.clone(), None, now);
        let record = self.sensors.get_mut(sensor).expect("just registered");
        record.conflict_losses += 1;
        if let Some(m) = &self.metrics {
            m.conflict_losses.inc();
        }
        if record.conflict_losses >= self.config.conflict_loss_threshold {
            record.conflict_losses = 0;
            strike(
                record,
                sensor,
                Violation::ConflictLoss,
                now,
                &self.config,
                &mut self.rng,
                self.metrics.as_ref(),
                &mut self.log,
            );
        }
    }

    /// Fusion feedback: `sensor`'s reading survived conflict resolution,
    /// resetting its consecutive-loss count.
    pub fn record_conflict_survivor(&mut self, sensor: &SensorId) {
        if let Some(record) = self.sensors.get_mut(sensor) {
            record.conflict_losses = 0;
        }
    }

    /// The sensor's current state (`None` for never-seen sensors).
    #[must_use]
    pub fn state(&self, sensor: &SensorId) -> Option<HealthState> {
        self.sensors.get(sensor).map(|r| r.state)
    }

    /// `true` when the sensor is quarantined (regardless of whether its
    /// probe window has opened).
    #[must_use]
    pub fn is_quarantined(&self, sensor: &SensorId) -> bool {
        self.state(sensor) == Some(HealthState::Quarantined)
    }

    /// `true` when the sensor is quarantined *and* its half-open probe
    /// window has not opened yet — edge layers can drop its output
    /// without consulting the gates.
    #[must_use]
    pub fn in_closed_quarantine(&self, sensor: &SensorId, now: SimTime) -> bool {
        self.sensors
            .get(sensor)
            .is_some_and(|r| r.state == HealthState::Quarantined && now < r.probe_at)
    }

    /// When the sensor's half-open probe window opens (`None` unless
    /// quarantined).
    #[must_use]
    pub fn next_probe_at(&self, sensor: &SensorId) -> Option<SimTime> {
        self.sensors
            .get(sensor)
            .filter(|r| r.state == HealthState::Quarantined)
            .map(|r| r.probe_at)
    }

    /// The set of quarantined sensors — the fusion engine's exclusion
    /// set.
    #[must_use]
    pub fn excluded(&self) -> std::collections::HashSet<SensorId> {
        self.sensors
            .iter()
            .filter(|(_, r)| r.state == HealthState::Quarantined)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Number of quarantined sensors.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.sensors
            .values()
            .filter(|r| r.state == HealthState::Quarantined)
            .count()
    }

    /// Every supervised sensor and its state, in arbitrary order.
    pub fn states(&self) -> impl Iterator<Item = (&SensorId, HealthState)> {
        self.sensors.iter().map(|(id, r)| (id, r.state))
    }
}

/// Changes a record's state, enforcing the machine's legal edges:
/// `Healthy → Degraded`, `Degraded → {Healthy, Quarantined}`,
/// `Quarantined → Healthy` (plus re-arming `Quarantined → Quarantined`).
fn set_state(
    record: &mut SensorRecord,
    sensor: &SensorId,
    to: HealthState,
    now: SimTime,
    metrics: Option<&HealthMetrics>,
    log: &mut Option<Vec<TransitionEvent>>,
) {
    use HealthState::{Degraded, Healthy, Quarantined};
    let from = record.state;
    debug_assert!(
        matches!(
            (from, to),
            (Healthy, Degraded)
                | (Degraded, Healthy | Quarantined)
                | (Quarantined, Healthy | Quarantined)
        ),
        "illegal health transition {from:?} -> {to:?}"
    );
    record.state = to;
    record.strikes = 0;
    record.clean_streak = 0;
    if let Some(gauge) = &record.gauge {
        gauge.set(to.as_gauge());
    } else if let Some(m) = metrics {
        let gauge = m.registry.gauge(&format!("health.sensor.{sensor}.state"));
        gauge.set(to.as_gauge());
        record.gauge = Some(gauge);
    }
    if let Some(log) = log {
        log.push(TransitionEvent {
            sensor: sensor.clone(),
            from,
            to,
            at: now,
        });
    }
}

/// Enters (or re-arms) quarantine: the probe window opens after the
/// current backoff scaled by seeded jitter in `[0.5, 1)`, and the backoff
/// doubles, capped — the `mw-bus` reconnect discipline on sim time.
fn arm_quarantine(
    record: &mut SensorRecord,
    now: SimTime,
    config: &HealthConfig,
    rng: &mut StdRng,
) {
    let jitter = rng.gen_range(0.5..1.0f64);
    record.probe_at = now + record.backoff * jitter;
    let doubled = record.backoff * 2.0;
    record.backoff = if doubled > config.max_quarantine {
        config.max_quarantine
    } else {
        doubled
    };
    // Silence is expected while quarantined: suspend the watchdog. And a
    // quarantined sensor's trajectory is untrustworthy: drop its velocity
    // anchors so a sane probe is judged on its own, keeping quarantine
    // always recoverable.
    record.stale_deadline = None;
    record.last_positions.clear();
}

fn requarantine(record: &mut SensorRecord, now: SimTime, config: &HealthConfig, rng: &mut StdRng) {
    arm_quarantine(record, now, config, rng);
}

/// Registers one violation strike and advances the ladder.
#[allow(clippy::too_many_arguments)]
fn strike(
    record: &mut SensorRecord,
    sensor: &SensorId,
    violation: Violation,
    now: SimTime,
    config: &HealthConfig,
    rng: &mut StdRng,
    metrics: Option<&HealthMetrics>,
    log: &mut Option<Vec<TransitionEvent>>,
) {
    if let Some(m) = metrics {
        m.count_violation(violation);
    }
    record.clean_streak = 0;
    record.strikes += 1;
    match record.state {
        HealthState::Healthy if record.strikes >= config.degrade_after => {
            set_state(record, sensor, HealthState::Degraded, now, metrics, log);
        }
        HealthState::Degraded if record.strikes >= config.quarantine_after => {
            set_state(record, sensor, HealthState::Quarantined, now, metrics, log);
            if let Some(m) = metrics {
                m.quarantines.inc();
            }
            arm_quarantine(record, now, config, rng);
        }
        _ => {}
    }
}

/// Registers one clean reading; enough of them recover a degraded sensor.
fn clean_reading(
    record: &mut SensorRecord,
    sensor: &SensorId,
    now: SimTime,
    config: &HealthConfig,
    metrics: Option<&HealthMetrics>,
    log: &mut Option<Vec<TransitionEvent>>,
) {
    record.clean_streak += 1;
    if record.state == HealthState::Degraded && record.clean_streak >= config.recover_after {
        set_state(record, sensor, HealthState::Healthy, now, metrics, log);
        if let Some(m) = metrics {
            m.recoveries.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SensorSpec;
    use mw_model::TemporalDegradation;

    fn frame() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 100.0))
    }

    fn reading(sensor: &str, center: Point, at: f64) -> SensorReading {
        SensorReading {
            sensor_id: sensor.into(),
            spec: SensorSpec::ubisense(1.0),
            object: "alice".into(),
            glob_prefix: "CS/Floor3".parse().unwrap(),
            region: Rect::from_center(center, 2.0, 2.0),
            detected_at: SimTime::from_secs(at),
            time_to_live: SimDuration::from_secs(30.0),
            tdf: TemporalDegradation::None,
            moving: false,
        }
    }

    fn supervisor() -> SensorSupervisor {
        SensorSupervisor::new(HealthConfig::new(frame()))
    }

    #[test]
    fn sane_readings_stay_healthy() {
        let mut sup = supervisor();
        for i in 0..10 {
            let t = f64::from(i);
            let mut r = reading("ubi-1", Point::new(100.0 + t, 50.0), t);
            assert_eq!(
                sup.admit(&mut r, SimTime::from_secs(t)),
                GateDecision::Accept
            );
        }
        assert_eq!(sup.state(&"ubi-1".into()), Some(HealthState::Healthy));
        assert_eq!(sup.quarantined_count(), 0);
    }

    #[test]
    fn teleporting_sensor_walks_the_ladder_and_recovers() {
        let registry = MetricsRegistry::new();
        let mut sup = supervisor().with_metrics(&registry);
        sup.enable_transition_log();
        let id: SensorId = "ubi-2".into();
        // Alternate between two far corners: every reading after the
        // first implies an impossible velocity.
        let corners = [Point::new(10.0, 10.0), Point::new(490.0, 90.0)];
        let mut faults = 0u64;
        let mut t = 0.0;
        while sup.state(&id) != Some(HealthState::Quarantined) {
            let mut r = reading("ubi-2", corners[t as usize % 2], t);
            let d = sup.admit(&mut r, SimTime::from_secs(t));
            if matches!(d, GateDecision::Reject(Violation::Teleport)) {
                faults += 1;
            }
            t += 1.0;
            assert!(t < 100.0, "never quarantined");
        }
        // degrade_after + quarantine_after teleport strikes.
        assert_eq!(faults, 5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("health.violations.teleport"), Some(5));
        assert_eq!(snap.counter("health.quarantines"), Some(1));
        assert_eq!(snap.gauge("health.sensor.ubi-2.state"), Some(2.0));

        // Closed quarantine drops without probing.
        let probe_at = sup.next_probe_at(&id).unwrap();
        let mut r = reading("ubi-2", Point::new(100.0, 50.0), t);
        assert_eq!(
            sup.admit(&mut r, SimTime::from_secs(t)),
            GateDecision::Quarantined
        );
        assert!(sup.in_closed_quarantine(&id, SimTime::from_secs(t)));

        // A sane probe after the window recovers the sensor.
        let probe_t = probe_at.as_secs() + 0.1;
        let mut r = reading("ubi-2", Point::new(100.0, 50.0), probe_t);
        assert_eq!(
            sup.admit(&mut r, SimTime::from_secs(probe_t)),
            GateDecision::Accept
        );
        assert_eq!(sup.state(&id), Some(HealthState::Healthy));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("health.recoveries"), Some(1));
        assert_eq!(snap.counter("health.probes"), Some(1));
        assert_eq!(snap.gauge("health.sensor.ubi-2.state"), Some(0.0));

        // The transition log shows only legal edges.
        let log = sup.transition_log();
        assert_eq!(
            log.iter().map(|e| (e.from, e.to)).collect::<Vec<_>>(),
            vec![
                (HealthState::Healthy, HealthState::Degraded),
                (HealthState::Degraded, HealthState::Quarantined),
                (HealthState::Quarantined, HealthState::Healthy),
            ]
        );
    }

    #[test]
    fn failed_probe_rearms_with_longer_backoff() {
        let mut sup = supervisor();
        let id: SensorId = "ubi-3".into();
        // Quarantine via out-of-frame readings.
        let mut t = 0.0;
        while sup.state(&id) != Some(HealthState::Quarantined) {
            let mut r = reading("ubi-3", Point::new(1000.0, 500.0), t);
            let d = sup.admit(&mut r, SimTime::from_secs(t));
            assert!(matches!(d, GateDecision::Reject(Violation::OutOfFrame)));
            t += 1.0;
        }
        let first_window = sup.next_probe_at(&id).unwrap().as_secs() - (t - 1.0);
        // A dirty probe re-arms quarantine with a longer window.
        let probe_t = sup.next_probe_at(&id).unwrap().as_secs() + 0.1;
        let mut r = reading("ubi-3", Point::new(1000.0, 500.0), probe_t);
        assert!(matches!(
            sup.admit(&mut r, SimTime::from_secs(probe_t)),
            GateDecision::Reject(Violation::OutOfFrame)
        ));
        assert_eq!(sup.state(&id), Some(HealthState::Quarantined));
        let second_window = sup.next_probe_at(&id).unwrap().as_secs() - probe_t;
        assert!(
            second_window > first_window,
            "window should grow: {first_window} -> {second_window}"
        );
    }

    #[test]
    fn backoff_caps_at_max_quarantine() {
        let mut config = HealthConfig::new(frame());
        config.initial_quarantine = SimDuration::from_secs(4.0);
        config.max_quarantine = SimDuration::from_secs(10.0);
        let mut sup = SensorSupervisor::new(config);
        let id: SensorId = "ubi-cap".into();
        let mut t = 0.0;
        // Quarantine, then fail many probes; the window never exceeds
        // the cap.
        for _ in 0..12 {
            let mut r = reading("ubi-cap", Point::new(-50.0, -50.0), t);
            let _ = sup.admit(&mut r, SimTime::from_secs(t));
            t = match sup.next_probe_at(&id) {
                Some(p) => p.as_secs() + 0.1,
                None => t + 1.0,
            };
        }
        let window = sup.next_probe_at(&id).unwrap().as_secs() - (t - 0.1);
        assert!(window <= 10.0 + 1e-9, "window {window} beyond cap");
    }

    #[test]
    fn future_timestamps_clamp_count_and_strike() {
        let registry = MetricsRegistry::new();
        let mut sup = supervisor().with_metrics(&registry);
        let now = SimTime::from_secs(10.0);
        let mut r = reading("ubi-4", Point::new(100.0, 50.0), 400.0);
        let d = sup.admit(&mut r, now);
        assert_eq!(d, GateDecision::AcceptClamped(Violation::FutureTimestamp));
        assert_eq!(r.detected_at, now, "timestamp clamped in place");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("health.violations.future_timestamp"), Some(1));
        assert_eq!(snap.counter("health.readings_clamped"), Some(1));
        // It still counted as a strike: a second future stamp degrades.
        let mut r = reading("ubi-4", Point::new(100.0, 50.0), 500.0);
        let _ = sup.admit(&mut r, SimTime::from_secs(11.0));
        assert_eq!(sup.state(&"ubi-4".into()), Some(HealthState::Degraded));
    }

    #[test]
    fn staleness_watchdog_quarantines_silent_sensors() {
        let registry = MetricsRegistry::new();
        let mut sup = supervisor().with_metrics(&registry);
        let mut r = reading("ubi-5", Point::new(100.0, 50.0), 0.0);
        assert!(sup.admit(&mut r, SimTime::ZERO).is_admitted());
        // Declared period 1 s, factor 3: windows end at t=3,6,9,…
        sup.tick(SimTime::from_secs(2.9));
        assert_eq!(sup.state(&"ubi-5".into()), Some(HealthState::Healthy));
        // Five missed windows in one sweep: 2 strikes degrade, 3 more
        // quarantine.
        sup.tick(SimTime::from_secs(16.0));
        assert_eq!(sup.state(&"ubi-5".into()), Some(HealthState::Quarantined));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("health.violations.stale"), Some(5));
        // Further ticks while quarantined add nothing.
        sup.tick(SimTime::from_secs(100.0));
        assert_eq!(
            registry.snapshot().counter("health.violations.stale"),
            Some(5)
        );
    }

    #[test]
    fn event_driven_sensors_are_never_stale() {
        let mut sup = supervisor();
        let mut r = reading("card-1", Point::new(100.0, 50.0), 0.0);
        r.spec = SensorSpec::card_reader();
        assert!(sup.admit(&mut r, SimTime::ZERO).is_admitted());
        sup.tick(SimTime::from_secs(1e6));
        assert_eq!(sup.state(&"card-1".into()), Some(HealthState::Healthy));
    }

    #[test]
    fn chronic_conflict_losses_strike() {
        let mut sup = supervisor();
        let id: SensorId = "rf-1".into();
        sup.register(id.clone(), None, SimTime::ZERO);
        let threshold = sup.config().conflict_loss_threshold;
        // One shy of the threshold, then a survival: counter resets.
        for _ in 0..threshold - 1 {
            sup.record_conflict_loss(&id, SimTime::ZERO);
        }
        sup.record_conflict_survivor(&id);
        assert_eq!(sup.state(&id), Some(HealthState::Healthy));
        // Two full runs of losses: two strikes, sensor degraded.
        for _ in 0..2 * threshold {
            sup.record_conflict_loss(&id, SimTime::from_secs(1.0));
        }
        assert_eq!(sup.state(&id), Some(HealthState::Degraded));
    }

    #[test]
    fn degraded_sensor_recovers_after_clean_streak() {
        let mut sup = supervisor();
        let id: SensorId = "ubi-6".into();
        // Two out-of-frame strikes: degraded.
        for i in 0..2 {
            let mut r = reading("ubi-6", Point::new(600.0, 50.0), f64::from(i));
            let _ = sup.admit(&mut r, SimTime::from_secs(f64::from(i)));
        }
        assert_eq!(sup.state(&id), Some(HealthState::Degraded));
        for i in 2..5 {
            let mut r = reading("ubi-6", Point::new(100.0, 50.0), f64::from(i));
            assert!(sup
                .admit(&mut r, SimTime::from_secs(f64::from(i)))
                .is_admitted());
        }
        assert_eq!(sup.state(&id), Some(HealthState::Healthy));
    }

    #[test]
    fn corrupt_calibration_is_rejected() {
        let mut sup = supervisor();
        let mut r = reading("ubi-7", Point::new(100.0, 50.0), 0.0);
        // Forge an out-of-range spec through serde (bypasses
        // SensorSpec::new validation), as wire data could.
        let json = serde_json::to_string(&r.spec).unwrap();
        let bad = json.replace("0.95", "17.5");
        r.spec = serde_json::from_str(&bad).unwrap();
        assert!(matches!(
            sup.admit(&mut r, SimTime::ZERO),
            GateDecision::Reject(Violation::ConfidenceOutOfRange)
        ));
    }

    #[test]
    fn excluded_set_tracks_quarantine() {
        let mut sup = supervisor();
        let mut t = 0.0;
        while sup.quarantined_count() == 0 {
            let mut r = reading("ubi-8", Point::new(600.0, 50.0), t);
            let _ = sup.admit(&mut r, SimTime::from_secs(t));
            t += 1.0;
        }
        let excluded = sup.excluded();
        assert!(excluded.contains(&"ubi-8".into()));
        assert!(sup.is_quarantined(&"ubi-8".into()));
        assert_eq!(
            sup.states()
                .filter(|(_, s)| *s == HealthState::Quarantined)
                .count(),
            1
        );
    }
}
