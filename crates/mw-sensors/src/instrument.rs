//! Adapter instrumentation: emit rates and reading staleness.
//!
//! [`InstrumentedAdapter`] wraps any [`Adapter`] and publishes its emit
//! behaviour to a [`MetricsRegistry`] without the adapter knowing: how
//! many native events it translated, how many readings and revocations
//! came out, how stale each reading already was at translation time
//! (sim-time age of `detected_at` relative to `now`), and how long the
//! translation itself took. Aggregate metrics live under `sensors.*`;
//! a per-adapter emit counter lives under
//! `sensors.adapter.<id>.readings_emitted`.

use mw_model::SimTime;
use mw_obs::MetricsRegistry;

use crate::{Adapter, AdapterId, AdapterOutput, SensorType};

/// Wraps an [`Adapter`], recording emit metrics around every
/// [`Adapter::translate`] call. Implements [`Adapter`] itself, so it
/// drops into any pipeline slot the inner adapter fits.
#[derive(Debug, Clone)]
pub struct InstrumentedAdapter<A> {
    inner: A,
    events: mw_obs::Counter,
    readings: mw_obs::Counter,
    revocations: mw_obs::Counter,
    adapter_readings: mw_obs::Counter,
    staleness: mw_obs::Histogram,
    translate_latency: mw_obs::Histogram,
}

impl<A: Adapter> InstrumentedAdapter<A> {
    /// Wraps `inner`, publishing its metrics to `registry`.
    #[must_use]
    pub fn new(inner: A, registry: &MetricsRegistry) -> Self {
        let adapter_readings = registry.counter(&format!(
            "sensors.adapter.{}.readings_emitted",
            inner.adapter_id()
        ));
        InstrumentedAdapter {
            inner,
            events: registry.counter("sensors.events"),
            readings: registry.counter("sensors.readings_emitted"),
            revocations: registry.counter("sensors.revocations_emitted"),
            adapter_readings,
            staleness: registry.histogram("sensors.reading.staleness_us"),
            translate_latency: registry.histogram("sensors.translate.latency_us"),
        }
    }

    /// The wrapped adapter.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the inner adapter, discarding the metric handles.
    #[must_use]
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: Adapter> Adapter for InstrumentedAdapter<A> {
    type Event = A::Event;

    fn adapter_id(&self) -> &AdapterId {
        self.inner.adapter_id()
    }

    fn sensor_type(&self) -> SensorType {
        self.inner.sensor_type()
    }

    fn translate(&mut self, event: Self::Event, now: SimTime) -> AdapterOutput {
        let timer = self.translate_latency.start_timer();
        let output = self.inner.translate(event, now);
        timer.stop();
        self.events.inc();
        self.readings.add(output.readings.len() as u64);
        self.adapter_readings.add(output.readings.len() as u64);
        self.revocations.add(output.revocations.len() as u64);
        for reading in &output.readings {
            let age_s = now.saturating_since(reading.detected_at).as_secs();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            self.staleness.record((age_s * 1e6).max(0.0) as u64);
        }
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SensorReading, SensorSpec};
    use mw_geometry::{Point, Rect};
    use mw_model::{SimDuration, TemporalDegradation};

    /// Emits one reading per event, detected one second in the past.
    struct OneShot {
        id: AdapterId,
    }

    impl Adapter for OneShot {
        type Event = ();

        fn adapter_id(&self) -> &AdapterId {
            &self.id
        }

        fn sensor_type(&self) -> SensorType {
            SensorType::Ubisense
        }

        fn translate(&mut self, (): (), now: SimTime) -> AdapterOutput {
            AdapterOutput::single(SensorReading {
                sensor_id: "ubi-1".into(),
                spec: SensorSpec::ubisense(0.9),
                object: "alice".into(),
                glob_prefix: "SC/3".parse().unwrap(),
                region: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                detected_at: SimTime::from_secs(now.as_secs() - 1.0),
                time_to_live: SimDuration::from_secs(60.0),
                tdf: TemporalDegradation::None,
                moving: false,
            })
        }
    }

    #[test]
    fn wrapper_counts_emits_and_staleness() {
        let registry = MetricsRegistry::new();
        let mut adapter = InstrumentedAdapter::new(OneShot { id: "ubi-a".into() }, &registry);
        assert_eq!(adapter.adapter_id().as_str(), "ubi-a");
        assert_eq!(adapter.sensor_type(), SensorType::Ubisense);

        let out = adapter.translate((), SimTime::from_secs(5.0));
        assert_eq!(out.readings.len(), 1);
        let _ = adapter.translate((), SimTime::from_secs(6.0));

        let snap = registry.snapshot();
        assert_eq!(snap.counter("sensors.events"), Some(2));
        assert_eq!(snap.counter("sensors.readings_emitted"), Some(2));
        assert_eq!(snap.counter("sensors.revocations_emitted"), Some(0));
        assert_eq!(
            snap.counter("sensors.adapter.ubi-a.readings_emitted"),
            Some(2)
        );
        let staleness = snap.histogram("sensors.reading.staleness_us").unwrap();
        assert_eq!(staleness.count, 2);
        // Each reading was a sim-second old: exactly 1e6 µs.
        assert_eq!(staleness.max, 1_000_000);
        assert_eq!(
            snap.histogram("sensors.translate.latency_us")
                .unwrap()
                .count,
            2
        );
    }
}
