//! Adapter instrumentation: emit rates and reading staleness.
//!
//! [`InstrumentedAdapter`] wraps any [`Adapter`] and publishes its emit
//! behaviour to a [`MetricsRegistry`] without the adapter knowing: how
//! many native events it translated, how many readings and revocations
//! came out, how stale each reading already was at translation time
//! (sim-time age of `detected_at` relative to `now`), and how long the
//! translation itself took. Aggregate metrics live under `sensors.*`;
//! a per-adapter emit counter lives under
//! `sensors.adapter.<id>.readings_emitted`.
//!
//! When a [`SharedSupervisor`] is attached
//! ([`InstrumentedAdapter::with_supervisor`]), the wrapper additionally
//! suppresses readings from sensors sitting in *closed* quarantine at
//! the edge, before they ever reach the bus or the Location Service
//! (counted under `sensors.readings_suppressed`). The supervisor's
//! sanity gates still run at service admission — the edge check is a
//! read-only fast path, so nothing is double-counted.

use mw_model::SimTime;
use mw_obs::MetricsRegistry;

use crate::{Adapter, AdapterId, AdapterOutput, SensorType, SharedSupervisor};

/// Wraps an [`Adapter`], recording emit metrics around every
/// [`Adapter::translate`] call. Implements [`Adapter`] itself, so it
/// drops into any pipeline slot the inner adapter fits.
#[derive(Debug, Clone)]
pub struct InstrumentedAdapter<A> {
    inner: A,
    events: mw_obs::Counter,
    readings: mw_obs::Counter,
    revocations: mw_obs::Counter,
    adapter_readings: mw_obs::Counter,
    suppressed: mw_obs::Counter,
    staleness: mw_obs::Histogram,
    translate_latency: mw_obs::Histogram,
    supervisor: Option<SharedSupervisor>,
}

impl<A: Adapter> InstrumentedAdapter<A> {
    /// Wraps `inner`, publishing its metrics to `registry`.
    #[must_use]
    pub fn new(inner: A, registry: &MetricsRegistry) -> Self {
        let adapter_readings = registry.counter(&format!(
            "sensors.adapter.{}.readings_emitted",
            inner.adapter_id()
        ));
        InstrumentedAdapter {
            inner,
            events: registry.counter("sensors.events"),
            readings: registry.counter("sensors.readings_emitted"),
            revocations: registry.counter("sensors.revocations_emitted"),
            adapter_readings,
            suppressed: registry.counter("sensors.readings_suppressed"),
            staleness: registry.histogram("sensors.reading.staleness_us"),
            translate_latency: registry.histogram("sensors.translate.latency_us"),
            supervisor: None,
        }
    }

    /// Attaches a shared [`SensorSupervisor`](crate::SensorSupervisor):
    /// readings from sensors in closed quarantine are dropped at the
    /// edge instead of travelling to the service only to be rejected
    /// there.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: SharedSupervisor) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// The wrapped adapter.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the inner adapter, discarding the metric handles.
    #[must_use]
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: Adapter> Adapter for InstrumentedAdapter<A> {
    type Event = A::Event;

    fn adapter_id(&self) -> &AdapterId {
        self.inner.adapter_id()
    }

    fn sensor_type(&self) -> SensorType {
        self.inner.sensor_type()
    }

    fn translate(&mut self, event: Self::Event, now: SimTime) -> AdapterOutput {
        let timer = self.translate_latency.start_timer();
        let mut output = self.inner.translate(event, now);
        timer.stop();
        if let Some(supervisor) = &self.supervisor {
            let guard = supervisor.lock().expect("supervisor lock poisoned");
            let before = output.readings.len();
            output
                .readings
                .retain(|r| !guard.in_closed_quarantine(&r.sensor_id, now));
            self.suppressed.add((before - output.readings.len()) as u64);
        }
        self.events.inc();
        self.readings.add(output.readings.len() as u64);
        self.adapter_readings.add(output.readings.len() as u64);
        self.revocations.add(output.revocations.len() as u64);
        for reading in &output.readings {
            let age_s = now.saturating_since(reading.detected_at).as_secs();
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            self.staleness.record((age_s * 1e6).max(0.0) as u64);
        }
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SensorReading, SensorSpec};
    use mw_geometry::{Point, Rect};
    use mw_model::{SimDuration, TemporalDegradation};

    /// Emits one reading per event, detected one second in the past.
    struct OneShot {
        id: AdapterId,
    }

    impl Adapter for OneShot {
        type Event = ();

        fn adapter_id(&self) -> &AdapterId {
            &self.id
        }

        fn sensor_type(&self) -> SensorType {
            SensorType::Ubisense
        }

        fn translate(&mut self, (): (), now: SimTime) -> AdapterOutput {
            AdapterOutput::single(SensorReading {
                sensor_id: "ubi-1".into(),
                spec: SensorSpec::ubisense(0.9),
                object: "alice".into(),
                glob_prefix: "SC/3".parse().unwrap(),
                region: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                detected_at: SimTime::from_secs(now.as_secs() - 1.0),
                time_to_live: SimDuration::from_secs(60.0),
                tdf: TemporalDegradation::None,
                moving: false,
            })
        }
    }

    #[test]
    fn wrapper_counts_emits_and_staleness() {
        let registry = MetricsRegistry::new();
        let mut adapter = InstrumentedAdapter::new(OneShot { id: "ubi-a".into() }, &registry);
        assert_eq!(adapter.adapter_id().as_str(), "ubi-a");
        assert_eq!(adapter.sensor_type(), SensorType::Ubisense);

        let out = adapter.translate((), SimTime::from_secs(5.0));
        assert_eq!(out.readings.len(), 1);
        let _ = adapter.translate((), SimTime::from_secs(6.0));

        let snap = registry.snapshot();
        assert_eq!(snap.counter("sensors.events"), Some(2));
        assert_eq!(snap.counter("sensors.readings_emitted"), Some(2));
        assert_eq!(snap.counter("sensors.revocations_emitted"), Some(0));
        assert_eq!(
            snap.counter("sensors.adapter.ubi-a.readings_emitted"),
            Some(2)
        );
        let staleness = snap.histogram("sensors.reading.staleness_us").unwrap();
        assert_eq!(staleness.count, 2);
        // Each reading was a sim-second old: exactly 1e6 µs.
        assert_eq!(staleness.max, 1_000_000);
        assert_eq!(
            snap.histogram("sensors.translate.latency_us")
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn supervisor_suppresses_closed_quarantine_at_the_edge() {
        use crate::health::{HealthConfig, HealthState, SensorSupervisor};

        let registry = MetricsRegistry::new();
        let frame = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut supervisor = SensorSupervisor::new(HealthConfig::new(frame));
        // Drive "ubi-1" (the OneShot sensor) into quarantine with
        // out-of-frame readings.
        let mut t = 0.0;
        while supervisor.state(&"ubi-1".into()) != Some(HealthState::Quarantined) {
            let mut bad = SensorReading {
                sensor_id: "ubi-1".into(),
                spec: SensorSpec::ubisense(0.9),
                object: "alice".into(),
                glob_prefix: "SC/3".parse().unwrap(),
                region: Rect::from_center(Point::new(900.0, 900.0), 1.0, 1.0),
                detected_at: SimTime::from_secs(t),
                time_to_live: SimDuration::from_secs(60.0),
                tdf: TemporalDegradation::None,
                moving: false,
            };
            let _ = supervisor.admit(&mut bad, SimTime::from_secs(t));
            t += 1.0;
        }
        let shared = supervisor.shared();
        let mut adapter = InstrumentedAdapter::new(OneShot { id: "ubi-a".into() }, &registry)
            .with_supervisor(shared.clone());

        // In closed quarantine the reading is dropped at the edge.
        let now = SimTime::from_secs(t);
        assert!(shared
            .lock()
            .unwrap()
            .in_closed_quarantine(&"ubi-1".into(), now));
        let out = adapter.translate((), now);
        assert!(out.readings.is_empty());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sensors.readings_suppressed"), Some(1));
        assert_eq!(snap.counter("sensors.readings_emitted"), Some(0));

        // Once the probe window opens the edge lets readings through
        // again (the service-side gates decide the probe's fate).
        let probe_at = shared
            .lock()
            .unwrap()
            .next_probe_at(&"ubi-1".into())
            .unwrap();
        let after = SimTime::from_secs(probe_at.as_secs() + 0.1);
        let out = adapter.translate((), after);
        assert_eq!(out.readings.len(), 1);
        assert_eq!(
            registry.snapshot().counter("sensors.readings_suppressed"),
            Some(1)
        );
    }
}
