//! Sensor technologies and adapters for the MiddleWhere reproduction.
//!
//! Implements §4.1.1 (the sensor error model) and §6 (location sensors and
//! adapters) of the paper:
//!
//! - [`SensorSpec`] — the `x`/`y`/`z` probabilities of a sensing technology
//!   and the derived error probabilities `p` and `q` used by the Bayesian
//!   fusion algorithm,
//! - [`SensorReading`] — the common representation every adapter produces
//!   (the row format of the paper's Table 2),
//! - [`Adapter`] — the plug-and-play adapter trait: each location
//!   technology is wrapped by an adapter that translates native events into
//!   readings (the paper's CORBA "location adapter"),
//! - [`adapters`] — the four technologies the paper deployed: Ubisense
//!   UWB, RFID badges, biometric logins and GPS,
//! - [`health`] — sensor supervision: per-sensor health state machines,
//!   sanity gates, staleness watchdogs and quarantine with half-open
//!   probing, so fusion degrades gracefully when sensors misbehave.
//!
//! The original system talks to real hardware; here the native events are
//! produced by the `mw-sim` simulator, but the adapter layer is identical:
//! it never sees ground truth, only technology-shaped events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
pub mod adapters;
mod error;
pub mod health;
mod instrument;
mod reading;
mod spec;

pub use adapter::{Adapter, AdapterId, AdapterOutput, MovementTracker, Revocation};
pub use error::SensorError;
pub use health::{
    GateDecision, HealthConfig, HealthState, SensorSupervisor, SharedSupervisor, TransitionEvent,
    Violation,
};
pub use instrument::InstrumentedAdapter;
pub use reading::{MobileObjectId, SensorId, SensorReading};
pub use spec::{MisidentModel, SensorSpec, SensorType};
