use std::fmt;
use std::sync::Arc;

use mw_geometry::Rect;
use mw_model::{Confidence, Glob, SimDuration, SimTime, TemporalDegradation};
use serde::{Deserialize, Serialize};

use crate::SensorSpec;

/// Identifier of a physical sensor instance (e.g. `RF-12`, `Ubi-18` in the
/// paper's Table 2).
///
/// Backed by `Arc<str>` so a clone is a refcount bump: the same id is
/// mentioned by every reading a sensor emits, the shard maps and the
/// sensor meta table, and at city scale (DESIGN.md §14) per-clone string
/// allocations dominated the ingest profile. Equality, ordering and
/// hashing all delegate to the string content, so shard placement and
/// map behavior are unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct SensorId(Arc<str>);

impl SensorId {
    /// Creates a sensor id.
    #[must_use]
    pub fn new(id: impl Into<Arc<str>>) -> Self {
        SensorId(id.into())
    }

    /// The id string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared allocation behind the id.
    #[must_use]
    pub fn as_shared(&self) -> &Arc<str> {
        &self.0
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SensorId {
    fn from(s: &str) -> Self {
        SensorId::new(s)
    }
}

impl Deserialize for SensorId {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        String::deserialize(value).map(SensorId::new)
    }
}

/// Identifier of a tracked mobile object — a person or the device they
/// carry (e.g. `tom-pda`, `ralph-bat` in Table 2).
///
/// `Arc<str>`-backed like [`SensorId`]; the location service interns
/// every object id it admits, so all fixes, notifications and cache
/// entries for one object share a single allocation of its name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct MobileObjectId(Arc<str>);

impl MobileObjectId {
    /// Creates a mobile object id.
    #[must_use]
    pub fn new(id: impl Into<Arc<str>>) -> Self {
        MobileObjectId(id.into())
    }

    /// The id string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shared allocation behind the id.
    #[must_use]
    pub fn as_shared(&self) -> &Arc<str> {
        &self.0
    }
}

impl fmt::Display for MobileObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MobileObjectId {
    fn from(s: &str) -> Self {
        MobileObjectId::new(s)
    }
}

impl Deserialize for MobileObjectId {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        String::deserialize(value).map(MobileObjectId::new)
    }
}

/// A sensor reading in the common representation every adapter emits —
/// one row of the paper's sensor-information table (Table 2), plus the
/// probabilistic calibration the fusion algorithm needs.
///
/// The reported region is already converted to a minimum bounding
/// rectangle in the shared (building) coordinate system, per §4.1.2: "The
/// first step in our algorithm is to get all the sensor data in a common
/// format."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Which physical sensor produced the reading.
    pub sensor_id: SensorId,
    /// Calibration of the producing technology.
    pub spec: SensorSpec,
    /// The mobile object the reading is about.
    pub object: MobileObjectId,
    /// GLOB prefix naming the space the reading was taken in (Table 2's
    /// `Glob Prefix` column), e.g. `SC/Floor3/3105`.
    pub glob_prefix: Glob,
    /// Reported region as an MBR in building coordinates.
    pub region: Rect,
    /// When the reading was taken (Table 2's `Detection Time`).
    pub detected_at: SimTime,
    /// How long the reading stays valid.
    pub time_to_live: SimDuration,
    /// Decay of confidence with age.
    pub tdf: TemporalDegradation,
    /// Whether the reporting adapter has observed this object's region
    /// moving over recent readings. Used by the conflict-resolution rule
    /// of §4.1.2: "If either of the rectangles is moving with time, then
    /// take that reading and discard the other one."
    pub moving: bool,
}

impl SensorReading {
    /// Returns `true` once the reading is older than its time-to-live.
    #[must_use]
    pub fn is_expired(&self, now: SimTime) -> bool {
        now.saturating_since(self.detected_at) > self.time_to_live
    }

    /// Returns `true` when the reading claims a detection time later than
    /// `now` — a sensor with a skewed clock. Such a reading would appear
    /// maximally fresh forever (its age saturates at zero), inflating
    /// freshness and postponing expiry.
    #[must_use]
    pub fn is_from_future(&self, now: SimTime) -> bool {
        self.detected_at > now
    }

    /// Clamps a future detection time to `now`, returning `true` when a
    /// clamp happened. The supervision layer calls this at admission so
    /// the reading's age, temporal degradation and expiry all count from
    /// the moment the middleware actually saw it.
    pub fn clamp_future_timestamp(&mut self, now: SimTime) -> bool {
        if self.is_from_future(now) {
            self.detected_at = now;
            true
        } else {
            false
        }
    }

    /// The §4.1.2 hit probability `p_i` after temporal degradation at
    /// `now` ("all p_i's are net probabilities obtained after applying the
    /// temporal degradation function").
    #[must_use]
    pub fn hit_probability_at(&self, now: SimTime) -> f64 {
        if self.is_expired(now) {
            return 0.0;
        }
        let base = Confidence::saturating(self.spec.hit_probability());
        let elapsed = now.saturating_since(self.detected_at);
        self.tdf.apply(base, elapsed).value()
    }

    /// The false-positive probability `q_i` given the universe area
    /// `area_u` (the whole floor in the paper's setting).
    #[must_use]
    pub fn false_positive_probability(&self, area_u: f64) -> f64 {
        self.spec
            .false_positive_probability(self.region.area(), area_u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::Point;

    fn reading() -> SensorReading {
        SensorReading {
            sensor_id: "Ubi-18".into(),
            spec: SensorSpec::ubisense(0.9),
            object: "ralph-bat".into(),
            glob_prefix: "SC/Floor3/3102".parse().unwrap(),
            region: Rect::from_center(Point::new(41.0, 3.0), 1.0, 1.0),
            detected_at: SimTime::from_secs(100.0),
            time_to_live: SimDuration::from_secs(3.0),
            tdf: TemporalDegradation::Linear {
                lifetime: SimDuration::from_secs(3.0),
            },
            moving: false,
        }
    }

    #[test]
    fn expiry_follows_ttl() {
        let r = reading();
        assert!(!r.is_expired(SimTime::from_secs(102.9)));
        assert!(r.is_expired(SimTime::from_secs(103.1)));
    }

    #[test]
    fn hit_probability_degrades_and_zeroes() {
        let r = reading();
        let fresh = r.hit_probability_at(SimTime::from_secs(100.0));
        assert!((fresh - r.spec.hit_probability()).abs() < 1e-12);
        let stale = r.hit_probability_at(SimTime::from_secs(101.5));
        assert!(stale < fresh && stale > 0.0);
        assert_eq!(r.hit_probability_at(SimTime::from_secs(104.0)), 0.0);
    }

    #[test]
    fn false_positive_uses_region_area() {
        let r = reading();
        let q_small_universe = r.false_positive_probability(10.0);
        let q_large_universe = r.false_positive_probability(100_000.0);
        assert!(q_small_universe > q_large_universe);
    }

    #[test]
    fn future_timestamps_are_detected_and_clamped() {
        let mut r = reading(); // detected_at = 100 s
        let now = SimTime::from_secs(50.0);
        assert!(r.is_from_future(now));
        // Unclamped, the reading looks maximally fresh: full confidence
        // and no expiry until its (future) detection time passes.
        assert!((r.hit_probability_at(now) - r.spec.hit_probability()).abs() < 1e-12);
        assert!(!r.is_expired(now));
        // Clamping re-anchors its lifetime at `now`.
        assert!(r.clamp_future_timestamp(now));
        assert_eq!(r.detected_at, now);
        assert!(!r.clamp_future_timestamp(now), "idempotent");
        assert!(r.is_expired(SimTime::from_secs(53.1)));
    }

    #[test]
    fn id_conversions() {
        let s: SensorId = "RF-12".into();
        assert_eq!(s.as_str(), "RF-12");
        assert_eq!(s.to_string(), "RF-12");
        let m: MobileObjectId = "tom-pda".into();
        assert_eq!(m.as_str(), "tom-pda");
        let owned = MobileObjectId::new(String::from("tom-pda"));
        assert_eq!(owned, m);
    }

    #[test]
    fn id_clones_share_one_allocation() {
        let m: MobileObjectId = "tom-pda".into();
        let c = m.clone();
        assert!(Arc::ptr_eq(m.as_shared(), c.as_shared()));
        let s: SensorId = "RF-12".into();
        assert!(Arc::ptr_eq(s.as_shared(), s.clone().as_shared()));
    }
}
