use std::fmt;

use mw_model::SimDuration;
use serde::{Deserialize, Serialize};

use crate::SensorError;

/// The location-sensing technologies known to this deployment.
///
/// §6 of the paper integrates four technologies (Ubisense, RFID badges,
/// biometric logins, GPS); §1.1 also mentions card swipes and desktop
/// logins, which we model as variants of the same framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SensorType {
    /// Ubisense ultra-wideband tags: 6-inch resolution, 95% detection.
    Ubisense,
    /// Active RF identification badges: ~15 ft base-station range.
    RfidBadge,
    /// Fingerprint readers and other biometric logins.
    Biometric,
    /// Satellite positioning (outdoor).
    Gps,
    /// Card swipe readers at room entrances.
    CardReader,
    /// Login sessions on fixed desktops.
    DesktopLogin,
}

impl SensorType {
    /// The technology's declared nominal update period: how often a live
    /// sensor of this type is expected to produce a reading. `None` for
    /// event-driven technologies (card swipes, logins) that legitimately
    /// stay silent for arbitrary stretches.
    ///
    /// The periods match the default polling cadence of the simulated
    /// deployment (`mw-sim`): Ubisense tags report about once a second,
    /// RFID base stations sweep every five seconds, GPS receivers fix
    /// every two. The supervision layer's staleness watchdog
    /// (`mw_sensors::health`) flags a sensor whose silence exceeds a
    /// multiple of this period.
    #[must_use]
    pub fn declared_update_period(&self) -> Option<SimDuration> {
        match self {
            SensorType::Ubisense => Some(SimDuration::from_secs(1.0)),
            SensorType::RfidBadge => Some(SimDuration::from_secs(5.0)),
            SensorType::Gps => Some(SimDuration::from_secs(2.0)),
            SensorType::Biometric | SensorType::CardReader | SensorType::DesktopLogin => None,
        }
    }
}

impl fmt::Display for SensorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SensorType::Ubisense => "ubisense",
            SensorType::RfidBadge => "rfid-badge",
            SensorType::Biometric => "biometric",
            SensorType::Gps => "gps",
            SensorType::CardReader => "card-reader",
            SensorType::DesktopLogin => "desktop-login",
        };
        f.write_str(s)
    }
}

/// How a technology's misidentification probability `z` is modelled.
///
/// §4.1.1: for Ubisense, `z = 0.05 · area(A)/area(U)` — the probability
/// that a wrong detection lands inside the reported region A is
/// proportional to A's share of the coverage area U. Biometric devices use
/// a fixed (tiny) `z`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MisidentModel {
    /// `z` is a constant.
    Fixed(f64),
    /// `z = factor · area(A)/area(U)`.
    AreaProportional {
        /// The device's raw misdetection rate (e.g. `0.05` for Ubisense).
        factor: f64,
    },
}

/// The probabilistic specification of a sensing technology (§4.1.1).
///
/// Three primitive probabilities:
///
/// - `x` — probability the person is carrying the device (1 for
///   biometrics),
/// - `y` — `P(sensor says device is in A | device is in A)`,
/// - `z` — `P(sensor says device is in A | device is not in A)`.
///
/// Two derived error probabilities used by fusion:
///
/// - `p = P(sensor says person is NOT in A | person IS in A)
///      = (1-y)·x + (1-z)·(1-x)`,
/// - `q = P(sensor says person IS in A | person is NOT in A)
///      = z·x + (y+z)·(1-x) = z + y·(1-x)`.
///
/// Note the paper's `p` is a *miss* probability; the fusion equations use
/// the *hit* probability `P(sensor says in A | person in A)`, which the
/// paper also calls `p_i` in §4.1.2. [`SensorSpec::hit_probability`]
/// returns that value (`1 - p_miss`); [`SensorSpec::miss_probability`]
/// returns the §4.1.1 `p`.
///
/// # Example
///
/// ```
/// use mw_sensors::{MisidentModel, SensorSpec, SensorType};
///
/// // Ubisense: y = 0.95, z = 0.05·area(A)/area(U), x from user studies.
/// let spec = SensorSpec::new(
///     SensorType::Ubisense,
///     0.9,
///     0.95,
///     MisidentModel::AreaProportional { factor: 0.05 },
/// )?;
/// let area_a = 1.0;
/// let area_u = 50_000.0;
/// assert!(spec.hit_probability() > 0.8);
/// assert!(spec.false_positive_probability(area_a, area_u) < 0.2);
/// # Ok::<(), mw_sensors::SensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    sensor_type: SensorType,
    carry_probability: f64,
    detection_probability: f64,
    misident: MisidentModel,
}

fn check_probability(parameter: &'static str, value: f64) -> Result<(), SensorError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(SensorError::ProbabilityOutOfRange { parameter, value })
    }
}

impl SensorSpec {
    /// Creates a specification.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::ProbabilityOutOfRange`] when `x`, `y` or the
    /// misidentification factor are outside `[0, 1]`.
    pub fn new(
        sensor_type: SensorType,
        carry_probability: f64,
        detection_probability: f64,
        misident: MisidentModel,
    ) -> Result<Self, SensorError> {
        check_probability("x", carry_probability)?;
        check_probability("y", detection_probability)?;
        match misident {
            MisidentModel::Fixed(z) => check_probability("z", z)?,
            MisidentModel::AreaProportional { factor } => check_probability("z", factor)?,
        }
        Ok(SensorSpec {
            sensor_type,
            carry_probability,
            detection_probability,
            misident,
        })
    }

    /// The technology this spec describes.
    #[must_use]
    pub fn sensor_type(&self) -> SensorType {
        self.sensor_type
    }

    /// `x`: probability the person carries the device.
    #[must_use]
    pub fn carry_probability(&self) -> f64 {
        self.carry_probability
    }

    /// `y`: probability the device is detected when and where present.
    #[must_use]
    pub fn detection_probability(&self) -> f64 {
        self.detection_probability
    }

    /// The misidentification model for `z`.
    #[must_use]
    pub fn misident_model(&self) -> MisidentModel {
        self.misident
    }

    /// The declared update period of the underlying technology (see
    /// [`SensorType::declared_update_period`]); `None` for event-driven
    /// sensors.
    #[must_use]
    pub fn update_period(&self) -> Option<SimDuration> {
        self.sensor_type.declared_update_period()
    }

    /// `z` for a reported region of `area_a` within coverage `area_u`.
    ///
    /// For [`MisidentModel::Fixed`] the areas are ignored. For
    /// [`MisidentModel::AreaProportional`] the ratio is clamped to 1.
    #[must_use]
    pub fn misident_probability(&self, area_a: f64, area_u: f64) -> f64 {
        match self.misident {
            MisidentModel::Fixed(z) => z,
            MisidentModel::AreaProportional { factor } => {
                if area_u <= 0.0 {
                    factor
                } else {
                    factor * (area_a / area_u).clamp(0.0, 1.0)
                }
            }
        }
    }

    /// The §4.1.1 miss probability
    /// `p = (1-y)·x + (1-z)·(1-x)`
    /// evaluated with `z` from the misidentification model.
    #[must_use]
    pub fn miss_probability_for(&self, area_a: f64, area_u: f64) -> f64 {
        let x = self.carry_probability;
        let y = self.detection_probability;
        let z = self.misident_probability(area_a, area_u);
        (1.0 - y) * x + (1.0 - z) * (1.0 - x)
    }

    /// The §4.1.1 miss probability with `z` taken as the raw
    /// misidentification factor (area-independent form).
    #[must_use]
    pub fn miss_probability(&self) -> f64 {
        let z = match self.misident {
            MisidentModel::Fixed(z) => z,
            MisidentModel::AreaProportional { factor } => factor,
        };
        let x = self.carry_probability;
        let y = self.detection_probability;
        (1.0 - y) * x + (1.0 - z) * (1.0 - x)
    }

    /// The detection ("hit") probability used as `p_i` in the fusion
    /// equations of §4.1.2: the probability the sensor reports the person
    /// in A given the person is in A, `1 - miss`.
    #[must_use]
    pub fn hit_probability(&self) -> f64 {
        1.0 - self.miss_probability()
    }

    /// The §4.1.1 false-positive probability
    /// `q = z·x + (y+z)·(1-x) = z + y·(1-x)`
    /// for a reported region of `area_a` within coverage `area_u`.
    #[must_use]
    pub fn false_positive_probability(&self, area_a: f64, area_u: f64) -> f64 {
        let x = self.carry_probability;
        let y = self.detection_probability;
        let z = self.misident_probability(area_a, area_u);
        (z + y * (1.0 - x)).clamp(0.0, 1.0)
    }
}

impl SensorSpec {
    /// The paper's Ubisense calibration: detects a badge within 6 inches
    /// 95% of the time; `z = 0.05·area(A)/area(U)`; `x` from user studies
    /// (we default to 0.9).
    #[must_use]
    pub fn ubisense(carry_probability: f64) -> Self {
        SensorSpec::new(
            SensorType::Ubisense,
            carry_probability,
            0.95,
            MisidentModel::AreaProportional { factor: 0.05 },
        )
        .expect("constants are valid")
    }

    /// The paper's RFID badge calibration: `y = 0.75`,
    /// `z = 0.25·area(A)/area(U)`.
    #[must_use]
    pub fn rfid_badge(carry_probability: f64) -> Self {
        SensorSpec::new(
            SensorType::RfidBadge,
            carry_probability,
            0.75,
            MisidentModel::AreaProportional { factor: 0.25 },
        )
        .expect("constants are valid")
    }

    /// The paper's biometric short-term calibration: `y = 0.99`,
    /// `z = 0.01`, `x = 1` (a finger cannot be left at home).
    #[must_use]
    pub fn biometric_short_term() -> Self {
        SensorSpec::new(SensorType::Biometric, 1.0, 0.99, MisidentModel::Fixed(0.01))
            .expect("constants are valid")
    }

    /// The paper's biometric long-term calibration: region is the whole
    /// room; `z` is the probability the user left the room before `T`
    /// without logging out (paper estimate used here: 0.2).
    #[must_use]
    pub fn biometric_long_term(leave_probability: f64) -> Self {
        SensorSpec::new(
            SensorType::Biometric,
            1.0,
            0.99,
            MisidentModel::Fixed(leave_probability.clamp(0.0, 1.0)),
        )
        .expect("constants are valid")
    }

    /// The paper's GPS calibration: `y = 0.99`, `z = 0.01` (trusting the
    /// receiver's accuracy estimate), `x` = probability of carrying the
    /// GPS device.
    #[must_use]
    pub fn gps(carry_probability: f64) -> Self {
        SensorSpec::new(
            SensorType::Gps,
            carry_probability,
            0.99,
            MisidentModel::Fixed(0.01),
        )
        .expect("constants are valid")
    }

    /// A card reader: physical presence needed to swipe (`x = 1`), high
    /// detection, low misidentification (stolen cards).
    #[must_use]
    pub fn card_reader() -> Self {
        SensorSpec::new(
            SensorType::CardReader,
            1.0,
            0.98,
            MisidentModel::Fixed(0.02),
        )
        .expect("constants are valid")
    }

    /// A desktop login: presence at the machine very likely, shared
    /// accounts introduce misidentification.
    #[must_use]
    pub fn desktop_login() -> Self {
        SensorSpec::new(
            SensorType::DesktopLogin,
            1.0,
            0.95,
            MisidentModel::Fixed(0.05),
        )
        .expect("constants are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_matches_paper_formulas() {
        // Pick x=0.9, y=0.95, z=0.05.
        let spec =
            SensorSpec::new(SensorType::Ubisense, 0.9, 0.95, MisidentModel::Fixed(0.05)).unwrap();
        // p = (1-y)x + (1-z)(1-x) = 0.05*0.9 + 0.95*0.1 = 0.045 + 0.095 = 0.14.
        assert!((spec.miss_probability() - 0.14).abs() < 1e-12);
        assert!((spec.hit_probability() - 0.86).abs() < 1e-12);
        // q = z + y(1-x) = 0.05 + 0.95*0.1 = 0.145.
        assert!((spec.false_positive_probability(1.0, 1.0) - 0.145).abs() < 1e-12);
    }

    #[test]
    fn biometric_assumptions() {
        // x = 1 ⇒ p = 1-y, q = z.
        let spec = SensorSpec::biometric_short_term();
        assert!((spec.miss_probability() - 0.01).abs() < 1e-12);
        assert!((spec.false_positive_probability(1.0, 100.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn area_proportional_z() {
        let spec = SensorSpec::ubisense(0.9);
        // Small region in a big coverage: tiny z.
        let z_small = spec.misident_probability(1.0, 50_000.0);
        assert!((z_small - 0.05 / 50_000.0).abs() < 1e-12);
        // Region as big as coverage: z = factor.
        let z_full = spec.misident_probability(50_000.0, 50_000.0);
        assert!((z_full - 0.05).abs() < 1e-12);
        // Ratio clamps at 1 even for bogus inputs.
        let z_over = spec.misident_probability(100_000.0, 50_000.0);
        assert!((z_over - 0.05).abs() < 1e-12);
    }

    #[test]
    fn hit_beats_false_positive_for_sane_sensors() {
        for spec in [
            SensorSpec::ubisense(0.9),
            SensorSpec::rfid_badge(0.8),
            SensorSpec::biometric_short_term(),
            SensorSpec::gps(0.7),
            SensorSpec::card_reader(),
            SensorSpec::desktop_login(),
        ] {
            let p = spec.hit_probability();
            let q = spec.false_positive_probability(10.0, 50_000.0);
            assert!(
                p > q,
                "{:?}: hit {p} should exceed false positive {q}",
                spec.sensor_type()
            );
        }
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(SensorSpec::new(SensorType::Gps, 1.5, 0.9, MisidentModel::Fixed(0.0)).is_err());
        assert!(SensorSpec::new(SensorType::Gps, 0.5, -0.1, MisidentModel::Fixed(0.0)).is_err());
        assert!(
            SensorSpec::new(SensorType::Gps, 0.5, 0.9, MisidentModel::Fixed(f64::NAN)).is_err()
        );
    }

    #[test]
    fn zero_coverage_area_falls_back_to_factor() {
        let spec = SensorSpec::ubisense(1.0);
        assert_eq!(spec.misident_probability(5.0, 0.0), 0.05);
    }

    #[test]
    fn never_carrying_device() {
        // x = 0: p = 1-z (sensor almost always misses the person),
        // q = z + y (someone else's device may be misread as theirs).
        let spec =
            SensorSpec::new(SensorType::RfidBadge, 0.0, 0.75, MisidentModel::Fixed(0.1)).unwrap();
        assert!((spec.miss_probability() - 0.9).abs() < 1e-12);
        assert!((spec.false_positive_probability(1.0, 1.0) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(SensorType::Ubisense.to_string(), "ubisense");
        assert_eq!(SensorType::CardReader.to_string(), "card-reader");
    }

    #[test]
    fn accessors() {
        let spec = SensorSpec::ubisense(0.85);
        assert_eq!(spec.sensor_type(), SensorType::Ubisense);
        assert_eq!(spec.carry_probability(), 0.85);
        assert_eq!(spec.detection_probability(), 0.95);
        assert!(matches!(
            spec.misident_model(),
            MisidentModel::AreaProportional { .. }
        ));
    }

    #[test]
    fn declared_update_periods() {
        assert_eq!(
            SensorSpec::ubisense(0.9).update_period(),
            Some(SimDuration::from_secs(1.0))
        );
        assert_eq!(
            SensorSpec::rfid_badge(0.8).update_period(),
            Some(SimDuration::from_secs(5.0))
        );
        assert_eq!(
            SensorSpec::gps(0.7).update_period(),
            Some(SimDuration::from_secs(2.0))
        );
        // Event-driven technologies declare no period: silence is normal.
        assert_eq!(SensorSpec::biometric_short_term().update_period(), None);
        assert_eq!(SensorSpec::card_reader().update_period(), None);
        assert_eq!(SensorSpec::desktop_login().update_period(), None);
    }
}
