//! Property-based tests for the sensor supervision state machine.
//!
//! Two invariants the supervisor must hold under *any* interleaving of
//! readings, watchdog ticks, conflict losses and clock skew:
//!
//! 1. the health state machine only ever takes legal edges
//!    (`Healthy → Degraded`, `Degraded → Healthy`, `Degraded →
//!    Quarantined`, `Quarantined → Healthy`, `Quarantined →
//!    Quarantined` on a failed probe) — in particular a sensor is never
//!    quarantined straight from `Healthy`;
//! 2. quarantine is always recoverable: whatever garbage got a sensor
//!    quarantined, a clean reading through the half-open probe window
//!    restores it to `Healthy`.

use mw_geometry::{Point, Rect};
use mw_model::{SimDuration, SimTime, TemporalDegradation};
use mw_sensors::{
    GateDecision, HealthConfig, HealthState, SensorReading, SensorSpec, SensorSupervisor,
};
use proptest::prelude::*;

fn frame() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 100.0))
}

fn reading(center: Point, at: SimTime) -> SensorReading {
    SensorReading {
        sensor_id: "ubi-prop".into(),
        spec: SensorSpec::ubisense(1.0),
        object: "alice".into(),
        glob_prefix: "CS/Floor3".parse().unwrap(),
        region: Rect::from_center(center, 2.0, 2.0),
        detected_at: at,
        time_to_live: SimDuration::from_secs(30.0),
        tdf: TemporalDegradation::None,
        moving: false,
    }
}

/// One scripted interaction with the supervisor: `kind` selects the
/// operation, `(x, y)` a (possibly out-of-frame) position, `dt` how far
/// the clock advances first.
type Op = (u8, f64, f64, f64);

fn op() -> impl Strategy<Value = Op> {
    (0u8..4, -100.0..600.0f64, -60.0..160.0f64, 0.05..4.0f64)
}

/// Replays a script against a fresh supervisor with the transition log
/// enabled; returns the supervisor and the final clock.
fn replay(script: &[Op]) -> (SensorSupervisor, SimTime) {
    let mut supervisor = SensorSupervisor::new(HealthConfig::new(frame()));
    supervisor.enable_transition_log();
    let sensor = "ubi-prop".into();
    let mut now = SimTime::ZERO;
    for &(kind, x, y, dt) in script {
        now += SimDuration::from_secs(dt);
        match kind {
            // A reading at (x, y) — in-frame or not, near or teleported.
            0 => {
                let mut r = reading(Point::new(x, y), now);
                supervisor.admit(&mut r, now);
            }
            // A reading stamped in the future (a skewed sensor clock).
            1 => {
                let skew = SimDuration::from_secs(1.0 + x.abs());
                let mut r = reading(Point::new(250.0, 50.0), now + skew);
                supervisor.admit(&mut r, now);
            }
            // The staleness watchdog fires.
            2 => supervisor.tick(now),
            // Fusion reports this sensor lost a conflict.
            _ => supervisor.record_conflict_loss(&sensor, now),
        }
    }
    (supervisor, now)
}

/// The only edges the state machine may take.
fn legal(from: HealthState, to: HealthState) -> bool {
    use HealthState::{Degraded, Healthy, Quarantined};
    matches!(
        (from, to),
        (Healthy, Degraded)
            | (Degraded, Healthy)
            | (Degraded, Quarantined)
            | (Quarantined, Healthy)
            | (Quarantined, Quarantined)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn transitions_follow_the_state_machine(
        script in proptest::collection::vec(op(), 1..60),
    ) {
        let (supervisor, _) = replay(&script);
        let log = supervisor.transition_log();
        let mut last_at = SimTime::ZERO;
        for event in log {
            prop_assert!(
                legal(event.from, event.to),
                "illegal transition {:?} -> {:?}", event.from, event.to
            );
            prop_assert!(event.at >= last_at, "transition log went back in time");
            last_at = event.at;
        }
        // The log replays to the supervisor's current belief.
        if let Some(last) = log.last() {
            prop_assert_eq!(Some(last.to), supervisor.state(&"ubi-prop".into()));
        }
    }

    #[test]
    fn quarantine_is_always_recoverable(
        script in proptest::collection::vec(op(), 1..60),
    ) {
        let (mut supervisor, mut now) = replay(&script);
        let sensor = "ubi-prop".into();

        // Force quarantine if the script didn't get there on its own:
        // out-of-frame garbage while the gate is open, dirty probes while
        // it is half-open. Walking the full ladder (degrade -> quarantine
        // -> failed probes) is bounded by the strike thresholds plus the
        // capped backoff, so 64 attempts is far more than enough.
        let mut attempts = 0;
        while supervisor.state(&sensor) != Some(HealthState::Quarantined) {
            attempts += 1;
            prop_assert!(attempts < 64, "could not force quarantine");
            if let Some(probe_at) = supervisor.next_probe_at(&sensor) {
                if now < probe_at {
                    now = probe_at + SimDuration::from_secs(0.001);
                }
            } else {
                now += SimDuration::from_secs(0.5);
            }
            let mut bad = reading(Point::new(-50.0, -50.0), now);
            supervisor.admit(&mut bad, now);
        }

        // However deep the backoff, the next probe window is finite...
        let probe_at = supervisor.next_probe_at(&sensor);
        prop_assert!(probe_at.is_some(), "quarantined sensor has no probe scheduled");
        now = probe_at.unwrap() + SimDuration::from_secs(0.001);

        // ...and one clean probe through it restores Healthy.
        let mut probe = reading(Point::new(250.0, 50.0), now);
        let decision = supervisor.admit(&mut probe, now);
        prop_assert_eq!(decision, GateDecision::Accept);
        prop_assert_eq!(supervisor.state(&sensor), Some(HealthState::Healthy));
        prop_assert!(supervisor.excluded().is_empty());
    }

    #[test]
    fn excluded_set_is_exactly_the_quarantined_sensors(
        script in proptest::collection::vec(op(), 1..60),
    ) {
        let (supervisor, _) = replay(&script);
        let excluded = supervisor.excluded();
        for (sensor, state) in supervisor.states() {
            prop_assert_eq!(
                excluded.contains(sensor),
                state == HealthState::Quarantined,
                "excluded() disagrees with states() for {:?}", sensor
            );
        }
        prop_assert_eq!(excluded.len(), supervisor.quarantined_count());
    }
}
