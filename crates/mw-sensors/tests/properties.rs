//! Property-based tests for the sensor error model and adapters.

use mw_geometry::Point;
use mw_model::{Glob, SimTime};
use mw_sensors::adapters::{UbisenseAdapter, UbisenseSighting};
use mw_sensors::{Adapter, MisidentModel, SensorSpec, SensorType};
use proptest::prelude::*;

fn probability() -> impl Strategy<Value = f64> {
    0.0..=1.0f64
}

proptest! {
    #[test]
    fn derived_probabilities_stay_in_range(
        x in probability(),
        y in probability(),
        z in probability(),
        area_a in 0.0..1000.0f64,
        area_u in 1.0..100_000.0f64,
    ) {
        for misident in [MisidentModel::Fixed(z), MisidentModel::AreaProportional { factor: z }] {
            let spec = SensorSpec::new(SensorType::Ubisense, x, y, misident).unwrap();
            let p_miss = spec.miss_probability_for(area_a, area_u);
            let p_hit = spec.hit_probability();
            let q = spec.false_positive_probability(area_a, area_u);
            prop_assert!((0.0..=1.0).contains(&p_miss), "p_miss {p_miss}");
            prop_assert!((0.0..=1.0).contains(&p_hit), "p_hit {p_hit}");
            prop_assert!((0.0..=1.0).contains(&q), "q {q}");
        }
    }

    #[test]
    fn paper_formulas_hold_exactly(
        x in probability(),
        y in probability(),
        z in probability(),
    ) {
        let spec = SensorSpec::new(SensorType::Gps, x, y, MisidentModel::Fixed(z)).unwrap();
        // p = (1-y)x + (1-z)(1-x).
        let expected_p = (1.0 - y) * x + (1.0 - z) * (1.0 - x);
        prop_assert!((spec.miss_probability() - expected_p).abs() < 1e-12);
        // q = z + y(1-x), clamped.
        let expected_q = (z + y * (1.0 - x)).clamp(0.0, 1.0);
        prop_assert!((spec.false_positive_probability(1.0, 1.0) - expected_q).abs() < 1e-12);
    }

    #[test]
    fn area_proportional_z_is_monotone_in_area(
        factor in probability(),
        a1 in 0.0..1000.0f64,
        da in 0.0..1000.0f64,
        area_u in 1.0..100_000.0f64,
    ) {
        let spec = SensorSpec::new(
            SensorType::RfidBadge,
            0.9,
            0.75,
            MisidentModel::AreaProportional { factor },
        )
        .unwrap();
        let z_small = spec.misident_probability(a1, area_u);
        let z_large = spec.misident_probability(a1 + da, area_u);
        prop_assert!(z_large >= z_small - 1e-12);
        prop_assert!(z_large <= factor + 1e-12); // clamped at the factor
    }

    #[test]
    fn rejects_out_of_range_parameters(bad in 1.0001..10.0f64) {
        prop_assert!(SensorSpec::new(SensorType::Gps, bad, 0.5, MisidentModel::Fixed(0.0)).is_err());
        prop_assert!(SensorSpec::new(SensorType::Gps, 0.5, bad, MisidentModel::Fixed(0.0)).is_err());
        prop_assert!(SensorSpec::new(SensorType::Gps, 0.5, 0.5, MisidentModel::Fixed(bad)).is_err());
        prop_assert!(SensorSpec::new(SensorType::Gps, -bad, 0.5, MisidentModel::Fixed(0.0)).is_err());
    }

    #[test]
    fn ubisense_readings_center_on_sightings(
        x in 0.0..500.0f64,
        y in 0.0..100.0f64,
        t in 0.0..1000.0f64,
    ) {
        let glob: Glob = "CS/Floor3".parse().unwrap();
        let mut adapter =
            UbisenseAdapter::with_parts("a".into(), "Ubi".into(), glob, 1.0);
        let out = adapter.translate(
            UbisenseSighting {
                tag: "tag".into(),
                position: Point::new(x, y),
            },
            SimTime::from_secs(t),
        );
        prop_assert_eq!(out.readings.len(), 1);
        let r = &out.readings[0];
        // Centered up to floating-point rounding of (x ± 0.5).
        prop_assert!(r.region.center().distance(Point::new(x, y)) < 1e-9);
        prop_assert!((r.region.width() - 1.0).abs() < 1e-9); // 6-inch radius square
        prop_assert_eq!(r.detected_at, SimTime::from_secs(t));
        prop_assert!(!r.is_expired(SimTime::from_secs(t)));
    }

    #[test]
    fn hit_probability_never_increases_with_age(
        x in probability(),
        age1 in 0.0..100.0f64,
        dt in 0.0..100.0f64,
    ) {
        let glob: Glob = "CS/Floor3".parse().unwrap();
        let mut adapter = UbisenseAdapter::with_parts("a".into(), "Ubi".into(), glob, x);
        let out = adapter.translate(
            UbisenseSighting {
                tag: "tag".into(),
                position: Point::new(10.0, 10.0),
            },
            SimTime::ZERO,
        );
        let r = &out.readings[0];
        let early = r.hit_probability_at(SimTime::from_secs(age1));
        let late = r.hit_probability_at(SimTime::from_secs(age1 + dt));
        prop_assert!(late <= early + 1e-12);
        prop_assert!((0.0..=1.0).contains(&early));
    }
}
