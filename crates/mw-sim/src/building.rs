//! Building models: the paper's floor (Figure 8 / Table 1) and synthetic
//! floors for scaling experiments.

use mw_geometry::{Point, Polygon, Rect, Segment};
use mw_model::Glob;
use mw_spatial_db::{Geometry, ObjectType, SpatialDatabase, SpatialObject};

/// A floor plan: the populated spatial database plus handy handles to the
/// rooms.
#[derive(Debug, Clone)]
pub struct FloorPlan {
    /// The populated spatial database (rooms, corridors, doors).
    pub db: SpatialDatabase,
    /// The fusion universe (the whole floor outline).
    pub universe: Rect,
    /// Walkable rooms and corridors as `(full glob string, rect)`.
    pub rooms: Vec<(String, Rect)>,
}

pub(crate) fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
    Rect::new(Point::new(x0, y0), Point::new(x1, y1))
}

pub(crate) fn room_object(
    identifier: &str,
    prefix: &Glob,
    r: Rect,
    t: ObjectType,
) -> SpatialObject {
    SpatialObject::new(
        identifier,
        prefix.clone(),
        t,
        Geometry::Polygon(Polygon::from_rect(&r)),
    )
}

pub(crate) fn door_object(identifier: &str, prefix: &Glob, a: Point, b: Point) -> SpatialObject {
    SpatialObject::new(
        identifier,
        prefix.clone(),
        ObjectType::Door,
        Geometry::Line(Segment::new(a, b)),
    )
}

/// The paper's floor model — Table 1's rows (Figure 8), with doors added
/// so the route graph is connected. The HCILab polygon is blank in the
/// paper's table; we place it next to NetLab.
///
/// Rooms open onto `LabCorridor`, which spans the strip between them for
/// walkability.
#[must_use]
pub fn paper_floor() -> FloorPlan {
    let mut db = SpatialDatabase::new();
    let cs: Glob = "CS".parse().expect("valid glob");
    let floor3: Glob = "CS/Floor3".parse().expect("valid glob");

    let floor_rect = rect(0.0, 0.0, 500.0, 100.0);
    db.insert_object(room_object("Floor3", &cs, floor_rect, ObjectType::Floor))
        .expect("fresh database");

    // Table 1 rows (HCILab placed beside NetLab; the paper leaves its
    // points blank).
    let rooms = [
        ("3105", rect(330.0, 0.0, 350.0, 30.0), ObjectType::Room),
        ("NetLab", rect(360.0, 0.0, 380.0, 30.0), ObjectType::Room),
        ("HCILab", rect(390.0, 0.0, 410.0, 30.0), ObjectType::Room),
        (
            "LabCorridor",
            rect(310.0, 0.0, 330.0, 30.0),
            ObjectType::Corridor,
        ),
        // A connecting strip so every lab opens onto walkable space.
        (
            "MainCorridor",
            rect(310.0, 30.0, 500.0, 50.0),
            ObjectType::Corridor,
        ),
    ];
    for (name, r, t) in rooms {
        db.insert_object(room_object(name, &floor3, r, t))
            .expect("unique room names");
    }

    // Doors: each room onto the corridor network.
    let doors = [
        ("Door3105", Point::new(330.0, 10.0), Point::new(330.0, 14.0)),
        (
            "DoorNetLab",
            Point::new(368.0, 30.0),
            Point::new(372.0, 30.0),
        ),
        (
            "DoorHCILab",
            Point::new(398.0, 30.0),
            Point::new(402.0, 30.0),
        ),
        (
            "DoorLabCorridor",
            Point::new(318.0, 30.0),
            Point::new(322.0, 30.0),
        ),
        // 3105 also opens onto the main corridor.
        (
            "Door3105North",
            Point::new(338.0, 30.0),
            Point::new(342.0, 30.0),
        ),
    ];
    for (name, a, b) in doors {
        db.insert_object(door_object(name, &floor3, a, b))
            .expect("unique door names");
    }

    let rooms = walkable_rooms(&db);
    FloorPlan {
        db,
        universe: floor_rect,
        rooms,
    }
}

/// A synthetic floor for scaling experiments: `rooms_per_side` rooms on
/// each side of a central corridor, every room with a door onto it.
///
/// Each room is 20×30 ft; the corridor is 20 ft wide. The floor grows
/// horizontally with the room count, keeping the paper's proportions.
///
/// # Panics
///
/// Panics when `rooms_per_side` is zero.
#[must_use]
pub fn synthetic_floor(rooms_per_side: usize) -> FloorPlan {
    assert!(rooms_per_side > 0, "need at least one room per side");
    let mut db = SpatialDatabase::new();
    let cs: Glob = "CS".parse().expect("valid glob");
    let floor: Glob = "CS/FloorS".parse().expect("valid glob");

    let room_w = 20.0;
    let room_h = 30.0;
    let corridor_h = 20.0;
    let width = rooms_per_side as f64 * room_w;
    let height = 2.0 * room_h + corridor_h;
    let floor_rect = rect(0.0, 0.0, width, height);
    db.insert_object(room_object("FloorS", &cs, floor_rect, ObjectType::Floor))
        .expect("fresh database");

    db.insert_object(room_object(
        "Corridor",
        &floor,
        rect(0.0, room_h, width, room_h + corridor_h),
        ObjectType::Corridor,
    ))
    .expect("unique");

    for i in 0..rooms_per_side {
        let x0 = i as f64 * room_w;
        // South room row.
        let south = rect(x0, 0.0, x0 + room_w, room_h);
        db.insert_object(room_object(
            &format!("S{i}"),
            &floor,
            south,
            ObjectType::Room,
        ))
        .expect("unique");
        db.insert_object(door_object(
            &format!("DoorS{i}"),
            &floor,
            Point::new(x0 + 8.0, room_h),
            Point::new(x0 + 12.0, room_h),
        ))
        .expect("unique");
        // North room row.
        let north = rect(x0, room_h + corridor_h, x0 + room_w, height);
        db.insert_object(room_object(
            &format!("N{i}"),
            &floor,
            north,
            ObjectType::Room,
        ))
        .expect("unique");
        db.insert_object(door_object(
            &format!("DoorN{i}"),
            &floor,
            Point::new(x0 + 8.0, room_h + corridor_h),
            Point::new(x0 + 12.0, room_h + corridor_h),
        ))
        .expect("unique");
    }

    let rooms = walkable_rooms(&db);
    FloorPlan {
        db,
        universe: floor_rect,
        rooms,
    }
}

/// A campus model for outdoor (GPS) experiments: a large outdoor quad
/// with two small buildings opening onto it.
///
/// §3: "Outdoor environments can be hierarchically divided … MiddleWhere
/// views location in a hierarchical manner, which makes it suitable for
/// both outdoor and indoor environments." The quad is modeled as a
/// walkable corridor-typed region so the movement model works unchanged;
/// GPS deployments cover it.
#[must_use]
pub fn campus() -> FloorPlan {
    let mut db = SpatialDatabase::new();
    let uni: Glob = "Campus".parse().expect("valid glob");
    let quad_glob: Glob = "Campus".parse().expect("valid glob");

    let campus_rect = rect(0.0, 0.0, 1000.0, 400.0);
    db.insert_object(room_object("Grounds", &uni, campus_rect, ObjectType::Floor))
        .expect("fresh database");
    // The outdoor quad occupies the middle band.
    db.insert_object(room_object(
        "Quad",
        &quad_glob,
        rect(0.0, 100.0, 1000.0, 300.0),
        ObjectType::Corridor,
    ))
    .expect("unique");
    // Two buildings (single-room footprints for the movement model).
    db.insert_object(room_object(
        "SiebelLobby",
        &quad_glob,
        rect(100.0, 0.0, 300.0, 100.0),
        ObjectType::Room,
    ))
    .expect("unique");
    db.insert_object(room_object(
        "LibraryLobby",
        &quad_glob,
        rect(600.0, 300.0, 800.0, 400.0),
        ObjectType::Room,
    ))
    .expect("unique");
    db.insert_object(door_object(
        "SiebelDoor",
        &quad_glob,
        Point::new(195.0, 100.0),
        Point::new(205.0, 100.0),
    ))
    .expect("unique");
    db.insert_object(door_object(
        "LibraryDoor",
        &quad_glob,
        Point::new(695.0, 300.0),
        Point::new(705.0, 300.0),
    ))
    .expect("unique");

    let rooms = walkable_rooms(&db);
    FloorPlan {
        db,
        universe: campus_rect,
        rooms,
    }
}

fn walkable_rooms(db: &SpatialDatabase) -> Vec<(String, Rect)> {
    let mut rooms: Vec<(String, Rect)> = db
        .objects()
        .iter()
        .filter(|o| matches!(o.object_type, ObjectType::Room | ObjectType::Corridor))
        .map(|o| (o.glob().to_string(), o.mbr()))
        .collect();
    rooms.sort_by(|a, b| a.0.cmp(&b.0));
    rooms
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_core::WorldModel;

    #[test]
    fn paper_floor_matches_table_1() {
        let plan = paper_floor();
        assert_eq!(plan.universe, rect(0.0, 0.0, 500.0, 100.0));
        let room = plan.db.objects().get("CS/Floor3:3105").unwrap();
        assert_eq!(room.mbr(), rect(330.0, 0.0, 350.0, 30.0));
        let corridor = plan.db.objects().get("CS/Floor3:LabCorridor").unwrap();
        assert_eq!(corridor.mbr(), rect(310.0, 0.0, 330.0, 30.0));
        assert_eq!(plan.rooms.len(), 5);
    }

    #[test]
    fn paper_floor_is_fully_connected() {
        let plan = paper_floor();
        let world = WorldModel::from_database(&plan.db);
        // Every walkable room can reach every other.
        for (a, _) in &plan.rooms {
            for (b, _) in &plan.rooms {
                assert!(
                    world.path_distance(a, b, true).unwrap().is_some(),
                    "no route {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn synthetic_floor_scales() {
        for n in [1, 3, 10] {
            let plan = synthetic_floor(n);
            // 2n rooms + corridor.
            assert_eq!(plan.rooms.len(), 2 * n + 1);
            assert_eq!(plan.universe.width(), n as f64 * 20.0);
        }
    }

    #[test]
    fn synthetic_floor_is_fully_connected() {
        let plan = synthetic_floor(5);
        let world = WorldModel::from_database(&plan.db);
        for (a, _) in &plan.rooms {
            for (b, _) in &plan.rooms {
                assert!(
                    world.path_distance(a, b, false).unwrap().is_some(),
                    "no route {a} -> {b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one room")]
    fn zero_rooms_rejected() {
        let _ = synthetic_floor(0);
    }

    #[test]
    fn campus_is_connected_through_the_quad() {
        let plan = campus();
        assert_eq!(plan.rooms.len(), 3); // quad + two lobbies
        let world = WorldModel::from_database(&plan.db);
        assert!(world
            .path_distance("Campus/SiebelLobby", "Campus/LibraryLobby", false)
            .unwrap()
            .is_some());
        // The walk crosses the quad.
        let quad = world.region_rect("Campus/Quad").unwrap();
        assert!(quad.contains_point(Point::new(500.0, 200.0)));
    }
}
