//! Scripted misbehaving sensors for chaos experiments.
//!
//! [`ByzantineAdapter`] is a real [`Adapter`] that emits readings for one
//! sensor with a scripted failure mode: after `honest_events` sane
//! readings it turns byzantine and — depending on its
//! [`ByzantineMode`] — keeps reporting a stuck position, teleports
//! between far-apart positions, stamps readings with a skewed (future)
//! clock, or goes silent entirely. Everything is driven by a fixed seed,
//! so a chaos test can assert the supervision layer's `health.*`
//! counters against the *exact* number of scripted faults.
//!
//! The modes mirror the sensing-layer failure taxonomy the supervision
//! module defends against (see [`mw_sensors::health`]): stuck and
//! teleporting sensors trip the implied-velocity gate, stale clocks trip
//! the future-timestamp clamp, and silent death trips the staleness
//! watchdog.

use mw_geometry::{Point, Rect};
use mw_model::{SimDuration, SimTime, TemporalDegradation};
use mw_sensors::{
    Adapter, AdapterId, AdapterOutput, MobileObjectId, SensorId, SensorReading, SensorSpec,
    SensorType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the sensor misbehaves once its honest phase ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ByzantineMode {
    /// Keeps reporting the last honest position forever while the
    /// tracked object walks away — the classic frozen-driver failure.
    /// (Surfaces as teleports *from the stuck position* when another
    /// sane sensor is interleaved through the same supervisor, or as a
    /// conflict-loss pattern in fusion.)
    Stuck,
    /// Alternates between the honest position and a mirror position
    /// `hop_ft` away on every reading — impossible implied velocity.
    Teleporting {
        /// Distance of each hop, in feet.
        hop_ft: f64,
    },
    /// Reports the honest position but stamps readings `skew` ahead of
    /// the service clock — a sensor whose NTP died.
    StaleClock {
        /// How far into the future the sensor's clock runs.
        skew: SimDuration,
    },
    /// Stops emitting anything — the staleness watchdog's prey.
    SilentDeath,
}

/// A scripted misbehaving sensor, driven like any other adapter: call
/// [`Adapter::translate`] once per declared update period with the
/// object's true position as the event.
///
/// # Example
///
/// ```
/// use mw_geometry::Point;
/// use mw_model::SimTime;
/// use mw_sensors::Adapter;
/// use mw_sim::{ByzantineAdapter, ByzantineMode};
///
/// let mut sensor = ByzantineAdapter::new(
///     "ubi-evil",
///     ByzantineMode::Teleporting { hop_ft: 400.0 },
///     2,      // two honest readings first
///     0xc0ffee,
/// );
/// // Honest phase: reports the true position.
/// let out = sensor.translate(Point::new(100.0, 50.0), SimTime::from_secs(0.0));
/// assert_eq!(out.readings.len(), 1);
/// assert_eq!(sensor.faulty_emitted(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ByzantineAdapter {
    adapter_id: AdapterId,
    sensor_id: SensorId,
    object: MobileObjectId,
    spec: SensorSpec,
    mode: ByzantineMode,
    honest_events: u64,
    events_seen: u64,
    emitted: u64,
    faulty: u64,
    stuck_at: Option<Point>,
    hop_parity: bool,
    rng: StdRng,
}

impl ByzantineAdapter {
    /// Creates a byzantine Ubisense-class sensor named `sensor` tracking
    /// object `"alice"`; behaves honestly for the first `honest_events`
    /// readings, then switches to `mode`. `seed` fixes all randomness.
    #[must_use]
    pub fn new(sensor: &str, mode: ByzantineMode, honest_events: u64, seed: u64) -> Self {
        ByzantineAdapter {
            adapter_id: AdapterId::new(format!("byz-{sensor}")),
            sensor_id: sensor.into(),
            object: "alice".into(),
            spec: SensorSpec::ubisense(1.0),
            mode,
            honest_events,
            events_seen: 0,
            emitted: 0,
            faulty: 0,
            stuck_at: None,
            hop_parity: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the tracked object (default `"alice"`).
    #[must_use]
    pub fn tracking(mut self, object: impl Into<MobileObjectId>) -> Self {
        self.object = object.into();
        self
    }

    /// Overrides the sensor calibration (default perfect-carry Ubisense).
    #[must_use]
    pub fn with_spec(mut self, spec: SensorSpec) -> Self {
        self.spec = spec;
        self
    }

    /// The scripted failure mode.
    #[must_use]
    pub fn mode(&self) -> ByzantineMode {
        self.mode
    }

    /// The sensor id this adapter reports as.
    #[must_use]
    pub fn sensor_id(&self) -> &SensorId {
        &self.sensor_id
    }

    /// Total readings emitted (honest + faulty). Silent-death events
    /// emit nothing and don't count.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Readings emitted *after* the honest phase ended — the number a
    /// chaos test should expect the supervision layer to flag (for
    /// `SilentDeath`, the count of *suppressed* emissions instead).
    #[must_use]
    pub fn faulty_emitted(&self) -> u64 {
        self.faulty
    }

    /// `true` once the honest phase is over.
    #[must_use]
    pub fn is_byzantine(&self) -> bool {
        self.events_seen > self.honest_events
    }

    fn reading(&mut self, center: Point, at: SimTime) -> SensorReading {
        // Ubisense-style tight box with seeded sub-foot jitter, so runs
        // are deterministic per seed but not artificially identical.
        let jitter = self.rng.gen_range(-0.05..0.05f64);
        SensorReading {
            sensor_id: self.sensor_id.clone(),
            spec: self.spec,
            object: self.object.clone(),
            glob_prefix: "CS/Floor3".parse().expect("static glob"),
            region: Rect::from_center(Point::new(center.x + jitter, center.y), 2.0, 2.0),
            detected_at: at,
            time_to_live: SimDuration::from_secs(30.0),
            tdf: TemporalDegradation::None,
            moving: false,
        }
    }
}

impl Adapter for ByzantineAdapter {
    /// The tracked object's true position (ground truth from the
    /// simulation).
    type Event = Point;

    fn adapter_id(&self) -> &AdapterId {
        &self.adapter_id
    }

    fn sensor_type(&self) -> SensorType {
        SensorType::Ubisense
    }

    fn translate(&mut self, truth: Point, now: SimTime) -> AdapterOutput {
        self.events_seen += 1;
        if self.events_seen <= self.honest_events {
            self.stuck_at = Some(truth);
            self.emitted += 1;
            return AdapterOutput::single(self.reading(truth, now));
        }
        self.faulty += 1;
        match self.mode {
            ByzantineMode::Stuck => {
                let frozen = self.stuck_at.unwrap_or(truth);
                self.emitted += 1;
                AdapterOutput::single(self.reading(frozen, now))
            }
            ByzantineMode::Teleporting { hop_ft } => {
                self.hop_parity = !self.hop_parity;
                let center = if self.hop_parity {
                    Point::new(truth.x + hop_ft, truth.y)
                } else {
                    truth
                };
                self.emitted += 1;
                AdapterOutput::single(self.reading(center, now))
            }
            ByzantineMode::StaleClock { skew } => {
                self.emitted += 1;
                AdapterOutput::single(self.reading(truth, now + skew))
            }
            ByzantineMode::SilentDeath => AdapterOutput::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(mode: ByzantineMode, events: u64) -> (ByzantineAdapter, Vec<SensorReading>) {
        let mut adapter = ByzantineAdapter::new("byz-1", mode, 3, 42);
        let mut readings = Vec::new();
        for i in 0..events {
            #[allow(clippy::cast_precision_loss)]
            let t = i as f64;
            let out = adapter.translate(Point::new(100.0 + t, 50.0), SimTime::from_secs(t));
            readings.extend(out.readings);
        }
        (adapter, readings)
    }

    #[test]
    fn honest_phase_then_stuck() {
        let (adapter, readings) = drive(ByzantineMode::Stuck, 8);
        assert_eq!(adapter.emitted(), 8);
        assert_eq!(adapter.faulty_emitted(), 5);
        assert!(adapter.is_byzantine());
        // Faulty readings all report the last honest position (x ≈ 102).
        for r in &readings[3..] {
            assert!((r.region.center().x - 102.0).abs() < 0.1);
        }
    }

    #[test]
    fn teleporting_alternates_far_positions() {
        let (_, readings) = drive(ByzantineMode::Teleporting { hop_ft: 400.0 }, 6);
        let x3 = readings[3].region.center().x;
        let x4 = readings[4].region.center().x;
        assert!((x3 - x4).abs() > 300.0, "hop not visible: {x3} vs {x4}");
    }

    #[test]
    fn stale_clock_stamps_the_future() {
        let skew = SimDuration::from_secs(120.0);
        let (_, readings) = drive(ByzantineMode::StaleClock { skew }, 5);
        assert!(!readings[2].is_from_future(SimTime::from_secs(2.0)));
        assert!(readings[4].is_from_future(SimTime::from_secs(4.0)));
    }

    #[test]
    fn silent_death_stops_emitting() {
        let (adapter, readings) = drive(ByzantineMode::SilentDeath, 10);
        assert_eq!(readings.len(), 3);
        assert_eq!(adapter.emitted(), 3);
        assert_eq!(adapter.faulty_emitted(), 7);
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let (_, a) = drive(ByzantineMode::Stuck, 8);
        let (_, b) = drive(ByzantineMode::Stuck, 8);
        assert_eq!(a, b);
    }
}
