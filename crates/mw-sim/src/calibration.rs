//! Parameter estimation — the paper's stated future work (§11):
//!
//! "We also plan to conduct user studies to get accurate values of
//! various parameters of our system like the probability of carrying
//! location devices and the temporal degradation function. These
//! probability values can then be used by the middleware and
//! location-aware applications to improve their reliability and
//! accuracy."
//!
//! The simulator can play the role of the user study: ground truth is
//! known, so the estimators below can be validated end-to-end before
//! being pointed at real observation logs.

use mw_model::{SimDuration, TemporalDegradation};

/// Estimates the badge-carrying probability `x` from detection trials.
///
/// Each trial is one polling opportunity where ground truth (or an
/// independent observer, in a real user study) says the person was inside
/// the sensor's coverage; `detected` says whether the sensor reported
/// them. With the technology's detection probability `y` known from its
/// specification, `x ≈ detection_rate / y`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CarryProbabilityEstimator {
    trials: usize,
    detections: usize,
}

impl CarryProbabilityEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        CarryProbabilityEstimator::default()
    }

    /// Records one in-coverage polling opportunity.
    pub fn observe(&mut self, detected: bool) {
        self.trials += 1;
        if detected {
            self.detections += 1;
        }
    }

    /// Number of recorded trials.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The raw detection rate `x·y`.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.trials == 0 {
            return f64::NAN;
        }
        self.detections as f64 / self.trials as f64
    }

    /// The carry probability `x` given the technology's `y`, clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn estimate(&self, detection_probability_y: f64) -> f64 {
        if detection_probability_y <= 0.0 {
            return f64::NAN;
        }
        (self.detection_rate() / detection_probability_y).clamp(0.0, 1.0)
    }
}

/// An empirically fitted temporal degradation function.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedTdf {
    /// `(age bucket midpoint seconds, empirical P(reading still valid))`.
    pub empirical: Vec<(f64, f64)>,
    /// Exponential half-life fitted by log-linear regression, `None` when
    /// the data never decays (or is too sparse).
    pub half_life: Option<SimDuration>,
}

impl FittedTdf {
    /// The fitted function as a [`TemporalDegradation`]: exponential when
    /// a half-life was found, otherwise no decay.
    #[must_use]
    pub fn as_tdf(&self) -> TemporalDegradation {
        match self.half_life {
            Some(hl) => TemporalDegradation::ExponentialHalfLife { half_life: hl },
            None => TemporalDegradation::None,
        }
    }
}

/// Fits a temporal degradation function from validity samples.
///
/// Each sample is `(age seconds, still_valid)`: at `age` after a reading
/// (e.g. a card swipe), was the person in fact still where the reading
/// said? Samples are bucketed by `bucket_secs`, the empirical survival
/// curve computed, and an exponential half-life fitted by least squares
/// on `ln(p)` (buckets with `p = 0` or no data are skipped).
#[must_use]
pub fn fit_tdf(samples: &[(f64, bool)], bucket_secs: f64) -> FittedTdf {
    assert!(bucket_secs > 0.0, "bucket width must be positive");
    let mut buckets: std::collections::BTreeMap<u64, (usize, usize)> = Default::default();
    for &(age, valid) in samples {
        if !age.is_finite() || age < 0.0 {
            continue;
        }
        let b = (age / bucket_secs).floor() as u64;
        let e = buckets.entry(b).or_insert((0, 0));
        e.0 += 1;
        if valid {
            e.1 += 1;
        }
    }
    let empirical: Vec<(f64, f64)> = buckets
        .iter()
        .map(|(&b, &(n, k))| ((b as f64 + 0.5) * bucket_secs, k as f64 / n as f64))
        .collect();

    // Least squares on ln(p) = -lambda * t  (through the origin, since
    // p(0) = 1 by construction of a fresh reading).
    let mut num = 0.0;
    let mut den = 0.0;
    for &(t, p) in &empirical {
        if p > 0.0 && p < 1.0 {
            num += t * p.ln();
            den += t * t;
        }
    }
    let half_life = if den > 0.0 && num < 0.0 {
        let lambda = -num / den;
        Some(SimDuration::from_secs(std::f64::consts::LN_2 / lambda))
    } else {
        None
    };
    FittedTdf {
        empirical,
        half_life,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn carry_probability_recovers_truth() {
        // Simulated study: x = 0.8, y = 0.95.
        let mut rng = StdRng::seed_from_u64(99);
        let mut est = CarryProbabilityEstimator::new();
        for _ in 0..20_000 {
            let carrying = rng.gen_bool(0.8);
            let detected = carrying && rng.gen_bool(0.95);
            est.observe(detected);
        }
        let x = est.estimate(0.95);
        assert!((x - 0.8).abs() < 0.02, "estimated x = {x}");
        assert_eq!(est.trials(), 20_000);
    }

    #[test]
    fn carry_probability_edge_cases() {
        let est = CarryProbabilityEstimator::new();
        assert!(est.detection_rate().is_nan());
        assert!(est.estimate(0.0).is_nan());
        let mut est = CarryProbabilityEstimator::new();
        for _ in 0..10 {
            est.observe(true);
        }
        // Rate above y clamps to 1.
        assert_eq!(est.estimate(0.5), 1.0);
    }

    #[test]
    fn tdf_fit_recovers_half_life() {
        // Ground truth: exponential survival with half-life 60 s.
        let mut rng = StdRng::seed_from_u64(7);
        let hl = 60.0;
        let samples: Vec<(f64, bool)> = (0..50_000)
            .map(|_| {
                let age = rng.gen_range(0.0..240.0);
                let p = 0.5f64.powf(age / hl);
                (age, rng.gen_bool(p))
            })
            .collect();
        let fit = fit_tdf(&samples, 15.0);
        let estimated = fit.half_life.expect("decay detected").as_secs();
        assert!(
            (estimated - hl).abs() < 10.0,
            "estimated half-life {estimated}"
        );
        // The empirical curve is monotone-ish decreasing.
        assert!(fit.empirical.first().unwrap().1 > fit.empirical.last().unwrap().1);
        assert!(matches!(
            fit.as_tdf(),
            TemporalDegradation::ExponentialHalfLife { .. }
        ));
    }

    #[test]
    fn tdf_fit_without_decay() {
        let samples: Vec<(f64, bool)> = (0..100).map(|i| (i as f64, true)).collect();
        let fit = fit_tdf(&samples, 10.0);
        assert_eq!(fit.half_life, None);
        assert_eq!(fit.as_tdf(), TemporalDegradation::None);
        for (_, p) in fit.empirical {
            assert_eq!(p, 1.0);
        }
    }

    #[test]
    fn tdf_fit_ignores_garbage_samples() {
        let samples = vec![(f64::NAN, true), (-5.0, false), (10.0, true), (10.0, false)];
        let fit = fit_tdf(&samples, 10.0);
        assert_eq!(fit.empirical.len(), 1);
        assert_eq!(fit.empirical[0].1, 0.5);
    }

    #[test]
    #[should_panic(expected = "bucket")]
    fn zero_bucket_rejected() {
        let _ = fit_tdf(&[], 0.0);
    }
}
