//! City-scale workload generation (DESIGN.md §14): multi-building floor
//! graphs, Zipf room occupancy, diurnal movement, and scripted
//! rush-hour / evacuation bursts.
//!
//! The paper's evaluation tracks a handful of people on one floor; the
//! city generator produces the 10⁵-object regime the crowd-monitoring
//! literature (PAPERS.md) identifies as the stress case for region
//! subscriptions. It is a *workload* generator, not a physics
//! simulation: each room carries one presence sensor, and a person
//! moving rooms emits exactly one [`Revocation`] (their old room's
//! sensor forgets them) paired with one [`SensorReading`] (their new
//! room sees them). The live-reading table therefore holds **exactly
//! one row per person** at all times — the invariant the compact
//! per-object state and bytes-per-object accounting are measured
//! against.
//!
//! Everything is driven by one `u64` seed; the same seed reproduces the
//! same event stream bit for bit.

use mw_geometry::Rect;
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};
use mw_sensors::{AdapterOutput, MobileObjectId, Revocation, SensorId, SensorReading, SensorSpec};
use mw_spatial_db::{ObjectType, SpatialDatabase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::building::{door_object, rect, room_object, FloorPlan};
use crate::zipf::{sample_zipf, zipf_cdf};

/// Dimensions and population of a generated city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Number of buildings, laid out left to right.
    pub buildings: usize,
    /// Floors per building, stacked as horizontal strips.
    pub floors: usize,
    /// Rooms per floor, each opening onto the floor's hall.
    pub rooms_per_floor: usize,
    /// Tracked people.
    pub population: usize,
    /// Zipf exponent for work-room popularity (larger = more skew; a
    /// few hot rooms — lecture halls, cafeterias — absorb most people).
    pub zipf_exponent: f64,
    /// Master seed for occupancy assignment and movement.
    pub seed: u64,
}

impl Default for CityConfig {
    fn default() -> Self {
        CityConfig {
            buildings: 4,
            floors: 3,
            rooms_per_floor: 8,
            population: 256,
            zipf_exponent: 1.1,
            seed: 7,
        }
    }
}

/// One generated room: its spatial identity plus the presence sensor
/// that reports occupants.
#[derive(Debug, Clone)]
struct CityRoom {
    glob: Glob,
    rect: Rect,
    sensor: SensorId,
    /// Index of the ground-floor hall of this room's building — the
    /// evacuation assembly point.
    assembly: usize,
}

/// The generated city: spatial database, room/sensor inventory, and the
/// per-person occupancy state that drives movement.
///
/// Person state is struct-of-arrays (`home` / `work` / `at` as parallel
/// `Vec<u32>`) so a 100k-person city costs a few hundred kilobytes of
/// generator state, dwarfed by the service under test.
#[derive(Debug)]
pub struct City {
    plan: FloorPlan,
    rooms: Vec<CityRoom>,
    people: Vec<MobileObjectId>,
    home: Vec<u32>,
    work: Vec<u32>,
    /// Current room per person; `u32::MAX` before first placement.
    at: Vec<u32>,
    rng: StdRng,
}

const UNPLACED: u32 = u32::MAX;

/// Room geometry (building units): 20×30 ft rooms on a 20 ft hall,
/// matching the synthetic floor's proportions.
const ROOM_W: f64 = 20.0;
const ROOM_H: f64 = 30.0;
const HALL_H: f64 = 20.0;
/// Gap between buildings / floor strips so regions never touch.
const GAP: f64 = 40.0;

impl City {
    /// Generates the city described by `config`.
    ///
    /// # Panics
    ///
    /// Panics when any dimension or the population is zero.
    #[must_use]
    pub fn new(config: &CityConfig) -> City {
        assert!(
            config.buildings > 0 && config.floors > 0 && config.rooms_per_floor > 0,
            "city needs at least one building, floor and room"
        );
        assert!(config.population > 0, "city needs at least one person");
        let mut db = SpatialDatabase::new();
        let root: Glob = "City".parse().expect("valid glob");

        let floor_w = config.rooms_per_floor as f64 * ROOM_W;
        let strip_h = ROOM_H + HALL_H;
        let width = config.buildings as f64 * (floor_w + GAP)
            - if config.buildings > 0 { GAP } else { 0.0 };
        let height =
            config.floors as f64 * (strip_h + GAP) - if config.floors > 0 { GAP } else { 0.0 };
        let universe = rect(0.0, 0.0, width, height);
        db.insert_object(room_object("Grounds", &root, universe, ObjectType::Floor))
            .expect("fresh database");

        let mut rooms: Vec<CityRoom> = Vec::new();
        for b in 0..config.buildings {
            let x0 = b as f64 * (floor_w + GAP);
            // Ground-floor hall index for this building: halls are
            // pushed first per floor, so floor 0's hall is the room
            // we are about to push.
            let assembly = rooms.len();
            for f in 0..config.floors {
                let y0 = f as f64 * (strip_h + GAP);
                let prefix: Glob = format!("City/B{b}F{f}").parse().expect("valid glob");
                let hall = rect(x0, y0 + ROOM_H, x0 + floor_w, y0 + strip_h);
                db.insert_object(room_object("Hall", &prefix, hall, ObjectType::Corridor))
                    .expect("unique hall");
                rooms.push(CityRoom {
                    glob: format!("City/B{b}F{f}/Hall").parse().expect("valid glob"),
                    rect: hall,
                    sensor: SensorId::new(format!("pres-B{b}F{f}-Hall")),
                    assembly,
                });
                for r in 0..config.rooms_per_floor {
                    let rx = x0 + r as f64 * ROOM_W;
                    let room = rect(rx, y0, rx + ROOM_W, y0 + ROOM_H);
                    db.insert_object(room_object(
                        &format!("R{r}"),
                        &prefix,
                        room,
                        ObjectType::Room,
                    ))
                    .expect("unique room");
                    db.insert_object(door_object(
                        &format!("DoorR{r}"),
                        &prefix,
                        mw_geometry::Point::new(rx + 8.0, y0 + ROOM_H),
                        mw_geometry::Point::new(rx + 12.0, y0 + ROOM_H),
                    ))
                    .expect("unique door");
                    rooms.push(CityRoom {
                        glob: format!("City/B{b}F{f}/R{r}").parse().expect("valid glob"),
                        rect: room,
                        sensor: SensorId::new(format!("pres-B{b}F{f}-R{r}")),
                        assembly,
                    });
                }
            }
        }

        let walkable: Vec<(String, Rect)> =
            rooms.iter().map(|r| (r.glob.to_string(), r.rect)).collect();

        let mut rng = StdRng::seed_from_u64(config.seed);
        // Occupancy: work rooms Zipf-skewed (hot rooms absorb crowds),
        // home rooms uniform.
        let cdf = zipf_cdf(rooms.len(), config.zipf_exponent);
        let mut home = Vec::with_capacity(config.population);
        let mut work = Vec::with_capacity(config.population);
        let mut people = Vec::with_capacity(config.population);
        for i in 0..config.population {
            people.push(MobileObjectId::new(format!("p{i}")));
            home.push(rng.gen_range(0..rooms.len()) as u32);
            work.push(sample_zipf(&cdf, &mut rng) as u32);
        }

        City {
            plan: FloorPlan {
                db,
                universe,
                rooms: walkable,
            },
            rooms,
            people,
            home,
            work,
            at: vec![UNPLACED; config.population],
            rng,
        }
    }

    /// The generated floor plan (spatial database, universe, walkable
    /// rooms) — feed this to the service under test.
    #[must_use]
    pub fn plan(&self) -> &FloorPlan {
        &self.plan
    }

    /// Number of generated rooms (including halls).
    #[must_use]
    pub fn room_count(&self) -> usize {
        self.rooms.len()
    }

    /// Number of tracked people.
    #[must_use]
    pub fn population(&self) -> usize {
        self.people.len()
    }

    /// Tracked object ids, in person order.
    #[must_use]
    pub fn people(&self) -> &[MobileObjectId] {
        &self.people
    }

    /// Exact rects of the generated rooms, in room order — interest
    /// regions for look-alike rule registration.
    #[must_use]
    pub fn room_rects(&self) -> Vec<Rect> {
        self.rooms.iter().map(|r| r.rect).collect()
    }

    /// Places every person in their home room — the initial burst of
    /// one reading per person, no revocations.
    pub fn seed_presence(&mut self, now: SimTime) -> Vec<AdapterOutput> {
        let mut out = Vec::with_capacity(self.people.len());
        for i in 0..self.people.len() {
            let to = self.home[i];
            self.emit_move(i, to, now, &mut out);
        }
        out
    }

    /// One diurnal step: at `hour` (0–24), people drift toward work
    /// during the day and home in the evening; `churn` is the fraction
    /// of the population that moves this tick (the rest stay put).
    pub fn diurnal_tick(&mut self, hour: f64, churn: f64, now: SimTime) -> Vec<AdapterOutput> {
        let mut out = Vec::new();
        let workward = (8.0..18.0).contains(&hour);
        for i in 0..self.people.len() {
            if !self.rng.gen_bool(churn.clamp(0.0, 1.0)) {
                continue;
            }
            // A small minority wanders to a random room (meetings,
            // errands); the rest head to their diurnal target.
            let to = if self.rng.gen_bool(0.1) {
                self.rng.gen_range(0..self.rooms.len()) as u32
            } else if workward {
                self.work[i]
            } else {
                self.home[i]
            };
            self.emit_move(i, to, now, &mut out);
        }
        out
    }

    /// Rush hour: everyone not already at work heads there — the
    /// highest-churn scripted burst (worst-case revocation + ingest
    /// volume, Zipf-concentrated fan-in on the hot rooms).
    pub fn rush_hour_tick(&mut self, now: SimTime) -> Vec<AdapterOutput> {
        let mut out = Vec::new();
        for i in 0..self.people.len() {
            let to = self.work[i];
            self.emit_move(i, to, now, &mut out);
        }
        out
    }

    /// Evacuation: everyone moves to their building's ground-floor
    /// hall — maximal fan-in to a handful of rooms, the notification
    /// stress case for "anyone enters the assembly point" rules.
    pub fn evacuation_tick(&mut self, now: SimTime) -> Vec<AdapterOutput> {
        let mut out = Vec::new();
        for i in 0..self.people.len() {
            let to = if self.at[i] == UNPLACED {
                self.home[i]
            } else {
                self.rooms[self.at[i] as usize].assembly as u32
            };
            self.emit_move(i, to, now, &mut out);
        }
        out
    }

    /// Moves person `i` to room `to`, pairing the new room's reading
    /// with a revocation of the old room's — unless they are already
    /// there, which emits nothing.
    fn emit_move(&mut self, i: usize, to: u32, now: SimTime, out: &mut Vec<AdapterOutput>) {
        let from = self.at[i];
        if from == to {
            return;
        }
        let mut output = AdapterOutput::default();
        if from != UNPLACED {
            output.revocations.push(Revocation {
                sensor_id: self.rooms[from as usize].sensor.clone(),
                object: self.people[i].clone(),
            });
        }
        let room = &self.rooms[to as usize];
        output.readings.push(SensorReading {
            sensor_id: room.sensor.clone(),
            spec: SensorSpec::ubisense(1.0),
            object: self.people[i].clone(),
            glob_prefix: room.glob.clone(),
            region: room.rect,
            detected_at: now,
            // Presence persists until the revocation on the next move;
            // a long TTL keeps the one-row-per-person invariant from
            // decaying mid-scenario.
            time_to_live: SimDuration::from_secs(86_400.0),
            tdf: TemporalDegradation::None,
            moving: false,
        });
        self.at[i] = to;
        out.push(output);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_bus::Broker;
    use mw_core::LocationService;

    #[test]
    fn geometry_and_globs_are_depth_3() {
        let city = City::new(&CityConfig {
            buildings: 2,
            floors: 2,
            rooms_per_floor: 3,
            population: 10,
            ..CityConfig::default()
        });
        // Per floor: 1 hall + 3 rooms.
        assert_eq!(city.room_count(), 2 * 2 * 4);
        for (glob, _) in &city.plan().rooms {
            assert_eq!(glob.split('/').count(), 3, "depth-3 glob: {glob}");
        }
        // Rooms never overlap across buildings/floors.
        let rects = city.room_rects();
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                let overlap = a.intersection(b).map(|r| r.area() > 1e-9).unwrap_or(false);
                assert!(!overlap, "rooms overlap");
            }
        }
    }

    #[test]
    fn one_live_row_per_person_through_a_day() {
        let mut city = City::new(&CityConfig {
            buildings: 2,
            floors: 1,
            rooms_per_floor: 4,
            population: 32,
            ..CityConfig::default()
        });
        let broker = Broker::new();
        let engine = mw_fusion::FusionEngine::new(city.plan().universe);
        let service = LocationService::new_with_engine(city.plan().db.clone(), engine, &broker);
        let mut now = SimTime::from_secs(1.0);
        let seed = city.seed_presence(now);
        assert_eq!(seed.len(), 32, "everyone placed");
        service.ingest_batch(seed, now);
        assert_eq!(service.reading_count(), 32);
        for step in 0..6 {
            now = SimTime::from_secs(10.0 + f64::from(step));
            let outputs = city.diurnal_tick(9.0, 0.5, now);
            for o in &outputs {
                assert_eq!(o.readings.len(), 1);
                assert_eq!(o.revocations.len(), 1, "move revokes the old row");
            }
            service.ingest_batch(outputs, now);
            assert_eq!(service.reading_count(), 32, "exactly one row per person");
        }
        now = SimTime::from_secs(100.0);
        service.ingest_batch(city.rush_hour_tick(now), now);
        assert_eq!(service.reading_count(), 32);
        now = SimTime::from_secs(200.0);
        service.ingest_batch(city.evacuation_tick(now), now);
        assert_eq!(service.reading_count(), 32);
        assert_eq!(service.tracked_objects(now).len(), 32);
    }

    #[test]
    fn evacuation_collects_everyone_in_ground_floor_halls() {
        let mut city = City::new(&CityConfig {
            buildings: 3,
            floors: 2,
            rooms_per_floor: 2,
            population: 20,
            ..CityConfig::default()
        });
        let now = SimTime::from_secs(1.0);
        city.seed_presence(now);
        city.evacuation_tick(SimTime::from_secs(2.0));
        for i in 0..city.population() {
            let room = &city.rooms[city.at[i] as usize];
            assert!(
                room.glob.to_string().ends_with("/Hall"),
                "person {i} not in a hall: {}",
                room.glob
            );
            assert!(room.glob.to_string().contains("F0"), "ground floor");
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_stream() {
        let config = CityConfig {
            population: 64,
            ..CityConfig::default()
        };
        let mut a = City::new(&config);
        let mut b = City::new(&config);
        let now = SimTime::from_secs(1.0);
        assert_eq!(a.seed_presence(now), b.seed_presence(now));
        assert_eq!(
            a.diurnal_tick(9.0, 0.3, SimTime::from_secs(2.0)),
            b.diurnal_tick(9.0, 0.3, SimTime::from_secs(2.0))
        );
        assert_eq!(
            a.rush_hour_tick(SimTime::from_secs(3.0)),
            b.rush_hour_tick(SimTime::from_secs(3.0))
        );
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let cdf = zipf_cdf(100, 1.1);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[sample_zipf(&cdf, &mut rng)] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(head > 5 * tail, "head {head} should dwarf tail {tail}");
    }
}
