//! Deterministic scenario driver for multi-node cluster experiments.
//!
//! Multi-process chaos tests need every process — router harness,
//! partition nodes, and the assertions at the end — to agree on the
//! world without sharing any state at runtime. [`ClusterScenario`] is
//! that shared world: a pure function of `(seed, step)`. Two processes
//! constructing it from the same seed derive bit-identical sensor
//! readings and the same ground-truth room schedule, so the harness can
//! ingest through one node, kill it, query its replica, and still know
//! exactly which answer is correct.
//!
//! Objects dwell in a room for [`ClusterScenario::DWELL_STEPS`] steps
//! and then jump to the next scheduled room. Readings carry a short
//! time-to-live so that, two steps into a dwell window, readings from
//! the previous room have expired and a fused answer can only reflect
//! the current room — [`ClusterScenario::is_settled`] tells callers
//! when a step is safe to assert room containment on.

use mw_geometry::{Point, Rect};
use mw_model::{SimDuration, SimTime, TemporalDegradation};
use mw_sensors::{AdapterOutput, MobileObjectId, SensorReading, SensorSpec};

use crate::building::{paper_floor, FloorPlan};

/// splitmix64 — the standard 64-bit finalizer-style mixer. Stable by
/// construction across processes, platforms and std versions, which is
/// the whole point here (no `DefaultHasher` internals to trust).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, stateless multi-object world for cluster tests: same seed →
/// same readings and the same ground truth, in every process.
#[derive(Debug)]
pub struct ClusterScenario {
    seed: u64,
    floor: FloorPlan,
    objects: Vec<MobileObjectId>,
    spec: SensorSpec,
}

impl ClusterScenario {
    /// Steps an object stays in one room before jumping to the next.
    pub const DWELL_STEPS: u64 = 16;

    /// Simulated seconds per step.
    pub const STEP_SECS: f64 = 1.0;

    /// Reading time-to-live, in steps. Short enough that readings from
    /// the previous room expire early in a dwell window.
    pub const TTL_STEPS: u64 = 4;

    /// Builds the scenario: the paper floor plan plus `n_objects`
    /// tracked objects named `obj-0 … obj-{n-1}`.
    #[must_use]
    pub fn new(seed: u64, n_objects: usize) -> Self {
        let objects = (0..n_objects)
            .map(|i| MobileObjectId::new(format!("obj-{i}")))
            .collect();
        ClusterScenario {
            seed,
            floor: paper_floor(),
            objects,
            spec: SensorSpec::ubisense(0.9),
        }
    }

    /// The tracked objects.
    #[must_use]
    pub fn objects(&self) -> &[MobileObjectId] {
        &self.objects
    }

    /// The shared floor plan.
    #[must_use]
    pub fn floor(&self) -> &FloorPlan {
        &self.floor
    }

    /// Simulated clock at `step`.
    #[must_use]
    pub fn now_at(step: u64) -> SimTime {
        SimTime::from_secs(step as f64 * Self::STEP_SECS)
    }

    /// Ground truth: the room `object_idx` occupies at `step`.
    ///
    /// # Panics
    ///
    /// Panics when `object_idx` is out of range.
    #[must_use]
    pub fn expected_room(&self, object_idx: usize, step: u64) -> &(String, Rect) {
        assert!(object_idx < self.objects.len(), "unknown object index");
        let window = step / Self::DWELL_STEPS;
        let rooms = &self.floor.rooms;
        let pick = mix(self.seed ^ mix(object_idx as u64) ^ mix(window.wrapping_add(1)));
        &rooms[(pick % rooms.len() as u64) as usize]
    }

    /// `true` when `step` is deep enough into its dwell window that all
    /// live readings for every object are from the current room, so a
    /// fused answer must land inside [`ClusterScenario::expected_room`].
    #[must_use]
    pub fn is_settled(step: u64) -> bool {
        step % Self::DWELL_STEPS >= Self::TTL_STEPS
    }

    /// The reading object `object_idx` generates at `step`: a tight
    /// Ubisense-style box around a deterministically jittered point in
    /// the scheduled room.
    ///
    /// # Panics
    ///
    /// Panics when `object_idx` is out of range.
    #[must_use]
    pub fn reading(&self, object_idx: usize, step: u64) -> SensorReading {
        let (room, rect) = self.expected_room(object_idx, step);
        let j = mix(self.seed ^ mix(0xFACE ^ object_idx as u64) ^ mix(step));
        // Two independent sub-unit jitters in [-0.45, 0.45], keeping the
        // 2x2 box strictly inside even the narrowest room.
        let jx = ((j & 0xFFFF) as f64 / 65535.0 - 0.5) * 0.9;
        let jy = (((j >> 16) & 0xFFFF) as f64 / 65535.0 - 0.5) * 0.9;
        let center = rect.center();
        SensorReading {
            sensor_id: format!("ubi-{object_idx}").as_str().into(),
            spec: self.spec,
            object: self.objects[object_idx].clone(),
            glob_prefix: format!("CS/Floor3/{room}").parse().expect("static glob"),
            region: Rect::from_center(Point::new(center.x + jx, center.y + jy), 2.0, 2.0),
            detected_at: Self::now_at(step),
            time_to_live: SimDuration::from_secs(Self::TTL_STEPS as f64 * Self::STEP_SECS),
            tdf: TemporalDegradation::None,
            moving: false,
        }
    }

    /// Everything the sensor layer emits at `step`: one
    /// [`AdapterOutput`] per object, in object order, so routing layers
    /// can partition the batch by owner.
    #[must_use]
    pub fn step_outputs(&self, step: u64) -> Vec<(MobileObjectId, AdapterOutput)> {
        (0..self.objects.len())
            .map(|i| {
                (
                    self.objects[i].clone(),
                    AdapterOutput::single(self.reading(i, step)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_bit_identical_outputs() {
        let a = ClusterScenario::new(42, 6);
        let b = ClusterScenario::new(42, 6);
        for step in 0..40 {
            assert_eq!(a.step_outputs(step), b.step_outputs(step));
            for i in 0..6 {
                assert_eq!(a.expected_room(i, step), b.expected_room(i, step));
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ClusterScenario::new(1, 4);
        let b = ClusterScenario::new(2, 4);
        let same = (0..64).all(|step| a.step_outputs(step) == b.step_outputs(step));
        assert!(!same, "seeds must matter");
    }

    #[test]
    fn readings_stay_inside_the_scheduled_room() {
        let s = ClusterScenario::new(7, 5);
        for step in 0..64 {
            for i in 0..5 {
                let (_, rect) = s.expected_room(i, step);
                assert!(
                    rect.contains_rect(&s.reading(i, step).region),
                    "step {step} object {i}"
                );
            }
        }
    }

    #[test]
    fn objects_visit_multiple_rooms() {
        let s = ClusterScenario::new(3, 1);
        let mut rooms = std::collections::HashSet::new();
        for window in 0..8 {
            rooms.insert(
                s.expected_room(0, window * ClusterScenario::DWELL_STEPS)
                    .0
                    .clone(),
            );
        }
        assert!(rooms.len() > 1, "the schedule must move objects around");
    }

    #[test]
    fn settled_steps_are_past_the_ttl_horizon() {
        assert!(!ClusterScenario::is_settled(0));
        assert!(!ClusterScenario::is_settled(ClusterScenario::TTL_STEPS - 1));
        assert!(ClusterScenario::is_settled(ClusterScenario::TTL_STEPS));
        assert!(!ClusterScenario::is_settled(ClusterScenario::DWELL_STEPS));
    }
}
