//! Simulated sensor installations.
//!
//! Each deployed sensor watches the ground truth, produces *native*
//! events with the error characteristics of §6 (missed detections with
//! probability `1 − y`, misidentification with probability `z`,
//! badge-carrying with probability `x`), and feeds them through the real
//! `mw-sensors` adapters — so the middleware under test never sees ground
//! truth, only what the hardware would have reported.

use mw_geometry::{Circle, Point, Rect};
use mw_model::{Glob, SimDuration, SimTime, TemporalDegradation};
use mw_sensors::adapters::{
    BadgeSighting, BiometricAdapter, BiometricEvent, CardReaderAdapter, CardSwipe,
    DesktopLoginAdapter, DesktopSessionEvent, GpsAdapter, GpsFix, RfidBadgeAdapter,
    UbisenseAdapter, UbisenseSighting,
};
use mw_sensors::{Adapter, AdapterOutput, MobileObjectId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::Person;

/// Configuration of a simulated deployment over a floor plan.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Probability a person carries their badge (the paper's `x`).
    pub carry_probability: f64,
    /// Ubisense polling period, seconds (continuous tracking).
    pub ubisense_period: f64,
    /// RFID base-station polling period, seconds.
    pub rfid_period: f64,
    /// Rooms (by index into the plan's room list) covered by Ubisense.
    pub ubisense_rooms: Vec<usize>,
    /// Rooms with an RFID base station at their center.
    pub rfid_rooms: Vec<usize>,
    /// Rooms with a fingerprint reader (biometric login) at their center.
    pub biometric_rooms: Vec<usize>,
    /// Rooms guarded by a card reader at their entrance: entering the
    /// room produces a swipe (the §1.1 motivating example).
    pub card_reader_rooms: Vec<usize>,
    /// Rooms with a login workstation at their center.
    pub desktop_rooms: Vec<usize>,
    /// Outdoor regions with GPS coverage (satellite fixes for everyone
    /// carrying a receiver), with the receiver's accuracy estimate in ft.
    pub gps_regions: Vec<usize>,
    /// GPS polling period, seconds.
    pub gps_period: f64,
    /// GPS accuracy estimate in feet (the paper's example uses 15 ft).
    pub gps_accuracy_ft: f64,
    /// Ubisense reading time-to-live (default: the paper's 3 s).
    pub ubisense_ttl_secs: f64,
    /// Override of the Ubisense temporal degradation function, e.g. an
    /// empirically fitted one (`None` keeps the default linear-to-TTL).
    pub ubisense_tdf: Option<TemporalDegradation>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            carry_probability: 0.9,
            ubisense_period: 1.0,
            rfid_period: 5.0,
            ubisense_rooms: vec![0],
            rfid_rooms: vec![1],
            biometric_rooms: vec![2],
            card_reader_rooms: vec![],
            desktop_rooms: vec![],
            gps_regions: vec![],
            gps_period: 2.0,
            gps_accuracy_ft: 15.0,
            ubisense_ttl_secs: mw_sensors::adapters::UBISENSE_TTL_SECS,
            ubisense_tdf: None,
        }
    }
}

enum Installed {
    Ubisense {
        adapter: UbisenseAdapter,
        coverage: Rect,
        period: f64,
        next_due: f64,
    },
    Rfid {
        adapter: RfidBadgeAdapter,
        station: Point,
        range: f64,
        period: f64,
        next_due: f64,
    },
    Biometric {
        adapter: BiometricAdapter,
        device: Point,
        /// People currently logged in (so we emit logouts when they leave).
        logged_in: Vec<MobileObjectId>,
        room: Rect,
    },
    CardReader {
        adapter: CardReaderAdapter,
        room: Rect,
        /// People known to be inside (a swipe fires on the transition in).
        inside: Vec<MobileObjectId>,
    },
    Desktop {
        adapter: DesktopLoginAdapter,
        machine: Point,
        logged_in: Vec<MobileObjectId>,
        room: Rect,
    },
    Gps {
        adapter: GpsAdapter,
        coverage: Rect,
        accuracy: f64,
        period: f64,
        next_due: f64,
    },
}

impl std::fmt::Debug for Installed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Installed::Ubisense { coverage, .. } => {
                write!(f, "Ubisense({coverage})")
            }
            Installed::Rfid { station, range, .. } => {
                write!(f, "Rfid({station}, r={range})")
            }
            Installed::Biometric { device, .. } => write!(f, "Biometric({device})"),
            Installed::CardReader { room, .. } => write!(f, "CardReader({room})"),
            Installed::Desktop { machine, .. } => write!(f, "Desktop({machine})"),
            Installed::Gps { coverage, .. } => write!(f, "Gps({coverage})"),
        }
    }
}

/// The set of simulated sensors installed on a floor.
#[derive(Debug)]
pub struct Deployment {
    sensors: Vec<Installed>,
    carry_probability: f64,
}

impl Deployment {
    /// Installs sensors on `rooms` (the plan's walkable-room list) per the
    /// config. Out-of-range room indices are ignored.
    #[must_use]
    pub fn install(config: &DeploymentConfig, rooms: &[(String, Rect)]) -> Self {
        let mut sensors = Vec::new();
        for (k, &idx) in config.ubisense_rooms.iter().enumerate() {
            let Some((name, rect)) = rooms.get(idx) else {
                continue;
            };
            let glob: Glob = name.parse().expect("room names are globs");
            let mut adapter = UbisenseAdapter::with_parts(
                format!("ubi-adapter-{k}").as_str().into(),
                format!("Ubi-{k}").as_str().into(),
                glob,
                config.carry_probability,
            );
            adapter.set_time_to_live(SimDuration::from_secs(config.ubisense_ttl_secs));
            if let Some(tdf) = &config.ubisense_tdf {
                adapter.set_tdf(tdf.clone());
            }
            sensors.push(Installed::Ubisense {
                adapter,
                coverage: *rect,
                period: config.ubisense_period,
                next_due: 0.0,
            });
        }
        for (k, &idx) in config.rfid_rooms.iter().enumerate() {
            let Some((name, rect)) = rooms.get(idx) else {
                continue;
            };
            let glob: Glob = name.parse().expect("room names are globs");
            sensors.push(Installed::Rfid {
                adapter: RfidBadgeAdapter::with_parts(
                    format!("rf-adapter-{k}").as_str().into(),
                    format!("RF-{k}").as_str().into(),
                    glob,
                    rect.center(),
                    config.carry_probability,
                ),
                station: rect.center(),
                range: mw_sensors::adapters::RFID_RANGE_FT,
                period: config.rfid_period,
                next_due: 0.0,
            });
        }
        for (k, &idx) in config.biometric_rooms.iter().enumerate() {
            let Some((name, rect)) = rooms.get(idx) else {
                continue;
            };
            let glob: Glob = name.parse().expect("room names are globs");
            sensors.push(Installed::Biometric {
                adapter: BiometricAdapter::with_parts(
                    format!("bio-adapter-{k}").as_str().into(),
                    format!("Fp-{k}").as_str().into(),
                    glob,
                    rect.center(),
                    *rect,
                    0.2,
                ),
                device: rect.center(),
                logged_in: Vec::new(),
                room: *rect,
            });
        }
        for (k, &idx) in config.card_reader_rooms.iter().enumerate() {
            let Some((name, rect)) = rooms.get(idx) else {
                continue;
            };
            let glob: Glob = name.parse().expect("room names are globs");
            sensors.push(Installed::CardReader {
                adapter: CardReaderAdapter::with_parts(
                    format!("card-adapter-{k}").as_str().into(),
                    format!("Card-{k}").as_str().into(),
                    glob,
                    *rect,
                ),
                room: *rect,
                inside: Vec::new(),
            });
        }
        for (k, &idx) in config.desktop_rooms.iter().enumerate() {
            let Some((name, rect)) = rooms.get(idx) else {
                continue;
            };
            let glob: Glob = name.parse().expect("room names are globs");
            sensors.push(Installed::Desktop {
                adapter: DesktopLoginAdapter::with_parts(
                    format!("desk-adapter-{k}").as_str().into(),
                    format!("Desk-{k}").as_str().into(),
                    glob,
                    rect.center(),
                ),
                machine: rect.center(),
                logged_in: Vec::new(),
                room: *rect,
            });
        }
        for (k, &idx) in config.gps_regions.iter().enumerate() {
            let Some((name, rect)) = rooms.get(idx) else {
                continue;
            };
            let glob: Glob = name.parse().expect("room names are globs");
            sensors.push(Installed::Gps {
                adapter: GpsAdapter::with_parts(
                    format!("gps-adapter-{k}").as_str().into(),
                    format!("Gps-{k}").as_str().into(),
                    glob,
                    config.carry_probability,
                ),
                coverage: *rect,
                accuracy: config.gps_accuracy_ft,
                period: config.gps_period,
                next_due: 0.0,
            });
        }
        Deployment {
            sensors,
            carry_probability: config.carry_probability,
        }
    }

    /// The carry probability people should be sampled with.
    #[must_use]
    pub fn carry_probability(&self) -> f64 {
        self.carry_probability
    }

    /// Number of installed sensors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// Returns `true` when nothing is installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }

    /// Polls every due sensor against the ground truth at `now`; returns
    /// the adapter outputs to ingest.
    pub fn poll(
        &mut self,
        people: &[Person],
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<AdapterOutput> {
        let mut outputs = Vec::new();
        let t = now.as_secs();
        for sensor in &mut self.sensors {
            match sensor {
                Installed::Ubisense {
                    adapter,
                    coverage,
                    period,
                    next_due,
                } => {
                    if t + 1e-9 < *next_due {
                        continue;
                    }
                    *next_due = t + *period;
                    for person in people {
                        if !person.carries_badge || !coverage.contains_point(person.position) {
                            continue;
                        }
                        // Detected with probability y = 0.95; position
                        // jittered within the 6-inch resolution.
                        if rng.gen_bool(0.95) {
                            let jitter = Point::new(
                                person.position.x + rng.gen_range(-0.5..0.5),
                                person.position.y + rng.gen_range(-0.5..0.5),
                            );
                            outputs.push(adapter.translate(
                                UbisenseSighting {
                                    tag: person.id.clone(),
                                    position: jitter,
                                },
                                now,
                            ));
                        } else if rng.gen_bool(0.05) {
                            // Misdetection: wildly wrong position inside
                            // the coverage area.
                            let wild = Point::new(
                                rng.gen_range(coverage.min().x..coverage.max().x),
                                rng.gen_range(coverage.min().y..coverage.max().y),
                            );
                            outputs.push(adapter.translate(
                                UbisenseSighting {
                                    tag: person.id.clone(),
                                    position: wild,
                                },
                                now,
                            ));
                        }
                    }
                }
                Installed::Rfid {
                    adapter,
                    station,
                    range,
                    period,
                    next_due,
                } => {
                    if t + 1e-9 < *next_due {
                        continue;
                    }
                    *next_due = t + *period;
                    let disk = Circle::new(*station, *range);
                    for person in people {
                        if !person.carries_badge || !disk.contains_point(person.position) {
                            continue;
                        }
                        // Detected with probability y = 0.75.
                        if rng.gen_bool(0.75) {
                            outputs.push(adapter.translate(
                                BadgeSighting {
                                    badge: person.id.clone(),
                                },
                                now,
                            ));
                        }
                    }
                }
                Installed::CardReader {
                    adapter,
                    room,
                    inside,
                } => {
                    for person in people {
                        let now_inside = room.contains_point(person.position);
                        let was_inside = inside.contains(&person.id);
                        if now_inside && !was_inside {
                            inside.push(person.id.clone());
                            // Swiping requires the card; the person's ID
                            // badge is assumed on hand at the door (x = 1
                            // in the paper's card-reader model), but the
                            // reader misreads occasionally (y = 0.98).
                            if rng.gen_bool(0.98) {
                                outputs.push(adapter.translate(
                                    CardSwipe {
                                        user: person.id.clone(),
                                    },
                                    now,
                                ));
                            }
                        } else if !now_inside && was_inside {
                            inside.retain(|id| id != &person.id);
                        }
                    }
                }
                Installed::Desktop {
                    adapter,
                    machine,
                    logged_in,
                    room,
                } => {
                    for person in people {
                        let near = person.position.distance(*machine) <= 3.0;
                        let in_room = room.contains_point(person.position);
                        let is_logged_in = logged_in.contains(&person.id);
                        if near && !is_logged_in && rng.gen_bool(0.3) {
                            logged_in.push(person.id.clone());
                            outputs.push(adapter.translate(
                                DesktopSessionEvent::Login {
                                    user: person.id.clone(),
                                },
                                now,
                            ));
                        } else if near && is_logged_in {
                            // Activity keep-alives while working.
                            outputs.push(adapter.translate(
                                DesktopSessionEvent::Activity {
                                    user: person.id.clone(),
                                },
                                now,
                            ));
                        } else if !in_room && is_logged_in {
                            logged_in.retain(|id| id != &person.id);
                            // Sessions lock on departure (screensaver).
                            outputs.push(adapter.translate(
                                DesktopSessionEvent::Logout {
                                    user: person.id.clone(),
                                },
                                now,
                            ));
                        }
                    }
                }
                Installed::Gps {
                    adapter,
                    coverage,
                    accuracy,
                    period,
                    next_due,
                } => {
                    if t + 1e-9 < *next_due {
                        continue;
                    }
                    *next_due = t + *period;
                    for person in people {
                        if !person.carries_badge || !coverage.contains_point(person.position) {
                            continue;
                        }
                        // A fix succeeds with the GPS spec's y = 0.99;
                        // position error within the accuracy estimate.
                        if rng.gen_bool(0.99) {
                            let err = *accuracy;
                            let jitter = Point::new(
                                person.position.x + rng.gen_range(-err..err) * 0.5,
                                person.position.y + rng.gen_range(-err..err) * 0.5,
                            );
                            outputs.push(adapter.translate(
                                GpsFix {
                                    device: person.id.clone(),
                                    position: jitter,
                                    accuracy: err,
                                },
                                now,
                            ));
                        }
                    }
                }
                Installed::Biometric {
                    adapter,
                    device,
                    logged_in,
                    room,
                } => {
                    // Logins: a person near the device who is not logged
                    // in authenticates with some probability (they came to
                    // use the machine).
                    for person in people {
                        let near = person.position.distance(*device) <= 2.0;
                        let inside = room.contains_point(person.position);
                        let is_logged_in = logged_in.contains(&person.id);
                        if near && !is_logged_in && rng.gen_bool(0.5) {
                            logged_in.push(person.id.clone());
                            outputs.push(adapter.translate(
                                BiometricEvent::Login {
                                    user: person.id.clone(),
                                },
                                now,
                            ));
                        } else if !inside && is_logged_in {
                            // Left the room: 50% chance they remembered to
                            // log out (the paper: "people often forget").
                            logged_in.retain(|id| id != &person.id);
                            if rng.gen_bool(0.5) {
                                outputs.push(adapter.translate(
                                    BiometricEvent::Logout {
                                        user: person.id.clone(),
                                    },
                                    now,
                                ));
                            }
                        }
                    }
                }
            }
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::paper_floor;
    use rand::SeedableRng;

    fn people_at(positions: &[(f64, f64)]) -> Vec<Person> {
        positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                Person::new(format!("p{i}").as_str().into(), Point::new(x, y), true)
            })
            .collect()
    }

    #[test]
    fn install_default_deployment() {
        let plan = paper_floor();
        let d = Deployment::install(&DeploymentConfig::default(), &plan.rooms);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.carry_probability(), 0.9);
    }

    #[test]
    fn out_of_range_rooms_ignored() {
        let plan = paper_floor();
        let config = DeploymentConfig {
            ubisense_rooms: vec![999],
            rfid_rooms: vec![999],
            biometric_rooms: vec![999],
            ..DeploymentConfig::default()
        };
        let d = Deployment::install(&config, &plan.rooms);
        assert!(d.is_empty());
    }

    #[test]
    fn ubisense_sees_person_in_coverage() {
        let plan = paper_floor();
        // Room list is sorted by name; index 0 is "CS/Floor3/3105".
        assert_eq!(plan.rooms[0].0, "CS/Floor3/3105");
        let config = DeploymentConfig {
            ubisense_rooms: vec![0],
            rfid_rooms: vec![],
            biometric_rooms: vec![],
            ..DeploymentConfig::default()
        };
        let mut d = Deployment::install(&config, &plan.rooms);
        let mut rng = StdRng::seed_from_u64(1);
        let people = people_at(&[(340.0, 15.0)]); // inside 3105
        let mut total = 0;
        for step in 0..20 {
            let outs = d.poll(&people, SimTime::from_secs(step as f64), &mut rng);
            total += outs.iter().map(|o| o.readings.len()).sum::<usize>();
        }
        // y = 0.95: nearly every poll produces a reading.
        assert!(total >= 15, "only {total} readings in 20 polls");
    }

    #[test]
    fn person_without_badge_is_invisible_to_badge_sensors() {
        let plan = paper_floor();
        let config = DeploymentConfig {
            ubisense_rooms: vec![0],
            rfid_rooms: vec![0],
            biometric_rooms: vec![],
            ..DeploymentConfig::default()
        };
        let mut d = Deployment::install(&config, &plan.rooms);
        let mut rng = StdRng::seed_from_u64(1);
        let mut person = Person::new("noband".into(), Point::new(340.0, 15.0), true);
        person.carries_badge = false;
        let outs = d.poll(std::slice::from_ref(&person), SimTime::ZERO, &mut rng);
        assert!(outs.iter().all(|o| o.readings.is_empty()));
    }

    #[test]
    fn polling_respects_period() {
        let plan = paper_floor();
        let config = DeploymentConfig {
            ubisense_rooms: vec![0],
            rfid_rooms: vec![],
            biometric_rooms: vec![],
            ubisense_period: 10.0,
            ..DeploymentConfig::default()
        };
        let mut d = Deployment::install(&config, &plan.rooms);
        let mut rng = StdRng::seed_from_u64(1);
        // Many people in coverage so a fully-empty poll is (0.05)^20-rare.
        let positions: Vec<(f64, f64)> =
            (0..20).map(|i| (331.0 + (i as f64) * 0.9, 15.0)).collect();
        let people = people_at(&positions);
        // First poll at t=0 fires; t=1..9 must be quiet.
        let first = d.poll(&people, SimTime::ZERO, &mut rng);
        assert!(!first.is_empty());
        for t in 1..10 {
            let outs = d.poll(&people, SimTime::from_secs(t as f64), &mut rng);
            assert!(outs.is_empty(), "unexpected poll at t={t}");
        }
        let again = d.poll(&people, SimTime::from_secs(10.0), &mut rng);
        assert!(!again.is_empty());
    }

    #[test]
    fn card_reader_fires_on_entry_only() {
        let plan = paper_floor();
        let config = DeploymentConfig {
            ubisense_rooms: vec![],
            rfid_rooms: vec![],
            biometric_rooms: vec![],
            card_reader_rooms: vec![0], // CS/Floor3/3105
            ..DeploymentConfig::default()
        };
        let mut d = Deployment::install(&config, &plan.rooms);
        let mut rng = StdRng::seed_from_u64(8);
        let mut person = Person::new("alice".into(), Point::new(320.0, 15.0), true); // corridor
                                                                                     // Outside: nothing.
        let outs = d.poll(std::slice::from_ref(&person), SimTime::ZERO, &mut rng);
        assert!(outs.is_empty());
        // Enter the room: one swipe (y = 0.98, seed 8 passes).
        person.position = Point::new(340.0, 15.0);
        let outs = d.poll(
            std::slice::from_ref(&person),
            SimTime::from_secs(1.0),
            &mut rng,
        );
        let readings: usize = outs.iter().map(|o| o.readings.len()).sum();
        assert_eq!(readings, 1);
        // Dwelling inside: no repeat swipe.
        let outs = d.poll(
            std::slice::from_ref(&person),
            SimTime::from_secs(2.0),
            &mut rng,
        );
        assert!(outs.is_empty());
        // Leave and re-enter: swipes again (eventually; allow misreads).
        person.position = Point::new(320.0, 15.0);
        let _ = d.poll(
            std::slice::from_ref(&person),
            SimTime::from_secs(3.0),
            &mut rng,
        );
        person.position = Point::new(340.0, 15.0);
        let outs = d.poll(
            std::slice::from_ref(&person),
            SimTime::from_secs(4.0),
            &mut rng,
        );
        let readings: usize = outs.iter().map(|o| o.readings.len()).sum();
        assert!(readings <= 1);
    }

    #[test]
    fn desktop_session_lifecycle() {
        let plan = paper_floor();
        let config = DeploymentConfig {
            ubisense_rooms: vec![],
            rfid_rooms: vec![],
            biometric_rooms: vec![],
            desktop_rooms: vec![0],
            ..DeploymentConfig::default()
        };
        let mut d = Deployment::install(&config, &plan.rooms);
        let mut rng = StdRng::seed_from_u64(4);
        let machine = plan.rooms[0].1.center();
        let mut person = Person::new("carol".into(), machine, true);
        // Poll until login (p = 0.3 per poll).
        let mut logged_in = false;
        for t in 0..30 {
            let outs = d.poll(
                std::slice::from_ref(&person),
                SimTime::from_secs(t as f64),
                &mut rng,
            );
            if outs.iter().any(|o| !o.readings.is_empty()) {
                logged_in = true;
                break;
            }
        }
        assert!(logged_in, "no desktop login in 30 polls");
        // Leaving the room locks the session (a revocation).
        person.position = Point::new(10.0, 90.0);
        let outs = d.poll(
            std::slice::from_ref(&person),
            SimTime::from_secs(60.0),
            &mut rng,
        );
        assert!(outs.iter().any(|o| !o.revocations.is_empty()));
    }

    #[test]
    fn gps_covers_the_campus_quad() {
        let plan = crate::building::campus();
        // Rooms sorted: LibraryLobby, Quad, SiebelLobby.
        let quad_idx = plan
            .rooms
            .iter()
            .position(|(n, _)| n.ends_with("Quad"))
            .unwrap();
        let config = DeploymentConfig {
            ubisense_rooms: vec![],
            rfid_rooms: vec![],
            biometric_rooms: vec![],
            gps_regions: vec![quad_idx],
            carry_probability: 1.0,
            ..DeploymentConfig::default()
        };
        let mut d = Deployment::install(&config, &plan.rooms);
        let mut rng = StdRng::seed_from_u64(2);
        // Outdoors: fixes arrive.
        let outdoor = Person::new("van".into(), Point::new(500.0, 200.0), true);
        let outs = d.poll(std::slice::from_ref(&outdoor), SimTime::ZERO, &mut rng);
        let fixes: usize = outs.iter().map(|o| o.readings.len()).sum();
        assert_eq!(fixes, 1);
        // The fix's region is the accuracy square (2×15 ft wide). The
        // width is computed as `(center + 15) - (center - 15)`, which is
        // only approximately 30 for an arbitrary noisy center coordinate.
        assert!((outs[0].readings[0].region.width() - 30.0).abs() < 1e-9);
        // Indoors: no satellite lock.
        let indoor = Person::new("desk".into(), Point::new(200.0, 50.0), true);
        let outs = d.poll(
            std::slice::from_ref(&indoor),
            SimTime::from_secs(10.0),
            &mut rng,
        );
        assert!(outs.iter().all(|o| o.readings.is_empty()));
    }

    #[test]
    fn biometric_login_and_logout_cycle() {
        let plan = paper_floor();
        // Index 2 is "CS/Floor3/HCILab" after sorting? Order:
        // 3105, HCILab, LabCorridor, MainCorridor, NetLab.
        assert_eq!(plan.rooms[1].0, "CS/Floor3/HCILab");
        let config = DeploymentConfig {
            ubisense_rooms: vec![],
            rfid_rooms: vec![],
            biometric_rooms: vec![1],
            ..DeploymentConfig::default()
        };
        let mut d = Deployment::install(&config, &plan.rooms);
        let mut rng = StdRng::seed_from_u64(3);
        let device = plan.rooms[1].1.center();
        let mut person = Person::new("alice".into(), device, true);
        // Poll until a login occurs (gen_bool(0.5) per poll).
        let mut login_seen = false;
        for t in 0..20 {
            let outs = d.poll(
                std::slice::from_ref(&person),
                SimTime::from_secs(t as f64),
                &mut rng,
            );
            if outs.iter().any(|o| o.readings.len() == 2) {
                login_seen = true;
                break;
            }
        }
        assert!(login_seen, "no login in 20 polls");
        // Move far away: a logout (or silent departure) occurs.
        person.position = Point::new(10.0, 90.0);
        let mut revocation_or_nothing = false;
        for t in 20..40 {
            let outs = d.poll(
                std::slice::from_ref(&person),
                SimTime::from_secs(t as f64),
                &mut rng,
            );
            if outs.iter().any(|o| !o.revocations.is_empty()) {
                revocation_or_nothing = true;
                break;
            }
        }
        // Either they logged out (revocation) or forgot (nothing) — both
        // valid; but the logged_in list must have been cleared, so a
        // re-approach can log in again.
        let _ = revocation_or_nothing;
        person.position = device;
        let mut relogin = false;
        for t in 40..80 {
            let outs = d.poll(
                std::slice::from_ref(&person),
                SimTime::from_secs(t as f64),
                &mut rng,
            );
            if outs.iter().any(|o| o.readings.len() == 2) {
                relogin = true;
                break;
            }
        }
        assert!(relogin, "person could not log in again");
    }
}
