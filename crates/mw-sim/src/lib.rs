//! Deterministic simulator for the MiddleWhere reproduction.
//!
//! The paper evaluates MiddleWhere on a real deployment: Ubisense, RFID
//! badges, fingerprint readers and GPS sensing real people on the third
//! floor of the Siebel Center. This crate replaces the physical world with
//! a seeded simulation that exercises exactly the same code paths:
//!
//! - [`building`] — the paper's floor plan (Figure 8 / Table 1) and
//!   parameterized synthetic floors for scaling experiments,
//! - [`City`] — the city-scale workload generator (multi-building floor
//!   graphs, Zipf occupancy, diurnal/rush-hour/evacuation movement) for
//!   the 10⁵-object benchmarks of DESIGN.md §14,
//! - [`Person`] — ground-truth people doing random-waypoint movement
//!   through the route graph (rooms, doors, corridors),
//! - [`Deployment`] — simulated sensor installations that observe people
//!   with the error characteristics of §6 and feed native events through
//!   the real `mw-sensors` adapters,
//! - [`Simulation`] — the orchestrator: advances the clock, moves people,
//!   polls sensors, ingests readings into a real [`LocationService`], and
//!   keeps ground truth around so experiments can score accuracy.
//!
//! Everything is driven by a single `u64` seed; the same seed reproduces
//! the same experiment bit-for-bit.
//!
//! [`LocationService`]: mw_core::LocationService

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod building;
pub mod byzantine;
pub mod calibration;
pub mod city;
pub mod cluster;
mod deployment;
mod person;
mod simulation;
pub mod zipf;

pub use building::FloorPlan;
pub use byzantine::{ByzantineAdapter, ByzantineMode};
pub use calibration::{fit_tdf, CarryProbabilityEstimator, FittedTdf};
pub use city::{City, CityConfig};
pub use cluster::ClusterScenario;
pub use deployment::{Deployment, DeploymentConfig};
pub use person::Person;
pub use simulation::{AccuracyStats, CalibrationBucket, SimConfig, Simulation};
