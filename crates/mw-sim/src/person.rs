use std::collections::VecDeque;

use mw_core::WorldModel;
use mw_geometry::Point;
use mw_model::SimDuration;
use mw_sensors::MobileObjectId;
use rand::rngs::StdRng;
use rand::Rng;

/// Typical indoor walking speed, in ft/s.
pub const WALKING_SPEED_FT_S: f64 = 4.0;

/// A ground-truth person doing random-waypoint movement through the route
/// graph: pick a random room, walk to it through the doors, dwell, repeat.
#[derive(Debug, Clone)]
pub struct Person {
    /// The person's badge/tag identity as sensors see it.
    pub id: MobileObjectId,
    /// Ground-truth position (building coordinates, feet).
    pub position: Point,
    /// Whether the person is carrying their badge today (sampled once per
    /// person from the deployment's carry probability; the paper's `x`).
    pub carries_badge: bool,
    speed: f64,
    waypoints: VecDeque<Point>,
    dwell_remaining: f64,
}

impl Person {
    /// Creates a person standing at `position`.
    #[must_use]
    pub fn new(id: MobileObjectId, position: Point, carries_badge: bool) -> Self {
        Person {
            id,
            position,
            carries_badge,
            speed: WALKING_SPEED_FT_S,
            waypoints: VecDeque::new(),
            dwell_remaining: 0.0,
        }
    }

    /// Returns `true` while the person is between waypoints.
    #[must_use]
    pub fn is_walking(&self) -> bool {
        !self.waypoints.is_empty()
    }

    /// Advances the person by `dt`: dwell, or walk along the current
    /// waypoint chain; picks a new destination when idle.
    pub fn step(
        &mut self,
        dt: SimDuration,
        world: &WorldModel,
        rooms: &[(String, mw_geometry::Rect)],
        rng: &mut StdRng,
    ) {
        let mut remaining = dt.as_secs();
        while remaining > 0.0 {
            if self.dwell_remaining > 0.0 {
                let pause = self.dwell_remaining.min(remaining);
                self.dwell_remaining -= pause;
                remaining -= pause;
                continue;
            }
            match self.waypoints.front() {
                None => {
                    self.plan_trip(world, rooms, rng);
                    if self.waypoints.is_empty() {
                        // Nowhere to go (single-room world): dwell.
                        self.dwell_remaining = 5.0;
                    }
                }
                Some(&target) => {
                    let dist = self.position.distance(target);
                    let step = self.speed * remaining;
                    if step >= dist {
                        self.position = target;
                        self.waypoints.pop_front();
                        remaining -= if self.speed > 0.0 {
                            dist / self.speed
                        } else {
                            remaining
                        };
                        if self.waypoints.is_empty() {
                            // Arrived: dwell 10–60 s before the next trip.
                            self.dwell_remaining = rng.gen_range(10.0..60.0);
                        }
                    } else {
                        let t = step / dist;
                        self.position = self.position.lerp(target, t);
                        remaining = 0.0;
                    }
                }
            }
        }
    }

    /// Plans a walk to a uniformly random room through the route graph.
    fn plan_trip(
        &mut self,
        world: &WorldModel,
        rooms: &[(String, mw_geometry::Rect)],
        rng: &mut StdRng,
    ) {
        if rooms.is_empty() {
            return;
        }
        let graph = world.route_graph();
        let Some(here) = graph.locate(self.position) else {
            // Off the map (shouldn't happen): jump to the first room.
            self.position = rooms[0].1.center();
            return;
        };
        let (target_name, target_rect) = &rooms[rng.gen_range(0..rooms.len())];
        let Some(target_node) = graph.find(target_name) else {
            return;
        };
        let Ok(Some((_dist, path))) = graph.shortest_path(here, target_node, true) else {
            return;
        };
        // Waypoints: door midpoints between consecutive rooms, then a
        // random point inside the destination.
        let mut waypoints = VecDeque::new();
        for window in path.windows(2) {
            let ra = graph.region(window[0]).expect("path node");
            let rb = graph.region(window[1]).expect("path node");
            // The door between ra and rb: the passage touching both.
            if let Some(door) = world.passages().iter().find(|p| p.connects(&ra, &rb)) {
                waypoints.push_back(door.segment.midpoint());
            } else {
                waypoints.push_back(ra.center().midpoint(rb.center()));
            }
        }
        let inside = Point::new(
            rng.gen_range(target_rect.min().x + 1.0..target_rect.max().x - 1.0),
            rng.gen_range(target_rect.min().y + 1.0..target_rect.max().y - 1.0),
        );
        waypoints.push_back(inside);
        self.waypoints = waypoints;
        self.dwell_remaining = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::paper_floor;
    use rand::SeedableRng;

    fn setup() -> (WorldModel, Vec<(String, mw_geometry::Rect)>, StdRng) {
        let plan = paper_floor();
        let world = WorldModel::from_database(&plan.db);
        (world, plan.rooms, StdRng::seed_from_u64(42))
    }

    #[test]
    fn person_moves_deterministically() {
        let (world, rooms, _) = setup();
        let start = Point::new(340.0, 15.0); // inside 3105
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut p1 = Person::new("alice".into(), start, true);
        let mut p2 = Person::new("alice".into(), start, true);
        for _ in 0..100 {
            p1.step(SimDuration::from_secs(1.0), &world, &rooms, &mut rng1);
            p2.step(SimDuration::from_secs(1.0), &world, &rooms, &mut rng2);
        }
        assert_eq!(p1.position, p2.position);
    }

    #[test]
    fn person_eventually_changes_rooms() {
        let (world, rooms, mut rng) = setup();
        let start = Point::new(340.0, 15.0);
        let mut p = Person::new("alice".into(), start, true);
        let mut visited = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            p.step(SimDuration::from_secs(1.0), &world, &rooms, &mut rng);
            if let Some(g) = world.symbolic_at(p.position) {
                visited.insert(g.to_string());
            }
        }
        assert!(
            visited.len() >= 2,
            "person never left the room: {visited:?}"
        );
    }

    #[test]
    fn person_stays_on_the_floor() {
        let (world, rooms, mut rng) = setup();
        let universe = mw_geometry::Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 100.0));
        let mut p = Person::new("bob".into(), Point::new(320.0, 15.0), true);
        for _ in 0..1000 {
            p.step(SimDuration::from_secs(0.5), &world, &rooms, &mut rng);
            assert!(
                universe.contains_point(p.position),
                "escaped to {}",
                p.position
            );
        }
    }

    #[test]
    fn speed_is_plausible() {
        let (world, rooms, mut rng) = setup();
        let mut p = Person::new("carol".into(), Point::new(340.0, 15.0), true);
        let before = p.position;
        p.step(SimDuration::from_secs(1.0), &world, &rooms, &mut rng);
        // In one second a walker covers at most speed + epsilon.
        assert!(p.position.distance(before) <= WALKING_SPEED_FT_S + 1e-9);
    }
}
