use std::sync::Arc;

use mw_bus::Broker;
use mw_core::{LocationService, Notification, WorldModel};
use mw_geometry::Point;
use mw_model::{SimDuration, SimTime};
use mw_sensors::MobileObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::building::FloorPlan;
use crate::{Deployment, DeploymentConfig, Person};

/// Configuration of an end-to-end simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed driving every random decision (movement, sensor noise).
    pub seed: u64,
    /// Number of simulated people.
    pub people: usize,
    /// The sensor deployment.
    pub deployment: DeploymentConfig,
    /// Fusion-engine motion model: ft/s by which aging readings' regions
    /// grow (0 = the paper's model, no growth).
    pub aging_inflation_ft_per_s: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            people: 3,
            deployment: DeploymentConfig::default(),
            aging_inflation_ft_per_s: 0.0,
        }
    }
}

/// An end-to-end simulation: ground-truth people + simulated sensors +
/// the real Location Service.
///
/// # Example
///
/// ```
/// use mw_sim::{building, SimConfig, Simulation};
/// use mw_model::SimDuration;
///
/// let mut sim = Simulation::new(building::paper_floor(), SimConfig::default());
/// for _ in 0..10 {
///     sim.step(SimDuration::from_secs(1.0));
/// }
/// // Everyone who carries a badge near a sensor eventually gets located.
/// let located = sim.people().iter().filter(|p| {
///     sim.service().locate(&p.id, sim.clock()).is_ok()
/// }).count();
/// let _ = located;
/// ```
#[derive(Debug)]
pub struct Simulation {
    service: Arc<LocationService>,
    broker: Broker,
    world: WorldModel,
    rooms: Vec<(String, mw_geometry::Rect)>,
    people: Vec<Person>,
    deployment: Deployment,
    clock: SimTime,
    rng: StdRng,
}

impl Simulation {
    /// Builds a simulation over `plan` with `config`.
    #[must_use]
    pub fn new(plan: FloorPlan, config: SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let broker = Broker::new();
        let world = WorldModel::from_database(&plan.db);
        let deployment = Deployment::install(&config.deployment, &plan.rooms);
        let engine = mw_fusion::FusionEngine::new(plan.universe)
            .with_aging_inflation(config.aging_inflation_ft_per_s);
        let service = LocationService::new_with_engine(plan.db, engine, &broker);

        // Spawn people in random rooms.
        let mut people = Vec::with_capacity(config.people);
        for i in 0..config.people {
            let (_, room) = &plan.rooms[rng.gen_range(0..plan.rooms.len())];
            let position = Point::new(
                rng.gen_range(room.min().x + 1.0..room.max().x - 1.0),
                rng.gen_range(room.min().y + 1.0..room.max().y - 1.0),
            );
            let carries = rng.gen_bool(config.deployment.carry_probability.clamp(0.0, 1.0));
            people.push(Person::new(
                format!("person-{i}").as_str().into(),
                position,
                carries,
            ));
        }

        Simulation {
            service,
            broker,
            world,
            rooms: plan.rooms,
            people,
            deployment,
            clock: SimTime::ZERO,
            rng,
        }
    }

    /// The Location Service under test.
    #[must_use]
    pub fn service(&self) -> &Arc<LocationService> {
        &self.service
    }

    /// The bus (subscribe to [`mw_core::NOTIFICATION_TOPIC`] for push
    /// notifications).
    #[must_use]
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The simulation clock.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Ground-truth people.
    #[must_use]
    pub fn people(&self) -> &[Person] {
        &self.people
    }

    /// The walkable rooms of the plan.
    #[must_use]
    pub fn rooms(&self) -> &[(String, mw_geometry::Rect)] {
        &self.rooms
    }

    /// Ground truth for one person.
    #[must_use]
    pub fn ground_truth(&self, id: &MobileObjectId) -> Option<Point> {
        self.people.iter().find(|p| &p.id == id).map(|p| p.position)
    }

    /// Advances the simulation by `dt`: moves people, polls sensors, and
    /// ingests the outputs. Returns all notifications fired during the
    /// step.
    pub fn step(&mut self, dt: SimDuration) -> Vec<Notification> {
        self.clock += dt;
        for person in &mut self.people {
            person.step(dt, &self.world, &self.rooms, &mut self.rng);
        }
        let outputs = self
            .deployment
            .poll(&self.people, self.clock, &mut self.rng);
        let mut fired = Vec::new();
        for output in outputs {
            fired.extend(self.service.ingest(output, self.clock));
        }
        fired
    }

    /// Runs a simulated *user study* of room-dwell behaviour (the paper's
    /// §11 future work): whenever ground truth shows a person entering a
    /// walkable room, samples whether they are still inside `probe_ages`
    /// seconds later. The samples feed [`crate::fit_tdf`] to derive an
    /// empirical temporal degradation function for swipe-style readings.
    pub fn run_dwell_study(
        &mut self,
        steps: usize,
        dt: SimDuration,
        probe_ages: &[f64],
    ) -> Vec<(f64, bool)> {
        use std::collections::HashMap;
        // (person, room index) -> entry time, plus a positional log.
        let mut inside: HashMap<(usize, usize), SimTime> = HashMap::new();
        let mut entries: Vec<(usize, usize, SimTime)> = Vec::new();
        let mut log: Vec<Vec<Point>> = vec![Vec::new(); self.people.len()];

        for _ in 0..steps {
            self.step(dt);
            for (pi, person) in self.people.iter().enumerate() {
                log[pi].push(person.position);
                for (ri, (_, rect)) in self.rooms.iter().enumerate() {
                    let key = (pi, ri);
                    let is_in = rect.contains_point(person.position);
                    match (inside.contains_key(&key), is_in) {
                        (false, true) => {
                            inside.insert(key, self.clock);
                            entries.push((pi, ri, self.clock));
                        }
                        (true, false) => {
                            inside.remove(&key);
                        }
                        _ => {}
                    }
                }
            }
        }

        // Resolve the probes against the positional log.
        let mut samples = Vec::new();
        let step_secs = dt.as_secs();
        for (pi, ri, entered) in entries {
            let rect = self.rooms[ri].1;
            for &age in probe_ages {
                let probe_time = entered.as_secs() + age;
                let idx = (probe_time / step_secs).round() as usize;
                if idx == 0 || idx > log[pi].len() {
                    continue; // probe beyond the simulated horizon
                }
                let pos = log[pi][idx - 1];
                samples.push((age, rect.contains_point(pos)));
            }
        }
        samples
    }

    /// Runs `steps` steps of `dt` each, scoring localization accuracy:
    /// for every person the service can locate, measures the distance
    /// between the estimate's center and ground truth, and whether the
    /// ground truth actually lies inside the estimate.
    pub fn run_accuracy_trial(&mut self, steps: usize, dt: SimDuration) -> AccuracyStats {
        let mut stats = AccuracyStats::default();
        for _ in 0..steps {
            self.step(dt);
            for person in &self.people {
                let Ok(fix) = self.service.locate(&person.id, self.clock) else {
                    stats.unlocated += 1;
                    continue;
                };
                stats.located += 1;
                stats.total_error += fix.region.center().distance(person.position);
                if fix.region.contains_point(person.position) {
                    stats.contained += 1;
                }
                stats.total_probability += fix.probability;
            }
        }
        stats
    }

    /// Posterior-calibration study: are the fusion probabilities *honest*?
    /// For every room-probability query, records the predicted probability
    /// bucket against whether the ground truth actually was in the room;
    /// a well-calibrated posterior makes the empirical rate track the
    /// bucket midpoint.
    ///
    /// Returns one [`CalibrationBucket`] per non-empty probability decile.
    pub fn run_posterior_calibration(
        &mut self,
        steps: usize,
        dt: SimDuration,
    ) -> Vec<CalibrationBucket> {
        let mut hits = [0usize; 10];
        let mut totals = [0usize; 10];
        let mut prob_sums = [0.0f64; 10];
        let rooms: Vec<(String, mw_geometry::Rect)> = self.rooms.clone();
        for _ in 0..steps {
            self.step(dt);
            for person in self.people.clone() {
                for (_, rect) in &rooms {
                    let p = self
                        .service
                        .query(
                            mw_core::LocationQuery::of(person.id.clone())
                                .in_rect(*rect)
                                .at(self.clock),
                        )
                        .ok()
                        .and_then(|a| a.probability())
                        .unwrap_or(0.0);
                    if p <= 0.0 {
                        continue; // untracked or impossible: skip
                    }
                    let bucket = ((p * 10.0).floor() as usize).min(9);
                    totals[bucket] += 1;
                    prob_sums[bucket] += p;
                    if rect.contains_point(person.position) {
                        hits[bucket] += 1;
                    }
                }
            }
        }
        (0..10)
            .filter(|&b| totals[b] > 0)
            .map(|b| CalibrationBucket {
                predicted_mean: prob_sums[b] / totals[b] as f64,
                empirical_rate: hits[b] as f64 / totals[b] as f64,
                samples: totals[b],
            })
            .collect()
    }
}

/// One probability decile of [`Simulation::run_posterior_calibration`].
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationBucket {
    /// Mean predicted probability of the queries in this decile.
    pub predicted_mean: f64,
    /// Fraction of those queries where ground truth was actually inside.
    pub empirical_rate: f64,
    /// Number of queries in the decile.
    pub samples: usize,
}

/// Accuracy statistics from [`Simulation::run_accuracy_trial`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccuracyStats {
    /// Person-steps where the service produced a fix.
    pub located: usize,
    /// Person-steps with no live location information.
    pub unlocated: usize,
    /// Fixes whose region contained the ground truth.
    pub contained: usize,
    /// Sum of center-to-truth distances over located person-steps.
    pub total_error: f64,
    /// Sum of fix probabilities over located person-steps.
    pub total_probability: f64,
}

impl AccuracyStats {
    /// Mean center-to-truth distance (feet).
    #[must_use]
    pub fn mean_error(&self) -> f64 {
        if self.located == 0 {
            f64::NAN
        } else {
            self.total_error / self.located as f64
        }
    }

    /// Fraction of fixes whose region contained the ground truth.
    #[must_use]
    pub fn containment_rate(&self) -> f64 {
        if self.located == 0 {
            f64::NAN
        } else {
            self.contained as f64 / self.located as f64
        }
    }

    /// Fraction of person-steps with a fix at all.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.located + self.unlocated;
        if total == 0 {
            f64::NAN
        } else {
            self.located as f64 / total as f64
        }
    }

    /// Mean posterior over located person-steps.
    #[must_use]
    pub fn mean_probability(&self) -> f64 {
        if self.located == 0 {
            f64::NAN
        } else {
            self.total_probability / self.located as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building;

    #[test]
    fn simulation_is_deterministic() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                building::paper_floor(),
                SimConfig {
                    seed,
                    people: 3,
                    deployment: DeploymentConfig::default(),
                    aging_inflation_ft_per_s: 0.0,
                },
            );
            let mut trace = Vec::new();
            for _ in 0..60 {
                sim.step(SimDuration::from_secs(1.0));
                for p in sim.people() {
                    trace.push((p.id.clone(), p.position));
                }
            }
            trace
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn sensors_eventually_locate_people() {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 42,
                people: 4,
                // Cover every room with Ubisense for this test.
                deployment: DeploymentConfig {
                    ubisense_rooms: vec![0, 1, 2, 3, 4],
                    rfid_rooms: vec![],
                    biometric_rooms: vec![],
                    carry_probability: 1.0,
                    ..DeploymentConfig::default()
                },
                aging_inflation_ft_per_s: 0.0,
            },
        );
        for _ in 0..30 {
            sim.step(SimDuration::from_secs(1.0));
        }
        let located = sim
            .people()
            .iter()
            .filter(|p| sim.service().locate(&p.id, sim.clock()).is_ok())
            .count();
        assert!(located >= 3, "only {located}/4 located");
    }

    #[test]
    fn accuracy_trial_reports_sane_numbers() {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 1,
                people: 3,
                deployment: DeploymentConfig {
                    ubisense_rooms: vec![0, 1, 2, 3, 4],
                    rfid_rooms: vec![],
                    biometric_rooms: vec![],
                    carry_probability: 1.0,
                    ..DeploymentConfig::default()
                },
                aging_inflation_ft_per_s: 0.0,
            },
        );
        let stats = sim.run_accuracy_trial(60, SimDuration::from_secs(1.0));
        assert!(stats.located > 0);
        assert!(stats.coverage() > 0.5, "coverage {}", stats.coverage());
        // Ubisense everywhere: mean error within a few feet (movement
        // between the reading and the query step adds walking distance).
        assert!(
            stats.mean_error() < 10.0,
            "mean error {}",
            stats.mean_error()
        );
        assert!(stats.mean_probability() > 0.3);
    }

    #[test]
    fn notifications_fire_during_simulation() {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 5,
                people: 5,
                deployment: DeploymentConfig {
                    ubisense_rooms: vec![0, 1, 2, 3, 4],
                    rfid_rooms: vec![],
                    biometric_rooms: vec![],
                    carry_probability: 1.0,
                    ..DeploymentConfig::default()
                },
                aging_inflation_ft_per_s: 0.0,
            },
        );
        // Watch the corridor with a low threshold.
        let corridor = sim
            .rooms()
            .iter()
            .find(|(n, _)| n.ends_with("MainCorridor"))
            .unwrap()
            .1;
        let _id = sim
            .service()
            .subscribe(mw_core::SubscriptionSpec::region_entry(corridor, 0.3));
        let mut fired = 0;
        for _ in 0..600 {
            fired += sim.step(SimDuration::from_secs(1.0)).len();
        }
        assert!(fired > 0, "no notifications in 10 simulated minutes");
    }

    #[test]
    fn dwell_study_produces_decaying_samples() {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 31,
                people: 6,
                deployment: DeploymentConfig {
                    ubisense_rooms: vec![],
                    rfid_rooms: vec![],
                    biometric_rooms: vec![],
                    ..DeploymentConfig::default()
                },
                aging_inflation_ft_per_s: 0.0,
            },
        );
        let samples = sim.run_dwell_study(
            1200,
            SimDuration::from_secs(1.0),
            &[5.0, 30.0, 120.0, 300.0],
        );
        assert!(samples.len() > 20, "only {} samples", samples.len());
        let rate_at = |age: f64| {
            let subset: Vec<bool> = samples
                .iter()
                .filter(|(a, _)| (*a - age).abs() < 1e-9)
                .map(|(_, v)| *v)
                .collect();
            subset.iter().filter(|v| **v).count() as f64 / subset.len().max(1) as f64
        };
        // Dwell probability decays with age (people wander off): the
        // 5-second validity beats the 5-minute validity.
        assert!(
            rate_at(5.0) > rate_at(300.0),
            "5s {} vs 300s {}",
            rate_at(5.0),
            rate_at(300.0)
        );
        // And the fitted TDF picks up the decay.
        let fit = crate::fit_tdf(&samples, 60.0);
        assert!(fit.half_life.is_some());
    }

    #[test]
    fn posterior_calibration_curve_shape() {
        let plan = building::paper_floor();
        let rooms = plan.rooms.len();
        let mut sim = Simulation::new(
            plan,
            SimConfig {
                seed: 2024,
                people: 4,
                deployment: DeploymentConfig {
                    ubisense_rooms: (0..rooms).collect(),
                    rfid_rooms: vec![],
                    biometric_rooms: vec![],
                    carry_probability: 1.0,
                    ..DeploymentConfig::default()
                },
                aging_inflation_ft_per_s: 0.0,
            },
        );
        let buckets = sim.run_posterior_calibration(120, SimDuration::from_secs(1.0));
        assert!(!buckets.is_empty());
        for b in &buckets {
            assert!((0.0..=1.0).contains(&b.predicted_mean));
            assert!((0.0..=1.0).contains(&b.empirical_rate));
            assert!(b.samples > 0);
        }
        // The extreme buckets are well calibrated: near-zero predictions
        // are near-zero empirically, near-one predictions near one.
        let lowest = buckets.first().unwrap();
        if lowest.predicted_mean < 0.05 && lowest.samples > 100 {
            assert!(lowest.empirical_rate < 0.1, "low bucket {lowest:?}");
        }
        let highest = buckets.last().unwrap();
        if highest.predicted_mean > 0.9 && highest.samples > 100 {
            assert!(highest.empirical_rate > 0.9, "high bucket {highest:?}");
        }
    }

    #[test]
    fn ground_truth_lookup() {
        let sim = Simulation::new(building::paper_floor(), SimConfig::default());
        let first = &sim.people()[0];
        assert_eq!(sim.ground_truth(&first.id), Some(first.position));
        assert_eq!(sim.ground_truth(&"ghost".into()), None);
    }
}
