//! Seeded Zipf sampling, shared by the city generator and the
//! benchmark workload builders.
//!
//! Three sweeps used to carry their own inline copies of this pair
//! (the concurrent-read arena, the subscription-scale rule pool, and
//! the city's work-room occupancy); they now all draw from here so the
//! skew is defined once. The CDF formula is the city generator's
//! original `1 / k^s` accumulation — bit-for-bit, so city workloads
//! seeded before the dedupe replay identically.

use rand::Rng;

/// Cumulative Zipf distribution over ranks `0..n` with exponent `s`,
/// precomputed so sampling is a binary search — no external zipf crate.
#[must_use]
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for k in 1..=n {
        total += 1.0 / (k as f64).powf(s);
        cdf.push(total);
    }
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Samples a rank from a [`zipf_cdf`] by binary search. One uniform
/// draw per sample, so callers replaying a seeded `Rng` get the same
/// rank sequence the inline samplers produced.
pub fn sample_zipf<R: Rng>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
        Ok(i) | Err(i) => i.min(cdf.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The CDF is the normalized partial sums of `1/k^s` — pinned
    /// numerically so a refactor that switches to `k^-s` accumulation
    /// (or re-normalizes differently) trips this test even though the
    /// two are mathematically equal.
    #[test]
    fn cdf_is_pinned_to_the_reciprocal_power_accumulation() {
        let n = 100;
        let s = 1.1;
        let cdf = zipf_cdf(n, s);
        assert_eq!(cdf.len(), n);
        let mut total = 0.0;
        let mut partial = Vec::with_capacity(n);
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            partial.push(total);
        }
        for (i, want) in partial.iter().enumerate() {
            let want = want / total;
            assert!(
                cdf[i].to_bits() == want.to_bits(),
                "cdf[{i}] drifted: {} vs {want}",
                cdf[i]
            );
        }
        assert!((cdf[n - 1] - 1.0).abs() < 1e-12, "cdf must end at 1");
    }

    /// Seeded sampling is deterministic and Zipf-skewed: rank 0 is the
    /// most popular, the low ranks carry most of the mass, and the same
    /// seed reproduces the same counts exactly.
    #[test]
    fn seeded_sampling_distribution_is_stable_and_skewed() {
        let cdf = zipf_cdf(100, 1.1);
        let draw = || {
            let mut rng = StdRng::seed_from_u64(3);
            let mut counts = [0usize; 100];
            for _ in 0..20_000 {
                counts[sample_zipf(&cdf, &mut rng)] += 1;
            }
            counts
        };
        let counts = draw();
        assert_eq!(counts, draw(), "same seed must reproduce the same draws");
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank 0 must be the hottest");
        let head: usize = counts[..10].iter().sum();
        let total: usize = counts.iter().sum();
        assert!(
            head * 2 > total,
            "top-10 ranks should carry most of the mass: {head}/{total}"
        );
        assert!(
            counts[0] > 4 * counts[50].max(1),
            "rank 0 should dwarf mid ranks: {} vs {}",
            counts[0],
            counts[50]
        );
    }

    /// Every sampled rank is in range, including at the CDF's edges.
    #[test]
    fn samples_stay_in_range() {
        let cdf = zipf_cdf(7, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..5_000 {
            assert!(sample_zipf(&cdf, &mut rng) < 7);
        }
    }
}
