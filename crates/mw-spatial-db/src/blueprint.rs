//! Blueprint import/export.
//!
//! §4.6.1: "The vertices of all the rooms and corridors in the building
//! are obtained from the blueprints of the building." This module loads
//! and saves the physical-space model (the Table-1 rows) as a JSON
//! document, so deployments can be authored outside the program — the
//! role the building blueprints played for the original system.
//!
//! The format is a stable, versioned JSON object:
//!
//! ```json
//! {
//!   "version": 1,
//!   "objects": [
//!     {
//!       "identifier": "3105",
//!       "glob_prefix": "CS/Floor3",
//!       "object_type": "Room",
//!       "geometry": { "Polygon": { ... } },
//!       "attributes": { "power-outlets": "true" }
//!     }
//!   ]
//! }
//! ```

use serde::{Deserialize, Serialize};

use crate::{DbError, SpatialDatabase, SpatialObject};

/// Current blueprint format version.
pub const BLUEPRINT_VERSION: u32 = 1;

/// The on-disk blueprint document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Blueprint {
    /// Format version (currently always [`BLUEPRINT_VERSION`]).
    pub version: u32,
    /// Every physical-space row.
    pub objects: Vec<SpatialObject>,
}

/// Errors produced by blueprint loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum BlueprintError {
    /// The JSON was malformed or did not match the schema.
    Parse(serde_json::Error),
    /// The document's version is not supported.
    UnsupportedVersion {
        /// The version found in the document.
        found: u32,
    },
    /// Two objects share a combined key.
    Duplicate(DbError),
}

impl std::fmt::Display for BlueprintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlueprintError::Parse(e) => write!(f, "malformed blueprint: {e}"),
            BlueprintError::UnsupportedVersion { found } => {
                write!(f, "unsupported blueprint version {found}")
            }
            BlueprintError::Duplicate(e) => write!(f, "duplicate object: {e}"),
        }
    }
}

impl std::error::Error for BlueprintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlueprintError::Parse(e) => Some(e),
            BlueprintError::Duplicate(e) => Some(e),
            BlueprintError::UnsupportedVersion { .. } => None,
        }
    }
}

impl SpatialDatabase {
    /// Serializes the physical-space table as a blueprint JSON document.
    ///
    /// Sensor readings and triggers are runtime state and are not part of
    /// a blueprint.
    #[must_use]
    pub fn export_blueprint(&self) -> String {
        let mut objects: Vec<SpatialObject> = self.objects().iter().cloned().collect();
        objects.sort_by_key(SpatialObject::key);
        let doc = Blueprint {
            version: BLUEPRINT_VERSION,
            objects,
        };
        serde_json::to_string_pretty(&doc).expect("spatial objects serialize")
    }

    /// Loads a blueprint document into a fresh database.
    ///
    /// # Errors
    ///
    /// Returns [`BlueprintError`] for malformed JSON, an unsupported
    /// version, or duplicate object keys.
    pub fn from_blueprint(json: &str) -> Result<SpatialDatabase, BlueprintError> {
        let doc: Blueprint = serde_json::from_str(json).map_err(BlueprintError::Parse)?;
        if doc.version != BLUEPRINT_VERSION {
            return Err(BlueprintError::UnsupportedVersion { found: doc.version });
        }
        let mut db = SpatialDatabase::new();
        for object in doc.objects {
            db.insert_object(object)
                .map_err(BlueprintError::Duplicate)?;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Geometry, ObjectType};
    use mw_geometry::{Point, Polygon, Rect, Segment};

    fn sample_db() -> SpatialDatabase {
        let mut db = SpatialDatabase::new();
        db.insert_object(
            SpatialObject::new(
                "3105",
                "CS/Floor3".parse().unwrap(),
                ObjectType::Room,
                Geometry::Polygon(Polygon::from_rect(&Rect::new(
                    Point::new(330.0, 0.0),
                    Point::new(350.0, 30.0),
                ))),
            )
            .with_attribute("power-outlets", "true"),
        )
        .unwrap();
        db.insert_object(SpatialObject::new(
            "Door3105",
            "CS/Floor3".parse().unwrap(),
            ObjectType::Door,
            Geometry::Line(Segment::new(
                Point::new(330.0, 10.0),
                Point::new(330.0, 14.0),
            )),
        ))
        .unwrap();
        db.insert_object(SpatialObject::new(
            "switch",
            "CS/Floor3/3105".parse().unwrap(),
            ObjectType::Other("lightswitch".into()),
            Geometry::Point(Point::new(331.0, 1.0)),
        ))
        .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = sample_db();
        let json = db.export_blueprint();
        let restored = SpatialDatabase::from_blueprint(&json).unwrap();
        assert_eq!(restored.objects().len(), db.objects().len());
        let room = restored.objects().get("CS/Floor3:3105").unwrap();
        assert_eq!(room.object_type, ObjectType::Room);
        assert_eq!(room.attribute("power-outlets"), Some("true"));
        assert_eq!(
            room.mbr(),
            Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0))
        );
        let switch = restored.objects().get("CS/Floor3/3105:switch").unwrap();
        assert_eq!(switch.object_type, ObjectType::Other("lightswitch".into()));
        // Exported form is stable.
        assert_eq!(restored.export_blueprint(), json);
    }

    #[test]
    fn paper_floor_blueprint_roundtrip() {
        // The full simulator floor survives a roundtrip.
        let db = sample_db();
        let json = db.export_blueprint();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("3105"));
        let restored = SpatialDatabase::from_blueprint(&json).unwrap();
        assert_eq!(restored.world_mbr(), db.world_mbr());
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            SpatialDatabase::from_blueprint("{not json"),
            Err(BlueprintError::Parse(_))
        ));
        assert!(matches!(
            SpatialDatabase::from_blueprint("{\"version\":1}"),
            Err(BlueprintError::Parse(_))
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let doc = "{\"version\": 99, \"objects\": []}";
        assert!(matches!(
            SpatialDatabase::from_blueprint(doc),
            Err(BlueprintError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn duplicate_objects_rejected() {
        let db = sample_db();
        let mut doc: Blueprint = serde_json::from_str(&db.export_blueprint()).unwrap();
        let dup = doc.objects[0].clone();
        doc.objects.push(dup);
        let json = serde_json::to_string(&doc).unwrap();
        assert!(matches!(
            SpatialDatabase::from_blueprint(&json),
            Err(BlueprintError::Duplicate(_))
        ));
    }

    #[test]
    fn empty_blueprint_is_valid() {
        let db = SpatialDatabase::from_blueprint("{\"version\":1,\"objects\":[]}").unwrap();
        assert!(db.objects().is_empty());
    }
}
