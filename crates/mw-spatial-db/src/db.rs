use mw_geometry::{Point, Rect};
use mw_model::SimTime;
use mw_sensors::{MobileObjectId, SensorId, SensorReading};

use crate::{
    DbError, SensorMetaRow, SensorMetaTable, SensorReadingTable, SpatialObject, SpatialTable,
    TriggerEvent, TriggerId, TriggerManager, TriggerSpec,
};

/// The complete spatial database (§5): physical-space table, sensor
/// tables and trigger engine behind one façade.
///
/// This is the PostGIS/PostgreSQL stand-in. All mutating operations go
/// through `&mut self`; the Location Service in `mw-core` wraps the
/// database in a lock for concurrent use.
///
/// # Example
///
/// ```
/// use mw_geometry::{Point, Rect};
/// use mw_spatial_db::{SpatialDatabase, TriggerSpec};
///
/// let mut db = SpatialDatabase::new();
/// let trigger = db.register_trigger(TriggerSpec {
///     region: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
///     object: None,
/// });
/// assert!(db.trigger_spec(trigger).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpatialDatabase {
    objects: SpatialTable,
    readings: SensorReadingTable,
    sensor_meta: SensorMetaTable,
    triggers: TriggerManager,
    metrics: Option<DbMetrics>,
}

/// Metric handles updated by database operations, resolved once at
/// [`SpatialDatabase::bind_metrics`] time (names under `db.*`, see
/// `DESIGN.md` §8).
#[derive(Debug, Clone)]
struct DbMetrics {
    readings_inserted: mw_obs::Counter,
    readings_revoked: mw_obs::Counter,
    readings_pruned: mw_obs::Counter,
    live_queries: mw_obs::Counter,
    triggers_fired: mw_obs::Counter,
    objects: mw_obs::Gauge,
}

impl DbMetrics {
    fn new(registry: &mw_obs::MetricsRegistry) -> Self {
        DbMetrics {
            readings_inserted: registry.counter("db.readings_inserted"),
            readings_revoked: registry.counter("db.readings_revoked"),
            readings_pruned: registry.counter("db.readings_pruned"),
            live_queries: registry.counter("db.live_queries"),
            triggers_fired: registry.counter("db.triggers_fired"),
            objects: registry.gauge("db.objects"),
        }
    }
}

impl SpatialDatabase {
    /// Creates an empty database.
    #[must_use]
    pub fn new() -> Self {
        SpatialDatabase::default()
    }

    /// Publishes database metrics (`db.*`: reading insert/revoke/prune
    /// counters, live-reading query counts, trigger firings, object
    /// gauge) to `registry`. Unmeasured until called.
    pub fn bind_metrics(&mut self, registry: &mw_obs::MetricsRegistry) {
        let metrics = DbMetrics::new(registry);
        #[allow(clippy::cast_precision_loss)]
        metrics.objects.set(self.objects.len() as f64);
        self.metrics = Some(metrics);
    }

    // --- physical space -------------------------------------------------

    /// Inserts a spatial object (a Table 1 row).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::DuplicateObject`] when the combined key exists.
    pub fn insert_object(&mut self, object: SpatialObject) -> Result<(), DbError> {
        self.objects.insert(object)?;
        if let Some(metrics) = &self.metrics {
            #[allow(clippy::cast_precision_loss)]
            metrics.objects.set(self.objects.len() as f64);
        }
        Ok(())
    }

    /// Removes a spatial object by combined key.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownObject`] when the key does not exist.
    pub fn remove_object(&mut self, key: &str) -> Result<SpatialObject, DbError> {
        let removed = self.objects.remove(key)?;
        if let Some(metrics) = &self.metrics {
            #[allow(clippy::cast_precision_loss)]
            metrics.objects.set(self.objects.len() as f64);
        }
        Ok(removed)
    }

    /// Read access to the physical-space table.
    #[must_use]
    pub fn objects(&self) -> &SpatialTable {
        &self.objects
    }

    /// The innermost named region containing `p` (room before floor).
    #[must_use]
    pub fn enclosing_region(&self, p: Point) -> Option<&SpatialObject> {
        self.objects.enclosing_region(p)
    }

    // --- sensor readings -------------------------------------------------

    /// Inserts a sensor reading, firing any matching database triggers.
    /// Returns the fired events.
    pub fn insert_reading(&mut self, reading: SensorReading, now: SimTime) -> Vec<TriggerEvent> {
        let events = self.triggers.on_insert(&reading, now);
        self.readings.insert(reading);
        if let Some(metrics) = &self.metrics {
            metrics.readings_inserted.inc();
            metrics.triggers_fired.add(events.len() as u64);
        }
        events
    }

    /// Revokes all readings from `sensor` about `object` (logout
    /// semantics). Returns how many rows were dropped.
    pub fn revoke_readings(&mut self, sensor: &SensorId, object: &MobileObjectId) -> usize {
        let revoked = self.readings.revoke(sensor, object);
        if let Some(metrics) = &self.metrics {
            metrics.readings_revoked.add(revoked as u64);
        }
        revoked
    }

    /// Read access to the sensor-reading table.
    #[must_use]
    pub fn readings(&self) -> &SensorReadingTable {
        &self.readings
    }

    /// Mutable access to the sensor-reading table. Bypasses triggers and
    /// metrics — meant for bulk migration of readings between stores
    /// (e.g. into per-shard databases), not for normal ingest.
    pub fn readings_mut(&mut self) -> &mut SensorReadingTable {
        &mut self.readings
    }

    /// Prunes expired readings.
    pub fn prune_expired(&mut self, now: SimTime) -> usize {
        let pruned = self.readings.prune_expired(now);
        if let Some(metrics) = &self.metrics {
            metrics.readings_pruned.add(pruned as u64);
        }
        pruned
    }

    // --- sensor metadata ---------------------------------------------------

    /// Registers or updates a sensor's metadata row.
    pub fn upsert_sensor_meta(&mut self, row: SensorMetaRow) {
        self.sensor_meta.upsert(row);
    }

    /// Read access to the sensor metadata table.
    #[must_use]
    pub fn sensor_meta(&self) -> &SensorMetaTable {
        &self.sensor_meta
    }

    // --- triggers ---------------------------------------------------------

    /// Registers a database trigger; returns its id.
    pub fn register_trigger(&mut self, spec: TriggerSpec) -> TriggerId {
        self.triggers.register(spec)
    }

    /// Unregisters a trigger.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTrigger`] when the id does not exist.
    pub fn unregister_trigger(&mut self, id: TriggerId) -> Result<(), DbError> {
        self.triggers.unregister(id)
    }

    /// The spec of a registered trigger.
    #[must_use]
    pub fn trigger_spec(&self, id: TriggerId) -> Option<&TriggerSpec> {
        self.triggers.get(id)
    }

    /// Number of registered triggers.
    #[must_use]
    pub fn trigger_count(&self) -> usize {
        self.triggers.len()
    }

    /// All live readings about one object at `now` (the fusion input).
    #[must_use]
    pub fn live_readings_for(&self, object: &MobileObjectId, now: SimTime) -> Vec<SensorReading> {
        if let Some(metrics) = &self.metrics {
            metrics.live_queries.inc();
        }
        let mut out: Vec<SensorReading> =
            self.readings.readings_for(object, now).cloned().collect();
        // The backing table iterates in hash order, which differs between
        // otherwise-identical table instances. Conflict resolution breaks
        // probability ties by position, so fusion must see a stable order.
        out.sort_unstable_by(|a, b| a.sensor_id.cmp(&b.sensor_id));
        out
    }

    /// The MBR of everything known about the physical space — a sensible
    /// default for the fusion universe when the floor outline is absent.
    #[must_use]
    pub fn world_mbr(&self) -> Option<Rect> {
        let mut rects = self.objects.iter().map(|o| o.mbr());
        let first = rects.next()?;
        Some(rects.fold(first, |acc, r| acc.union(&r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Geometry, ObjectType};
    use mw_geometry::Polygon;
    use mw_model::{SimDuration, TemporalDegradation};
    use mw_sensors::SensorSpec;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn reading(object: &str, region: Rect, at: f64) -> SensorReading {
        SensorReading {
            sensor_id: "Ubi-18".into(),
            spec: SensorSpec::ubisense(0.9),
            object: object.into(),
            glob_prefix: "SC/Floor3".parse().unwrap(),
            region,
            detected_at: SimTime::from_secs(at),
            time_to_live: SimDuration::from_secs(10.0),
            tdf: TemporalDegradation::None,
            moving: false,
        }
    }

    fn db_with_floor() -> SpatialDatabase {
        let mut db = SpatialDatabase::new();
        db.insert_object(SpatialObject::new(
            "Floor3",
            "CS".parse().unwrap(),
            ObjectType::Floor,
            Geometry::Polygon(Polygon::from_rect(&r(0.0, 0.0, 500.0, 100.0))),
        ))
        .unwrap();
        db.insert_object(SpatialObject::new(
            "3105",
            "CS/Floor3".parse().unwrap(),
            ObjectType::Room,
            Geometry::Polygon(Polygon::from_rect(&r(330.0, 0.0, 350.0, 30.0))),
        ))
        .unwrap();
        db
    }

    #[test]
    fn reading_insert_fires_trigger() {
        let mut db = db_with_floor();
        let id = db.register_trigger(TriggerSpec {
            region: r(330.0, 0.0, 350.0, 30.0),
            object: Some("alice".into()),
        });
        let events = db.insert_reading(
            reading("alice", r(340.0, 10.0, 341.0, 11.0), 0.0),
            SimTime::ZERO,
        );
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trigger, id);
        // Readings are stored.
        assert_eq!(db.readings().len(), 1);
    }

    #[test]
    fn metrics_track_database_operations() {
        let registry = mw_obs::MetricsRegistry::new();
        let mut db = db_with_floor();
        db.bind_metrics(&registry);
        assert_eq!(registry.snapshot().gauge("db.objects"), Some(2.0));

        db.register_trigger(TriggerSpec {
            region: r(330.0, 0.0, 350.0, 30.0),
            object: Some("alice".into()),
        });
        db.insert_reading(
            reading("alice", r(340.0, 10.0, 341.0, 11.0), 0.0),
            SimTime::ZERO,
        );
        db.insert_reading(reading("bob", r(5.0, 5.0, 6.0, 6.0), 0.0), SimTime::ZERO);
        let _ = db.live_readings_for(&"alice".into(), SimTime::from_secs(1.0));
        let revoked = db.revoke_readings(&"Ubi-18".into(), &"bob".into());
        assert_eq!(revoked, 1);
        let pruned = db.prune_expired(SimTime::from_secs(20.0));
        assert_eq!(pruned, 1);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("db.readings_inserted"), Some(2));
        assert_eq!(snap.counter("db.triggers_fired"), Some(1));
        assert_eq!(snap.counter("db.live_queries"), Some(1));
        assert_eq!(snap.counter("db.readings_revoked"), Some(1));
        assert_eq!(snap.counter("db.readings_pruned"), Some(1));
    }

    #[test]
    fn world_mbr_covers_objects() {
        let db = db_with_floor();
        assert_eq!(db.world_mbr().unwrap(), r(0.0, 0.0, 500.0, 100.0));
        assert!(SpatialDatabase::new().world_mbr().is_none());
    }

    #[test]
    fn live_readings_for_object() {
        let mut db = db_with_floor();
        db.insert_reading(reading("alice", r(1.0, 1.0, 2.0, 2.0), 0.0), SimTime::ZERO);
        db.insert_reading(reading("bob", r(5.0, 5.0, 6.0, 6.0), 0.0), SimTime::ZERO);
        let live = db.live_readings_for(&"alice".into(), SimTime::from_secs(1.0));
        assert_eq!(live.len(), 1);
        // After expiry, none.
        let stale = db.live_readings_for(&"alice".into(), SimTime::from_secs(20.0));
        assert!(stale.is_empty());
    }

    #[test]
    fn revocation_and_pruning() {
        let mut db = db_with_floor();
        db.insert_reading(reading("alice", r(1.0, 1.0, 2.0, 2.0), 0.0), SimTime::ZERO);
        assert_eq!(db.revoke_readings(&"Ubi-18".into(), &"alice".into()), 1);
        db.insert_reading(reading("alice", r(1.0, 1.0, 2.0, 2.0), 0.0), SimTime::ZERO);
        assert_eq!(db.prune_expired(SimTime::from_secs(100.0)), 1);
    }

    #[test]
    fn enclosing_region_lookup() {
        let db = db_with_floor();
        assert_eq!(
            db.enclosing_region(Point::new(340.0, 10.0))
                .unwrap()
                .identifier,
            "3105"
        );
    }

    #[test]
    fn sensor_meta_roundtrip() {
        let mut db = SpatialDatabase::new();
        db.upsert_sensor_meta(SensorMetaRow {
            sensor_id: "RF-12".into(),
            confidence_percent: 72.0,
            time_to_live: SimDuration::from_secs(60.0),
        });
        assert_eq!(
            db.sensor_meta()
                .get(&"RF-12".into())
                .unwrap()
                .confidence_percent,
            72.0
        );
    }

    #[test]
    fn trigger_lifecycle() {
        let mut db = SpatialDatabase::new();
        let id = db.register_trigger(TriggerSpec {
            region: r(0.0, 0.0, 1.0, 1.0),
            object: None,
        });
        assert_eq!(db.trigger_count(), 1);
        assert!(db.trigger_spec(id).is_some());
        db.unregister_trigger(id).unwrap();
        assert_eq!(db.trigger_count(), 0);
    }

    #[test]
    fn object_lifecycle() {
        let mut db = db_with_floor();
        assert_eq!(db.objects().len(), 2);
        let removed = db.remove_object("CS/Floor3:3105").unwrap();
        assert_eq!(removed.identifier, "3105");
        assert!(db.remove_object("CS/Floor3:3105").is_err());
    }
}
