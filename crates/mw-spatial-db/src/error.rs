use std::fmt;

/// Errors produced by the spatial database.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DbError {
    /// Insert would overwrite an existing object with the same combined
    /// key (GlobPrefix + ObjectIdentifier).
    DuplicateObject {
        /// The offending combined key.
        key: String,
    },
    /// No object with the given combined key exists.
    UnknownObject {
        /// The missing combined key.
        key: String,
    },
    /// No trigger with the given id exists.
    UnknownTrigger {
        /// The missing trigger id.
        id: u64,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::DuplicateObject { key } => write!(f, "object {key:?} already exists"),
            DbError::UnknownObject { key } => write!(f, "unknown object {key:?}"),
            DbError::UnknownTrigger { id } => write!(f, "unknown trigger {id}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DbError::DuplicateObject {
            key: "CS/Floor3:3105".into(),
        };
        assert!(e.to_string().contains("3105"));
    }
}
