//! The spatial database of the MiddleWhere reproduction (§5).
//!
//! The original system stores its world model in PostGIS/PostgreSQL; this
//! crate is an in-memory engine exposing the same capabilities:
//!
//! - [`SpatialObject`] / [`SpatialTable`] — the physical-space model of
//!   Table 1 (ObjectIdentifier, GlobPrefix, ObjectType, GeometryType,
//!   Points), indexed by a Guttman R-tree for window / point / nearest
//!   queries, with free-form attributes so queries like *"the nearest
//!   region with power outlets"* work (§5.1),
//! - [`SensorReadingTable`] — the sensor-information table of Table 2,
//!   holding the latest reading per (sensor, mobile object) with
//!   detection-time bookkeeping and expiry,
//! - [`SensorMetaTable`] — the per-sensor confidence / time-to-live table
//!   (§5.2's second table),
//! - [`TriggerManager`] — database triggers on spatial conditions (§5.3):
//!   inserting a reading that intersects a trigger region fires an event,
//! - [`SpatialDatabase`] — the façade combining all of the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blueprint;
mod db;
mod error;
mod object;
mod sensor_table;
mod table;
mod trigger;

pub use blueprint::{Blueprint, BlueprintError, BLUEPRINT_VERSION};
pub use db::SpatialDatabase;
pub use error::DbError;
pub use object::{Geometry, ObjectType, SpatialObject};
pub use sensor_table::{SensorMetaRow, SensorMetaTable, SensorReadingTable};
pub use table::SpatialTable;
pub use trigger::{TriggerEvent, TriggerId, TriggerManager, TriggerSpec};
