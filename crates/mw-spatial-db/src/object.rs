use std::collections::BTreeMap;
use std::fmt;

use mw_geometry::{Point, Polygon, Rect, Segment};
use mw_model::Glob;
use serde::{Deserialize, Serialize};

/// The semantic type of a spatial object (Table 1's `ObjectType` column).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ObjectType {
    /// A whole floor.
    Floor,
    /// A room.
    Room,
    /// A corridor.
    Corridor,
    /// A door (line geometry).
    Door,
    /// A wall without passage (line geometry).
    Wall,
    /// A table or desk.
    Table,
    /// A wall-mounted or desktop display.
    Display,
    /// An application-defined usage region (§4.6.2).
    UsageRegion,
    /// An application-defined symbolic region such as "East wing of the
    /// building" or "work region inside a room" (§4.5).
    NamedRegion,
    /// Anything else ("chair, table, etc.").
    Other(String),
}

impl fmt::Display for ObjectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectType::Floor => f.write_str("Floor"),
            ObjectType::Room => f.write_str("Room"),
            ObjectType::Corridor => f.write_str("Corridor"),
            ObjectType::Door => f.write_str("Door"),
            ObjectType::Wall => f.write_str("Wall"),
            ObjectType::Table => f.write_str("Table"),
            ObjectType::Display => f.write_str("Display"),
            ObjectType::UsageRegion => f.write_str("UsageRegion"),
            ObjectType::NamedRegion => f.write_str("NamedRegion"),
            ObjectType::Other(s) => f.write_str(s),
        }
    }
}

/// The geometry of a spatial object (Table 1's `GeometryType` + `Points`
/// columns). Everything is in building/floor coordinates (feet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geometry {
    /// A point object (light switch, sensor position).
    Point(Point),
    /// A line object (door, non-enclosing wall).
    Line(Segment),
    /// A polygonal region (room, corridor, table top).
    Polygon(Polygon),
}

impl Geometry {
    /// The geometry's minimum bounding rectangle — the representation the
    /// database indexes and reasons on (§5.1).
    #[must_use]
    pub fn mbr(&self) -> Rect {
        match self {
            Geometry::Point(p) => Rect::from_point(*p),
            Geometry::Line(s) => s.mbr(),
            Geometry::Polygon(p) => p.mbr(),
        }
    }

    /// Exact containment test ("more accurate processing … taking the
    /// actual region boundaries", §5.1).
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        match self {
            Geometry::Point(q) => q == &p,
            Geometry::Line(s) => s.contains_point(p),
            Geometry::Polygon(poly) => poly.contains_point(p),
        }
    }

    /// The geometry-type name as the paper's table prints it.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "Point",
            Geometry::Line(_) => "Line",
            Geometry::Polygon(_) => "Polygon",
        }
    }
}

/// One row of the physical-space table (Table 1), plus free-form
/// attributes supporting queries such as *"Where is the nearest region
/// that has power outlets and high Bluetooth signal?"*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialObject {
    /// Unique name within the namespace of `glob_prefix` (Table 1's
    /// `ObjectIdentifier`).
    pub identifier: String,
    /// The enclosing space (Table 1's `GlobPrefix`), e.g. `CS/Floor3`.
    pub glob_prefix: Glob,
    /// Semantic type.
    pub object_type: ObjectType,
    /// The geometry.
    pub geometry: Geometry,
    /// Spatial and semantic attributes ("location, dimension, orientation,
    /// etc." plus amenities).
    pub attributes: BTreeMap<String, String>,
}

impl SpatialObject {
    /// Creates an object with no extra attributes.
    #[must_use]
    pub fn new(
        identifier: impl Into<String>,
        glob_prefix: Glob,
        object_type: ObjectType,
        geometry: Geometry,
    ) -> Self {
        SpatialObject {
            identifier: identifier.into(),
            glob_prefix,
            object_type,
            geometry,
            attributes: BTreeMap::new(),
        }
    }

    /// Adds an attribute, builder style.
    #[must_use]
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// The combined key `GlobPrefix:ObjectIdentifier` — "GlobPrefix and
    /// ObjectIdentifier make up the combined key for the spatial table."
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}:{}", self.glob_prefix, self.identifier)
    }

    /// The object's full GLOB (prefix extended by its identifier).
    #[must_use]
    pub fn glob(&self) -> Glob {
        self.glob_prefix
            .child(self.identifier.clone())
            .unwrap_or_else(|_| self.glob_prefix.clone())
    }

    /// The indexed MBR.
    #[must_use]
    pub fn mbr(&self) -> Rect {
        self.geometry.mbr()
    }

    /// Attribute lookup.
    #[must_use]
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes.get(key).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room_3105() -> SpatialObject {
        let poly = Polygon::new(vec![
            Point::new(330.0, 0.0),
            Point::new(350.0, 0.0),
            Point::new(350.0, 30.0),
            Point::new(330.0, 30.0),
        ])
        .unwrap();
        SpatialObject::new(
            "3105",
            "CS/Floor3".parse().unwrap(),
            ObjectType::Room,
            Geometry::Polygon(poly),
        )
    }

    #[test]
    fn combined_key_matches_paper_schema() {
        assert_eq!(room_3105().key(), "CS/Floor3:3105");
    }

    #[test]
    fn glob_extends_prefix() {
        assert_eq!(room_3105().glob().to_string(), "CS/Floor3/3105");
    }

    #[test]
    fn mbr_of_polygon_room() {
        let mbr = room_3105().mbr();
        assert_eq!(
            mbr,
            Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0))
        );
    }

    #[test]
    fn geometry_type_names() {
        assert_eq!(Geometry::Point(Point::ORIGIN).type_name(), "Point");
        let seg = Segment::new(Point::ORIGIN, Point::new(1.0, 0.0));
        assert_eq!(Geometry::Line(seg).type_name(), "Line");
        assert_eq!(room_3105().geometry.type_name(), "Polygon");
    }

    #[test]
    fn geometry_exact_containment() {
        let g = room_3105().geometry;
        assert!(g.contains_point(Point::new(340.0, 15.0)));
        assert!(!g.contains_point(Point::new(300.0, 15.0)));
        let p = Geometry::Point(Point::new(1.0, 1.0));
        assert!(p.contains_point(Point::new(1.0, 1.0)));
        assert!(!p.contains_point(Point::new(1.0, 1.1)));
        let l = Geometry::Line(Segment::new(Point::ORIGIN, Point::new(10.0, 0.0)));
        assert!(l.contains_point(Point::new(5.0, 0.0)));
        assert!(!l.contains_point(Point::new(5.0, 1.0)));
    }

    #[test]
    fn attributes() {
        let obj = room_3105()
            .with_attribute("power-outlets", "true")
            .with_attribute("bluetooth-signal", "high");
        assert_eq!(obj.attribute("power-outlets"), Some("true"));
        assert_eq!(obj.attribute("bluetooth-signal"), Some("high"));
        assert_eq!(obj.attribute("wifi"), None);
    }

    #[test]
    fn object_type_display() {
        assert_eq!(ObjectType::Room.to_string(), "Room");
        assert_eq!(ObjectType::Other("chair".into()).to_string(), "chair");
    }
}
