use std::collections::HashMap;

use mw_model::{SimDuration, SimTime};
use mw_sensors::{MobileObjectId, SensorId, SensorReading};

/// The sensor-information table of §5.2 (Table 2).
///
/// "Sensor information is stored in a separate table in the spatial
/// database. … The table contains temporal information indicating the
/// time when the sensor reading was obtained."
///
/// The table keeps the latest reading per `(sensor, mobile object)` pair —
/// a fresh report from the same sensor supersedes its previous one — and
/// prunes expired rows lazily.
///
/// Storage is keyed by object: the fusion hot path asks "all live
/// readings about *this* object" once per ingest, and revocation names
/// one `(sensor, object)` pair, so both must cost the handful of
/// readings that object actually has — not a scan of every tracked
/// object in the shard (`DESIGN.md` §14). Rows are boxed: a
/// `SensorReading` is ~230 bytes inline and containers over-allocate
/// (a `Vec`'s first push reserves capacity 4 for elements this size,
/// so an unboxed single-reading object would hold ~930 bytes), so
/// storing thin pointers keeps the table's resident cost near the
/// payload itself — the city-scale bytes-per-tracked-object budget is
/// dominated by exactly this table.
#[derive(Debug, Clone, Default)]
pub struct SensorReadingTable {
    #[allow(clippy::vec_box)] // thin rows: see capacity note above
    rows: HashMap<MobileObjectId, Vec<Box<SensorReading>>>,
    len: usize,
}

impl SensorReadingTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SensorReadingTable::default()
    }

    /// Number of stored readings (including possibly expired ones not yet
    /// pruned).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no readings are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a reading, superseding the previous reading of the same
    /// `(sensor, object)` pair. Returns the superseded reading, if any.
    pub fn insert(&mut self, reading: SensorReading) -> Option<SensorReading> {
        let per_object = self.rows.entry(reading.object.clone()).or_default();
        if let Some(slot) = per_object
            .iter_mut()
            .find(|r| r.sensor_id == reading.sensor_id)
        {
            return Some(std::mem::replace(&mut **slot, reading));
        }
        per_object.push(Box::new(reading));
        self.len += 1;
        None
    }

    /// Removes and returns every stored reading (expired rows included) —
    /// used to migrate a pre-populated table into per-shard storage.
    pub fn drain(&mut self) -> Vec<SensorReading> {
        self.len = 0;
        self.rows
            .drain()
            .flat_map(|(_, per_object)| per_object)
            .map(|r| *r)
            .collect()
    }

    /// Drops all readings from `sensor` about `object` — the §6 logout
    /// revocation ("forces all location information relating to that user
    /// and obtained from the same device to expire immediately").
    ///
    /// Returns how many rows were dropped.
    pub fn revoke(&mut self, sensor: &SensorId, object: &MobileObjectId) -> usize {
        let Some(per_object) = self.rows.get_mut(object) else {
            return 0;
        };
        let before = per_object.len();
        per_object.retain(|r| r.sensor_id != *sensor);
        let dropped = before - per_object.len();
        if per_object.is_empty() {
            self.rows.remove(object);
        }
        self.len -= dropped;
        dropped
    }

    /// All live (unexpired) readings about `object` at `now`.
    pub fn readings_for<'a>(
        &'a self,
        object: &'a MobileObjectId,
        now: SimTime,
    ) -> impl Iterator<Item = &'a SensorReading> {
        self.rows
            .get(object)
            .into_iter()
            .flatten()
            .map(|r| &**r)
            .filter(move |r| !r.is_expired(now))
    }

    /// All live readings at `now`, any object.
    pub fn live_readings(&self, now: SimTime) -> impl Iterator<Item = &SensorReading> {
        self.rows
            .values()
            .flatten()
            .map(|r| &**r)
            .filter(move |r| !r.is_expired(now))
    }

    /// The distinct objects with at least one live reading at `now`.
    #[must_use]
    pub fn tracked_objects(&self, now: SimTime) -> Vec<MobileObjectId> {
        let mut out: Vec<MobileObjectId> = self
            .rows
            .iter()
            .filter(|(_, per_object)| per_object.iter().any(|r| !r.is_expired(now)))
            .map(|(object, _)| object.clone())
            .collect();
        out.sort();
        out
    }

    /// Removes expired rows; returns how many were pruned.
    pub fn prune_expired(&mut self, now: SimTime) -> usize {
        let before = self.len;
        for per_object in self.rows.values_mut() {
            per_object.retain(|r| !r.is_expired(now));
        }
        self.rows.retain(|_, per_object| !per_object.is_empty());
        self.len = self.rows.values().map(Vec::len).sum();
        before - self.len
    }
}

/// One row of the per-sensor metadata table of §5.2: "This table contains
/// the confidence with which a sensor can detect the location of an
/// object and the time-to-live information of the sensor data."
#[derive(Debug, Clone, PartialEq)]
pub struct SensorMetaRow {
    /// The sensor.
    pub sensor_id: SensorId,
    /// Empirical confidence, in percent (e.g. 72 for RF-12 in the paper).
    pub confidence_percent: f64,
    /// Reading time-to-live.
    pub time_to_live: SimDuration,
}

/// The per-sensor metadata table (§5.2's second table).
#[derive(Debug, Clone, Default)]
pub struct SensorMetaTable {
    rows: HashMap<SensorId, SensorMetaRow>,
}

impl SensorMetaTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SensorMetaTable::default()
    }

    /// Inserts or updates a sensor's metadata.
    pub fn upsert(&mut self, row: SensorMetaRow) {
        self.rows.insert(row.sensor_id.clone(), row);
    }

    /// Looks up a sensor's metadata.
    #[must_use]
    pub fn get(&self, sensor: &SensorId) -> Option<&SensorMetaRow> {
        self.rows.get(sensor)
    }

    /// Number of registered sensors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no sensors are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over all rows in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &SensorMetaRow> {
        self.rows.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::{Point, Rect};
    use mw_model::TemporalDegradation;
    use mw_sensors::SensorSpec;

    fn reading(sensor: &str, object: &str, at: f64, ttl: f64) -> SensorReading {
        SensorReading {
            sensor_id: sensor.into(),
            spec: SensorSpec::ubisense(0.9),
            object: object.into(),
            glob_prefix: "SC/Floor3".parse().unwrap(),
            region: Rect::from_center(Point::new(10.0, 10.0), 1.0, 1.0),
            detected_at: SimTime::from_secs(at),
            time_to_live: SimDuration::from_secs(ttl),
            tdf: TemporalDegradation::None,
            moving: false,
        }
    }

    #[test]
    fn insert_supersedes_same_pair() {
        let mut t = SensorReadingTable::new();
        assert!(t.insert(reading("Ubi-18", "alice", 0.0, 3.0)).is_none());
        let old = t.insert(reading("Ubi-18", "alice", 1.0, 3.0)).unwrap();
        assert_eq!(old.detected_at, SimTime::from_secs(0.0));
        assert_eq!(t.len(), 1);
        // Different sensor, same object: separate row.
        t.insert(reading("RF-12", "alice", 1.0, 60.0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn readings_for_filters_expired() {
        let mut t = SensorReadingTable::new();
        t.insert(reading("Ubi-18", "alice", 0.0, 3.0));
        t.insert(reading("RF-12", "alice", 0.0, 60.0));
        t.insert(reading("RF-12", "bob", 0.0, 60.0));
        let alice: MobileObjectId = "alice".into();
        let at5: Vec<_> = t.readings_for(&alice, SimTime::from_secs(5.0)).collect();
        assert_eq!(at5.len(), 1); // Ubisense expired
        assert_eq!(at5[0].sensor_id, "RF-12".into());
        let at1: Vec<_> = t.readings_for(&alice, SimTime::from_secs(1.0)).collect();
        assert_eq!(at1.len(), 2);
    }

    #[test]
    fn revoke_drops_pair_only() {
        let mut t = SensorReadingTable::new();
        t.insert(reading("Fp-3", "alice", 0.0, 900.0));
        t.insert(reading("RF-12", "alice", 0.0, 60.0));
        t.insert(reading("Fp-3", "bob", 0.0, 900.0));
        assert_eq!(t.revoke(&"Fp-3".into(), &"alice".into()), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.revoke(&"Fp-3".into(), &"alice".into()), 0);
    }

    #[test]
    fn tracked_objects_dedupes() {
        let mut t = SensorReadingTable::new();
        t.insert(reading("Ubi-18", "alice", 0.0, 100.0));
        t.insert(reading("RF-12", "alice", 0.0, 100.0));
        t.insert(reading("RF-12", "bob", 0.0, 100.0));
        let objs = t.tracked_objects(SimTime::from_secs(1.0));
        assert_eq!(objs.len(), 2);
    }

    #[test]
    fn prune_expired() {
        let mut t = SensorReadingTable::new();
        t.insert(reading("Ubi-18", "alice", 0.0, 3.0));
        t.insert(reading("RF-12", "alice", 0.0, 60.0));
        assert_eq!(t.prune_expired(SimTime::from_secs(10.0)), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.prune_expired(SimTime::from_secs(10.0)), 0);
    }

    #[test]
    fn meta_table_matches_paper_rows() {
        // The paper's sample: RF-12 (72%, 60 s), Ubisense-18 (93%, 3 s).
        let mut t = SensorMetaTable::new();
        t.upsert(SensorMetaRow {
            sensor_id: "RF-12".into(),
            confidence_percent: 72.0,
            time_to_live: SimDuration::from_secs(60.0),
        });
        t.upsert(SensorMetaRow {
            sensor_id: "Ubisense-18".into(),
            confidence_percent: 93.0,
            time_to_live: SimDuration::from_secs(3.0),
        });
        assert_eq!(t.len(), 2);
        let rf = t.get(&"RF-12".into()).unwrap();
        assert_eq!(rf.confidence_percent, 72.0);
        assert_eq!(rf.time_to_live, SimDuration::from_secs(60.0));
        assert!(t.get(&"Gps-1".into()).is_none());
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn upsert_overwrites() {
        let mut t = SensorMetaTable::new();
        t.upsert(SensorMetaRow {
            sensor_id: "RF-12".into(),
            confidence_percent: 72.0,
            time_to_live: SimDuration::from_secs(60.0),
        });
        t.upsert(SensorMetaRow {
            sensor_id: "RF-12".into(),
            confidence_percent: 80.0,
            time_to_live: SimDuration::from_secs(30.0),
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&"RF-12".into()).unwrap().confidence_percent, 80.0);
    }
}
