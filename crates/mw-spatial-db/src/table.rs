use std::collections::HashMap;

use mw_geometry::{Point, RTree, Rect};

use crate::{DbError, ObjectType, SpatialObject};

/// The physical-space table of §5.1 (Table 1), indexed by an R-tree.
///
/// # Example
///
/// ```
/// use mw_geometry::{Point, Polygon};
/// use mw_spatial_db::{Geometry, ObjectType, SpatialObject, SpatialTable};
///
/// let mut table = SpatialTable::new();
/// let room = Polygon::new(vec![
///     Point::new(330.0, 0.0),
///     Point::new(350.0, 0.0),
///     Point::new(350.0, 30.0),
///     Point::new(330.0, 30.0),
/// ])?;
/// table.insert(SpatialObject::new(
///     "3105",
///     "CS/Floor3".parse()?,
///     ObjectType::Room,
///     Geometry::Polygon(room),
/// ))?;
/// let hit = table.objects_at_point(Point::new(340.0, 10.0)).next().unwrap();
/// assert_eq!(hit.identifier, "3105");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpatialTable {
    rows: HashMap<String, SpatialObject>,
    index: RTree<String>,
}

impl SpatialTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SpatialTable::default()
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts an object.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::DuplicateObject`] when the combined key already
    /// exists.
    pub fn insert(&mut self, object: SpatialObject) -> Result<(), DbError> {
        let key = object.key();
        if self.rows.contains_key(&key) {
            return Err(DbError::DuplicateObject { key });
        }
        self.index.insert(object.mbr(), key.clone());
        self.rows.insert(key, object);
        Ok(())
    }

    /// Removes an object by combined key, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownObject`] when the key does not exist.
    pub fn remove(&mut self, key: &str) -> Result<SpatialObject, DbError> {
        let object = self
            .rows
            .remove(key)
            .ok_or_else(|| DbError::UnknownObject { key: key.into() })?;
        self.index.remove_if(&object.mbr(), |k| k == key);
        Ok(object)
    }

    /// Looks up an object by combined key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&SpatialObject> {
        self.rows.get(key)
    }

    /// Iterates over all objects in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &SpatialObject> {
        self.rows.values()
    }

    /// Objects whose MBR intersects `window`.
    pub fn objects_in_window<'a>(
        &'a self,
        window: &Rect,
    ) -> impl Iterator<Item = &'a SpatialObject> {
        self.index
            .query_window(window)
            .filter_map(move |(_, key)| self.rows.get(key))
    }

    /// Objects whose *exact geometry* contains the point (MBR pre-filter
    /// via the index, then the accurate pass of §5.1).
    pub fn objects_at_point(&self, p: Point) -> impl Iterator<Item = &SpatialObject> {
        self.index
            .query_point(p)
            .filter_map(move |(_, key)| self.rows.get(key))
            .filter(move |o| o.geometry.contains_point(p))
    }

    /// Objects of a given type.
    pub fn objects_of_type<'a>(
        &'a self,
        object_type: &'a ObjectType,
    ) -> impl Iterator<Item = &'a SpatialObject> {
        self.rows
            .values()
            .filter(move |o| &o.object_type == object_type)
    }

    /// The object nearest to `p` (by MBR distance) satisfying `pred` —
    /// supports §5.1's example query *"Where is the nearest region that
    /// has power outlets and high Bluetooth signal?"*.
    #[must_use]
    pub fn nearest_matching<F>(&self, p: Point, mut pred: F) -> Option<&SpatialObject>
    where
        F: FnMut(&SpatialObject) -> bool,
    {
        // The R-tree nearest() gives only the single nearest entry; the
        // predicate may reject it. Single pass keeping the running
        // minimum — no candidate vector, no O(N log N) sort; ties keep
        // the earlier row, exactly like the stable sort this replaces.
        let mut best: Option<(&SpatialObject, f64)> = None;
        for o in self.rows.values().filter(|o| pred(o)) {
            let d = o.mbr().distance_to_point(p);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((o, d));
            }
        }
        best.map(|(o, _)| o)
    }

    /// The innermost region (smallest-area Room/Corridor/Floor polygon)
    /// whose exact geometry contains `p` — used to map coordinates to
    /// symbolic locations (§4.5).
    #[must_use]
    pub fn enclosing_region(&self, p: Point) -> Option<&SpatialObject> {
        self.objects_at_point(p)
            .filter(|o| {
                matches!(
                    o.object_type,
                    ObjectType::Room | ObjectType::Corridor | ObjectType::Floor
                )
            })
            .min_by(|a, b| a.mbr().area().total_cmp(&b.mbr().area()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Geometry;
    use mw_geometry::Polygon;

    fn rect_poly(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::from_rect(&Rect::new(Point::new(x0, y0), Point::new(x1, y1)))
    }

    /// Builds the paper's Table 1 floor model.
    fn floor_table() -> SpatialTable {
        let mut t = SpatialTable::new();
        let prefix: mw_model::Glob = "CS/Floor3".parse().unwrap();
        t.insert(SpatialObject::new(
            "Floor3",
            "CS".parse().unwrap(),
            ObjectType::Floor,
            Geometry::Polygon(rect_poly(0.0, 0.0, 500.0, 100.0)),
        ))
        .unwrap();
        t.insert(SpatialObject::new(
            "3105",
            prefix.clone(),
            ObjectType::Room,
            Geometry::Polygon(rect_poly(330.0, 0.0, 350.0, 30.0)),
        ))
        .unwrap();
        t.insert(SpatialObject::new(
            "NetLab",
            prefix.clone(),
            ObjectType::Room,
            Geometry::Polygon(rect_poly(360.0, 0.0, 380.0, 30.0)),
        ))
        .unwrap();
        t.insert(SpatialObject::new(
            "LabCorridor",
            prefix,
            ObjectType::Corridor,
            Geometry::Polygon(rect_poly(310.0, 0.0, 330.0, 30.0)),
        ))
        .unwrap();
        t
    }

    #[test]
    fn insert_get_remove() {
        let mut t = floor_table();
        assert_eq!(t.len(), 4);
        let obj = t.get("CS/Floor3:3105").unwrap();
        assert_eq!(obj.identifier, "3105");
        let removed = t.remove("CS/Floor3:3105").unwrap();
        assert_eq!(removed.identifier, "3105");
        assert_eq!(t.len(), 3);
        assert!(t.get("CS/Floor3:3105").is_none());
        assert!(matches!(
            t.remove("CS/Floor3:3105"),
            Err(DbError::UnknownObject { .. })
        ));
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = floor_table();
        let dup = SpatialObject::new(
            "3105",
            "CS/Floor3".parse().unwrap(),
            ObjectType::Room,
            Geometry::Polygon(rect_poly(0.0, 0.0, 1.0, 1.0)),
        );
        assert!(matches!(
            t.insert(dup),
            Err(DbError::DuplicateObject { .. })
        ));
    }

    #[test]
    fn point_query_uses_exact_geometry() {
        let t = floor_table();
        let hits: Vec<&str> = t
            .objects_at_point(Point::new(340.0, 10.0))
            .map(|o| o.identifier.as_str())
            .collect();
        // Both the floor and room 3105 contain the point.
        assert!(hits.contains(&"3105"));
        assert!(hits.contains(&"Floor3"));
        assert!(!hits.contains(&"NetLab"));
    }

    #[test]
    fn window_query() {
        let t = floor_table();
        let window = Rect::new(Point::new(325.0, 0.0), Point::new(365.0, 30.0));
        let hits: Vec<&str> = t
            .objects_in_window(&window)
            .map(|o| o.identifier.as_str())
            .collect();
        assert!(hits.contains(&"3105"));
        assert!(hits.contains(&"NetLab"));
        assert!(hits.contains(&"LabCorridor"));
    }

    #[test]
    fn enclosing_region_prefers_smallest() {
        let t = floor_table();
        let region = t.enclosing_region(Point::new(340.0, 10.0)).unwrap();
        assert_eq!(region.identifier, "3105"); // room beats floor
        let corridor = t.enclosing_region(Point::new(320.0, 10.0)).unwrap();
        assert_eq!(corridor.identifier, "LabCorridor");
        // A point only on the floor.
        let floor = t.enclosing_region(Point::new(100.0, 80.0)).unwrap();
        assert_eq!(floor.identifier, "Floor3");
    }

    #[test]
    fn nearest_matching_attribute_query() {
        let mut t = floor_table();
        t.insert(
            SpatialObject::new(
                "PowerNook",
                "CS/Floor3".parse().unwrap(),
                ObjectType::Room,
                Geometry::Polygon(rect_poly(400.0, 0.0, 420.0, 30.0)),
            )
            .with_attribute("power-outlets", "true")
            .with_attribute("bluetooth-signal", "high"),
        )
        .unwrap();
        // The paper's query, from inside room 3105.
        let from = Point::new(340.0, 10.0);
        let found = t
            .nearest_matching(from, |o| {
                o.attribute("power-outlets") == Some("true")
                    && o.attribute("bluetooth-signal") == Some("high")
            })
            .unwrap();
        assert_eq!(found.identifier, "PowerNook");
        // No match: None.
        assert!(t
            .nearest_matching(from, |o| o.attribute("teleporter") == Some("yes"))
            .is_none());
    }

    #[test]
    fn nearest_matching_single_pass_matches_sort_based_reference() {
        // The allocation-free running-minimum scan must agree with the
        // collect-sort-take-first implementation it replaced, from many
        // vantage points and under several predicates, on the paper's
        // floor fixture.
        let t = floor_table();
        let reference = |p: Point, pred: &dyn Fn(&SpatialObject) -> bool| -> Option<String> {
            let mut candidates: Vec<&SpatialObject> = t.rows.values().filter(|o| pred(o)).collect();
            candidates.sort_by(|a, b| {
                a.mbr()
                    .distance_to_point(p)
                    .total_cmp(&b.mbr().distance_to_point(p))
            });
            candidates.first().map(|o| o.identifier.clone())
        };
        type Pred = Box<dyn Fn(&SpatialObject) -> bool>;
        let preds: Vec<(&str, Pred)> = vec![
            ("rooms", Box::new(|o| o.object_type == ObjectType::Room)),
            ("any", Box::new(|_| true)),
            ("none", Box::new(|_| false)),
            (
                "corridors",
                Box::new(|o| o.object_type == ObjectType::Corridor),
            ),
        ];
        for (x, y) in [
            (0.0, 0.0),
            (340.0, 10.0),
            (355.0, 15.0),
            (500.0, 100.0),
            (250.0, 50.0),
            (-20.0, 110.0),
        ] {
            let p = Point::new(x, y);
            for (name, pred) in &preds {
                let fast = t
                    .nearest_matching(p, |o| pred(o))
                    .map(|o| o.identifier.clone());
                assert_eq!(
                    fast,
                    reference(p, pred),
                    "diverged from sort-based reference at ({x}, {y}) with predicate {name}"
                );
            }
        }
    }

    #[test]
    fn objects_of_type() {
        let t = floor_table();
        let rooms: Vec<&str> = t
            .objects_of_type(&ObjectType::Room)
            .map(|o| o.identifier.as_str())
            .collect();
        assert_eq!(rooms.len(), 2);
        assert!(rooms.contains(&"3105") && rooms.contains(&"NetLab"));
    }
}
