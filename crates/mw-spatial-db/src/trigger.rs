//! Location triggers (§5.3).
//!
//! "Location triggers are events that are generated when a certain spatial
//! condition is satisfied. … MiddleWhere interprets these conditions into
//! appropriate database triggers and creates these triggers in the
//! database. When a condition is satisfied, the spatial database generates
//! the corresponding trigger."
//!
//! At the database layer a trigger is geometric: it fires when an inserted
//! sensor reading's rectangle intersects the trigger region (optionally
//! filtered to one mobile object). The Location Service layers the
//! probability threshold of §4.3 on top.

use std::collections::HashMap;
use std::fmt;

use mw_geometry::{RTree, Rect};
use mw_model::SimTime;
use mw_sensors::{MobileObjectId, SensorReading};

use crate::DbError;

/// Identifier of a registered trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriggerId(u64);

impl TriggerId {
    /// The raw id.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TriggerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trigger#{}", self.0)
    }
}

/// A trigger registration: fire when a reading about `object` (or any
/// object) intersects `region`.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerSpec {
    /// The watched region (an MBR in building coordinates).
    pub region: Rect,
    /// Restrict to one mobile object, or `None` for any.
    pub object: Option<MobileObjectId>,
}

/// A fired trigger event.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerEvent {
    /// Which trigger fired.
    pub trigger: TriggerId,
    /// The object whose reading satisfied the condition.
    pub object: MobileObjectId,
    /// The reading's region.
    pub reading_region: Rect,
    /// When the triggering reading was inserted.
    pub at: SimTime,
}

/// The database trigger engine: an R-tree of trigger regions matched
/// against every inserted reading.
#[derive(Debug, Clone, Default)]
pub struct TriggerManager {
    next_id: u64,
    index: RTree<(TriggerId, Option<MobileObjectId>)>,
    /// Id → spec beside the R-tree, so `get`/`unregister` are O(1)
    /// instead of a linear scan over every registration.
    regions: HashMap<TriggerId, TriggerSpec>,
}

impl TriggerManager {
    /// Creates an empty manager.
    #[must_use]
    pub fn new() -> Self {
        TriggerManager::default()
    }

    /// Number of registered triggers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Returns `true` when no triggers are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Registers a trigger and returns its id.
    pub fn register(&mut self, spec: TriggerSpec) -> TriggerId {
        let id = TriggerId(self.next_id);
        self.next_id += 1;
        self.index.insert(spec.region, (id, spec.object.clone()));
        self.regions.insert(id, spec);
        id
    }

    /// Unregisters a trigger.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTrigger`] when the id does not exist.
    pub fn unregister(&mut self, id: TriggerId) -> Result<(), DbError> {
        let spec = self
            .regions
            .remove(&id)
            .ok_or(DbError::UnknownTrigger { id: id.0 })?;
        self.index.remove_if(&spec.region, |(tid, _)| *tid == id);
        Ok(())
    }

    /// Matches an inserted reading against all triggers; returns the fired
    /// events. This is the hot path measured by the paper's Figure 9 —
    /// the R-tree makes it (nearly) independent of the number of
    /// registered triggers.
    #[must_use]
    pub fn on_insert(&self, reading: &SensorReading, now: SimTime) -> Vec<TriggerEvent> {
        self.index
            .query_window(&reading.region)
            .filter(|(_, (_, object))| object.as_ref().is_none_or(|o| o == &reading.object))
            .map(|(_, (id, _))| TriggerEvent {
                trigger: *id,
                object: reading.object.clone(),
                reading_region: reading.region,
                at: now,
            })
            .collect()
    }

    /// The spec of a registered trigger — a hash lookup, not a scan.
    #[must_use]
    pub fn get(&self, id: TriggerId) -> Option<&TriggerSpec> {
        self.regions.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mw_geometry::Point;
    use mw_model::{SimDuration, TemporalDegradation};
    use mw_sensors::SensorSpec;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn reading(object: &str, region: Rect) -> SensorReading {
        SensorReading {
            sensor_id: "Ubi-18".into(),
            spec: SensorSpec::ubisense(0.9),
            object: object.into(),
            glob_prefix: "SC/Floor3".parse().unwrap(),
            region,
            detected_at: SimTime::ZERO,
            time_to_live: SimDuration::from_secs(10.0),
            tdf: TemporalDegradation::None,
            moving: false,
        }
    }

    #[test]
    fn trigger_fires_on_intersecting_reading() {
        let mut m = TriggerManager::new();
        let id = m.register(TriggerSpec {
            region: r(0.0, 0.0, 10.0, 10.0),
            object: None,
        });
        let events = m.on_insert(&reading("alice", r(5.0, 5.0, 6.0, 6.0)), SimTime::ZERO);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trigger, id);
        assert_eq!(events[0].object, "alice".into());
    }

    #[test]
    fn trigger_does_not_fire_outside() {
        let mut m = TriggerManager::new();
        m.register(TriggerSpec {
            region: r(0.0, 0.0, 10.0, 10.0),
            object: None,
        });
        let events = m.on_insert(&reading("alice", r(50.0, 50.0, 51.0, 51.0)), SimTime::ZERO);
        assert!(events.is_empty());
    }

    #[test]
    fn object_filter() {
        let mut m = TriggerManager::new();
        m.register(TriggerSpec {
            region: r(0.0, 0.0, 10.0, 10.0),
            object: Some("alice".into()),
        });
        assert_eq!(
            m.on_insert(&reading("alice", r(1.0, 1.0, 2.0, 2.0)), SimTime::ZERO)
                .len(),
            1
        );
        assert!(m
            .on_insert(&reading("bob", r(1.0, 1.0, 2.0, 2.0)), SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn multiple_triggers_can_fire() {
        let mut m = TriggerManager::new();
        let a = m.register(TriggerSpec {
            region: r(0.0, 0.0, 10.0, 10.0),
            object: None,
        });
        let b = m.register(TriggerSpec {
            region: r(5.0, 5.0, 15.0, 15.0),
            object: None,
        });
        let events = m.on_insert(&reading("alice", r(6.0, 6.0, 7.0, 7.0)), SimTime::ZERO);
        let mut fired: Vec<TriggerId> = events.iter().map(|e| e.trigger).collect();
        fired.sort();
        assert_eq!(fired, vec![a, b]);
    }

    #[test]
    fn unregister_stops_firing() {
        let mut m = TriggerManager::new();
        let id = m.register(TriggerSpec {
            region: r(0.0, 0.0, 10.0, 10.0),
            object: None,
        });
        assert_eq!(m.len(), 1);
        m.unregister(id).unwrap();
        assert!(m.is_empty());
        assert!(m
            .on_insert(&reading("alice", r(1.0, 1.0, 2.0, 2.0)), SimTime::ZERO)
            .is_empty());
        assert!(matches!(
            m.unregister(id),
            Err(DbError::UnknownTrigger { .. })
        ));
    }

    #[test]
    fn many_triggers_fire_only_matching_ones() {
        let mut m = TriggerManager::new();
        // A 10x10 grid of 5x5 trigger cells.
        for i in 0..10 {
            for j in 0..10 {
                m.register(TriggerSpec {
                    region: r(
                        i as f64 * 5.0,
                        j as f64 * 5.0,
                        i as f64 * 5.0 + 5.0,
                        j as f64 * 5.0 + 5.0,
                    ),
                    object: None,
                });
            }
        }
        assert_eq!(m.len(), 100);
        // A reading inside one cell, touching no boundary, fires exactly 1.
        let events = m.on_insert(&reading("alice", r(1.0, 1.0, 2.0, 2.0)), SimTime::ZERO);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn get_returns_spec() {
        let mut m = TriggerManager::new();
        let id = m.register(TriggerSpec {
            region: r(0.0, 0.0, 1.0, 1.0),
            object: Some("alice".into()),
        });
        let spec = m.get(id).unwrap();
        assert_eq!(spec.object, Some("alice".into()));
        assert!(m.get(TriggerId(999)).is_none());
    }
}
