//! Property-based tests for the spatial database.

use mw_geometry::{Point, Polygon, Rect};
use mw_model::{SimDuration, SimTime, TemporalDegradation};
use mw_sensors::{SensorReading, SensorSpec};
use mw_spatial_db::{
    Geometry, ObjectType, SensorReadingTable, SpatialObject, SpatialTable, TriggerManager,
    TriggerSpec,
};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (0.0..450.0f64, 0.0..80.0f64, 1.0..50.0f64, 1.0..20.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(Point::new(x, y), Point::new(x + w, y + h)))
}

fn reading(object: &str, region: Rect, at: f64, ttl: f64) -> SensorReading {
    SensorReading {
        sensor_id: "S".into(),
        spec: SensorSpec::ubisense(0.9),
        object: object.into(),
        glob_prefix: "CS/Floor3".parse().unwrap(),
        region,
        detected_at: SimTime::from_secs(at),
        time_to_live: SimDuration::from_secs(ttl),
        tdf: TemporalDegradation::None,
        moving: false,
    }
}

proptest! {
    #[test]
    fn window_queries_match_linear_scan(
        rects in proptest::collection::vec(rect_strategy(), 1..40),
        window in rect_strategy(),
    ) {
        let mut table = SpatialTable::new();
        for (i, r) in rects.iter().enumerate() {
            table
                .insert(SpatialObject::new(
                    format!("obj{i}"),
                    "CS/Floor3".parse().unwrap(),
                    ObjectType::Room,
                    Geometry::Polygon(Polygon::from_rect(r)),
                ))
                .unwrap();
        }
        let mut from_index: Vec<String> = table
            .objects_in_window(&window)
            .map(|o| o.identifier.clone())
            .collect();
        let mut from_scan: Vec<String> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| format!("obj{i}"))
            .collect();
        from_index.sort();
        from_scan.sort();
        prop_assert_eq!(from_index, from_scan);
    }

    #[test]
    fn point_queries_respect_exact_geometry(
        rects in proptest::collection::vec(rect_strategy(), 1..20),
        px in 0.0..500.0f64,
        py in 0.0..100.0f64,
    ) {
        let p = Point::new(px, py);
        let mut table = SpatialTable::new();
        for (i, r) in rects.iter().enumerate() {
            table
                .insert(SpatialObject::new(
                    format!("obj{i}"),
                    "CS/Floor3".parse().unwrap(),
                    ObjectType::Room,
                    Geometry::Polygon(Polygon::from_rect(r)),
                ))
                .unwrap();
        }
        let hits = table.objects_at_point(p).count();
        let expected = rects.iter().filter(|r| r.contains_point(p)).count();
        prop_assert_eq!(hits, expected);
    }

    #[test]
    fn enclosing_region_is_smallest_container(
        rects in proptest::collection::vec(rect_strategy(), 1..15),
        px in 0.0..500.0f64,
        py in 0.0..100.0f64,
    ) {
        let p = Point::new(px, py);
        let mut table = SpatialTable::new();
        for (i, r) in rects.iter().enumerate() {
            table
                .insert(SpatialObject::new(
                    format!("obj{i}"),
                    "CS/Floor3".parse().unwrap(),
                    ObjectType::Room,
                    Geometry::Polygon(Polygon::from_rect(r)),
                ))
                .unwrap();
        }
        let enclosing = table.enclosing_region(p);
        let best = rects
            .iter()
            .filter(|r| r.contains_point(p))
            .map(|r| r.area())
            .fold(f64::INFINITY, f64::min);
        match enclosing {
            Some(obj) => prop_assert!((obj.mbr().area() - best).abs() < 1e-9),
            None => prop_assert!(best.is_infinite()),
        }
    }

    #[test]
    fn triggers_fire_iff_intersecting(
        trigger_rects in proptest::collection::vec(rect_strategy(), 1..30),
        reading_rect in rect_strategy(),
    ) {
        let mut manager = TriggerManager::new();
        for r in &trigger_rects {
            manager.register(TriggerSpec {
                region: *r,
                object: None,
            });
        }
        let fired = manager.on_insert(&reading("alice", reading_rect, 0.0, 10.0), SimTime::ZERO);
        let expected = trigger_rects
            .iter()
            .filter(|r| r.intersects(&reading_rect))
            .count();
        prop_assert_eq!(fired.len(), expected);
    }

    #[test]
    fn reading_table_keeps_latest_per_pair(
        times in proptest::collection::vec(0.0..100.0f64, 1..20),
    ) {
        let mut table = SensorReadingTable::new();
        for &t in &times {
            table.insert(reading("alice", Rect::from_center(Point::new(10.0, 10.0), 2.0, 2.0), t, 1000.0));
        }
        prop_assert_eq!(table.len(), 1);
        let alice: mw_sensors::MobileObjectId = "alice".into();
        let stored: Vec<&SensorReading> = table
            .readings_for(&alice, SimTime::from_secs(100.0))
            .collect();
        prop_assert_eq!(stored.len(), 1);
        prop_assert_eq!(stored[0].detected_at, SimTime::from_secs(*times.last().unwrap()));
    }

    #[test]
    fn prune_removes_exactly_expired(
        ttls in proptest::collection::vec(1.0..100.0f64, 1..20),
        now in 0.0..150.0f64,
    ) {
        let mut table = SensorReadingTable::new();
        for (i, &ttl) in ttls.iter().enumerate() {
            let mut r = reading(&format!("p{i}"), Rect::from_center(Point::new(5.0, 5.0), 1.0, 1.0), 0.0, ttl);
            r.sensor_id = format!("S{i}").as_str().into();
            table.insert(r);
        }
        let now_t = SimTime::from_secs(now);
        let expected_live = ttls.iter().filter(|&&ttl| now <= ttl).count();
        prop_assert_eq!(table.live_readings(now_t).count(), expected_live);
        let pruned = table.prune_expired(now_t);
        prop_assert_eq!(pruned, ttls.len() - expected_live);
        prop_assert_eq!(table.len(), expected_live);
    }
}
