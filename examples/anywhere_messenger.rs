//! The paper's *Anywhere Instant Messaging* application (§8.2).
//!
//! "This application allows a user to receive instant messages from a
//! designated list of 'buddies' on whichever display is closest to him. A
//! user can customize the application by … configuring the system to
//! display private messages only if the location accuracy is 'high' and
//! other users are not in the immediate vicinity!"
//!
//! Run with `cargo run --example anywhere_messenger`.

use middlewhere::core::LocationService;
use middlewhere::fusion::ProbabilityBand;
use middlewhere::geometry::Point;
use middlewhere::model::{SimDuration, SimTime};
use middlewhere::sensors::adapters::{UbisenseAdapter, UbisenseSighting};
use middlewhere::sensors::{Adapter, MobileObjectId};
use mw_bus::Broker;
use mw_sim::building::paper_floor;

struct Message {
    from: &'static str,
    to: &'static str,
    body: &'static str,
    private: bool,
}

/// Fixed wall displays around the floor.
const DISPLAYS: &[(&str, Point)] = &[
    ("display-3105", Point::new(336.0, 4.0)),
    ("display-netlab", Point::new(366.0, 4.0)),
    ("display-corridor", Point::new(400.0, 40.0)),
];

fn nearest_display(
    service: &LocationService,
    user: &MobileObjectId,
    now: SimTime,
) -> Option<(&'static str, f64)> {
    let fix = service.locate(user, now).ok()?;
    DISPLAYS
        .iter()
        .map(|(name, pos)| (*name, fix.region.distance_to_point(*pos)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

fn main() {
    let plan = paper_floor();
    let broker = Broker::new();
    let service = LocationService::new(plan.db, plan.universe, &broker);

    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-1".into(),
        "CS/Floor3".parse().expect("glob"),
        1.0,
    );

    // Alice works in room 3105; Bob lurks nearby in the same room; Carol
    // is far away in the NetLab.
    let mut clock = SimTime::ZERO;
    let people = [
        ("alice", Point::new(337.0, 6.0)),
        ("bob", Point::new(339.0, 8.0)),
        ("carol", Point::new(368.0, 12.0)),
    ];
    clock += SimDuration::from_secs(1.0);
    for (name, pos) in people {
        service.ingest(
            ubi.translate(
                UbisenseSighting {
                    tag: name.into(),
                    position: pos,
                },
                clock,
            ),
            clock,
        );
    }
    let now = clock + SimDuration::from_secs(1.0);

    let inbox = [
        Message {
            from: "carol",
            to: "alice",
            body: "lunch at noon?",
            private: false,
        },
        Message {
            from: "hr",
            to: "alice",
            body: "your salary review is ready",
            private: true,
        },
        Message {
            from: "alice",
            to: "carol",
            body: "be there in five",
            private: false,
        },
        Message {
            from: "hr",
            to: "carol",
            body: "confidential: offer letter",
            private: true,
        },
    ];

    for msg in inbox {
        let to: MobileObjectId = msg.to.into();
        let Some((display, _)) = nearest_display(&service, &to, now) else {
            println!("[{}] offline — message queued: {:?}", msg.to, msg.body);
            continue;
        };
        if msg.private {
            // Privacy gate 1: the location must be known with high
            // accuracy.
            let fix = service.locate(&to, now).expect("already located");
            let accurate = fix.band >= ProbabilityBand::Medium && fix.probability > 0.8;
            // Privacy gate 2: nobody else within 6 ft.
            let bystanders: Vec<String> = people
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| *n != msg.to)
                .filter(|n| {
                    service
                        .proximity(&to, &(*n).into(), 6.0, now)
                        .map(|rel| rel.holds && rel.probability > 0.25)
                        .unwrap_or(false)
                })
                .map(str::to_string)
                .collect();
            if !accurate {
                println!(
                    "[{}] private message from {} withheld (accuracy {} / p={:.2})",
                    msg.to, msg.from, fix.band, fix.probability
                );
                continue;
            }
            if !bystanders.is_empty() {
                println!(
                    "[{}] private message from {} withheld ({} nearby)",
                    msg.to,
                    msg.from,
                    bystanders.join(", ")
                );
                continue;
            }
        }
        println!(
            "[{}] showing message from {} on {}: {:?}",
            msg.to, msg.from, display, msg.body
        );
    }
}
