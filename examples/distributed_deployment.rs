//! A distributed deployment tour: the world model is authored as a
//! blueprint document (the role the building blueprints played for the
//! original system), loaded into a Location Service, and notifications
//! are delivered to a *remote* subscriber over the TCP bridge — the
//! CORBA-style distribution of §7.
//!
//! Run with `cargo run --example distributed_deployment`.

use std::time::Duration;

use middlewhere::core::{
    LocationService, Notification, SharedNotification, SubscriptionSpec, NOTIFICATION_TOPIC,
};
use middlewhere::geometry::Point;
use middlewhere::model::SimTime;
use middlewhere::sensors::adapters::{UbisenseAdapter, UbisenseSighting};
use middlewhere::sensors::Adapter;
use middlewhere::spatial_db::SpatialDatabase;
use mw_bus::remote::{remote_subscribe, RemoteTopicServer};
use mw_bus::Broker;
use mw_sim::building::paper_floor;

fn main() {
    // 1. Author the deployment: the facilities team exports the floor
    //    blueprint as JSON (here generated from the paper's floor model).
    let authored = paper_floor();
    let blueprint_json = authored.db.export_blueprint();
    println!(
        "blueprint document: {} bytes, {} objects",
        blueprint_json.len(),
        authored.db.objects().len()
    );

    // 2. The middleware host loads the blueprint into a fresh database.
    let db = SpatialDatabase::from_blueprint(&blueprint_json).expect("valid blueprint");
    let broker = Broker::new();
    let service = LocationService::new(db, authored.universe, &broker);

    // 3. Export the notification topic over TCP, and connect a "remote
    //    application" (in the original: a CORBA client elsewhere on the
    //    network).
    // The service publishes `Arc<Notification>` locally; the Arc is
    // wire-transparent, so the remote side decodes plain `Notification`s.
    let topic = broker.topic::<SharedNotification>(NOTIFICATION_TOPIC);
    let server = RemoteTopicServer::bind("127.0.0.1:0", topic).expect("bind");
    println!("notification bridge listening on {}", server.local_addr());
    let remote_inbox = remote_subscribe::<Notification>(server.local_addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(100)); // let the bridge register

    // 4. Subscribe to room 3105 and push a sighting through an adapter.
    let room = service
        .with_world(|w| w.region_rect("CS/Floor3/3105"))
        .expect("room in blueprint");
    let sub = service.subscribe(SubscriptionSpec::region_entry(room, 0.5));
    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().expect("glob"),
        1.0,
    );
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "visiting-researcher".into(),
                position: Point::new(340.0, 15.0),
            },
            SimTime::ZERO,
        ),
        SimTime::ZERO,
    );

    // 5. The remote application receives the push notification.
    match remote_inbox.recv_timeout(Duration::from_secs(5)) {
        Some(n) => {
            assert_eq!(n.subscription, sub);
            println!(
                "remote application received: {} entered the watched region \
                 (p = {:.2}, band = {})",
                n.object, n.probability, n.band
            );
        }
        None => println!("no notification arrived (unexpected)"),
    }
}
