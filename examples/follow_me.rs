//! The paper's *Follow Me* application (§8.1): a user's session follows
//! them from display to display.
//!
//! "If a user moves out of the vicinity of the display he is using, the
//! application will automatically suspend the session. When a user is
//! detected in the vicinity of any other display or workstation, the
//! session is automatically migrated and resumed at that machine."
//!
//! A *user proxy* subscribes to the display usage regions and reacts to
//! MiddleWhere notifications. Run with `cargo run --example follow_me`.

use middlewhere::core::{LocationService, SubscriptionSpec};
use middlewhere::geometry::{Point, Polygon, Rect};
use middlewhere::model::{SimDuration, SimTime};
use middlewhere::sensors::adapters::{UbisenseAdapter, UbisenseSighting};
use middlewhere::sensors::Adapter;
use middlewhere::spatial_db::{Geometry, ObjectType, SpatialObject};
use mw_bus::Broker;
use mw_sim::building::paper_floor;

/// The user proxy: manages which display currently hosts the session.
struct UserProxy {
    user: String,
    active_display: Option<String>,
}

impl UserProxy {
    fn on_enter_usage_region(&mut self, display: &str) {
        match &self.active_display {
            Some(current) if current == display => {}
            Some(current) => {
                println!("[proxy] suspending session on {current}");
                println!(
                    "[proxy] migrating + resuming session of {} on {display}",
                    self.user
                );
                self.active_display = Some(display.to_string());
            }
            None => {
                println!("[proxy] resuming session of {} on {display}", self.user);
                self.active_display = Some(display.to_string());
            }
        }
    }

    fn on_left_all_displays(&mut self) {
        if let Some(current) = self.active_display.take() {
            println!("[proxy] user away — suspending session on {current}");
        }
    }
}

fn main() {
    let plan = paper_floor();
    let broker = Broker::new();
    let service = LocationService::new(plan.db, plan.universe, &broker);

    // Two wall displays with usage regions (§4.6.2b): one in room 3105,
    // one in the NetLab.
    let displays = [
        (
            "display-3105",
            Rect::new(Point::new(332.0, 0.0), Point::new(342.0, 8.0)),
        ),
        (
            "display-netlab",
            Rect::new(Point::new(362.0, 0.0), Point::new(372.0, 8.0)),
        ),
    ];
    for (name, usage) in &displays {
        service
            .add_object(
                SpatialObject::new(
                    format!("usage-{name}"),
                    "CS/Floor3".parse().expect("glob"),
                    ObjectType::UsageRegion,
                    Geometry::Polygon(Polygon::from_rect(usage)),
                )
                .with_attribute("usage-for", *name),
            )
            .expect("unique usage regions");
        // Subscribe: notify when alice is in the usage region with at
        // least even odds.
        let _ = service
            .subscribe(SubscriptionSpec::region_entry(*usage, 0.5).for_object("alice".into()));
    }

    let mut proxy = UserProxy {
        user: "alice".into(),
        active_display: None,
    };

    // Alice walks from room 3105's display to the NetLab's, tracked by
    // Ubisense.
    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-1".into(),
        "CS/Floor3".parse().expect("glob"),
        1.0,
    );
    let waypoints = [
        Point::new(336.0, 4.0),  // at the 3105 display
        Point::new(338.0, 20.0), // wandering the room
        Point::new(340.0, 35.0), // out in the corridor
        Point::new(366.0, 40.0), // corridor, approaching NetLab
        Point::new(368.0, 10.0), // inside NetLab
        Point::new(366.0, 4.0),  // at the NetLab display
    ];

    let mut clock = SimTime::ZERO;
    for position in waypoints {
        clock += SimDuration::from_secs(5.0);
        println!("t={:>5.1}s  alice at {position}", clock.as_secs());
        service.ingest(
            ubi.translate(
                UbisenseSighting {
                    tag: "alice".into(),
                    position,
                },
                clock,
            ),
            clock,
        );

        // The proxy checks which display (if any) alice can use now.
        let mut using = None;
        for (name, _) in &displays {
            if let Ok(rel) = service.can_use(&"alice".into(), name, clock) {
                if rel.holds && rel.probability > 0.5 {
                    using = Some(*name);
                }
            }
        }
        match using {
            Some(display) => proxy.on_enter_usage_region(display),
            None => proxy.on_left_all_displays(),
        }
    }

    println!(
        "final: session hosted on {:?}",
        proxy.active_display.as_deref().unwrap_or("<nowhere>")
    );
}
