//! The paper's *Location-Based Notifications* application (§8.3), driven
//! by the full simulator.
//!
//! "Notifications are sent to people located in a particular geographical
//! boundary … The notification may be a message like 'The store is
//! closing in five minutes'. This application is implemented by setting
//! up location triggers in the target area, and maintaining a list of
//! users in the region."
//!
//! Run with `cargo run --example location_notifications`.

use std::collections::BTreeSet;

use middlewhere::core::{LocationQuery, SharedNotification, SubscriptionSpec, NOTIFICATION_TOPIC};
use middlewhere::model::SimDuration;
use mw_sim::{building, DeploymentConfig, SimConfig, Simulation};

fn main() {
    // A busy floor: 8 people wandering, every room covered by Ubisense.
    let plan = building::paper_floor();
    let n_rooms = plan.rooms.len();
    let mut sim = Simulation::new(
        plan,
        SimConfig {
            seed: 2026,
            people: 8,
            deployment: DeploymentConfig {
                ubisense_rooms: (0..n_rooms).collect(),
                rfid_rooms: vec![],
                biometric_rooms: vec![],
                carry_probability: 1.0,
                ..DeploymentConfig::default()
            },
            aging_inflation_ft_per_s: 0.0,
        },
    );

    // The "store" is the NetLab. Set a location trigger over it.
    let netlab = sim
        .rooms()
        .iter()
        .find(|(name, _)| name.ends_with("NetLab"))
        .map(|(_, rect)| *rect)
        .expect("NetLab exists");
    let subscription = sim
        .service()
        .subscribe(SubscriptionSpec::region_entry(netlab, 0.5));

    // Listen on the bus like any Gaia application would.
    let inbox = sim
        .broker()
        .topic::<SharedNotification>(NOTIFICATION_TOPIC)
        .subscribe();

    // Simulate ten minutes of office life.
    let mut roster: BTreeSet<String> = BTreeSet::new();
    for _ in 0..600 {
        sim.step(SimDuration::from_secs(1.0));
        for n in inbox.drain() {
            if n.subscription == subscription {
                let newcomer = roster.insert(n.object.to_string());
                if newcomer {
                    println!(
                        "t={:>6.1}s  {} entered the store area (p = {:.2}) — sending: \
                         \"The store is closing in five minutes\"",
                        n.at.as_secs(),
                        n.object,
                        n.probability
                    );
                }
            }
        }
        // People who left drop off the roster so they can be re-notified
        // on their next visit.
        let now = sim.clock();
        roster.retain(|person| {
            sim.service()
                .query(LocationQuery::of(person.as_str()).in_rect(netlab).at(now))
                .ok()
                .and_then(|a| a.probability())
                .unwrap_or(0.0)
                > 0.3
        });
    }

    println!(
        "-- simulation done; {} people on the final roster --",
        roster.len()
    );
    for person in &roster {
        println!("still inside: {person}");
    }
}
