//! The paper's *Vocal Personnel Locator* application (§8.4), with the
//! speech interface replaced by a command grammar (the original used a
//! voice front-end; the middleware interaction is identical).
//!
//! "A user asks the computer to locate a person or an object using a
//! speech interface. The application then queries the spatial database
//! for the required info, and replies verbally."
//!
//! Run with `cargo run --example personnel_locator`.

use middlewhere::core::LocationService;
use middlewhere::geometry::Point;
use middlewhere::model::{SimDuration, SimTime};
use middlewhere::sensors::adapters::{
    BiometricAdapter, BiometricEvent, UbisenseAdapter, UbisenseSighting,
};
use middlewhere::sensors::Adapter;
use mw_bus::Broker;
use mw_sim::building::paper_floor;

/// Answers a "where is X" query in prose, like the voice interface did.
fn answer_where(service: &LocationService, who: &str, now: SimTime) -> String {
    match service.locate(&who.into(), now) {
        Ok(fix) => {
            let place = fix
                .symbolic
                .map_or_else(|| "an unknown area".to_string(), |g| format!("{g}"));
            let confidence = match fix.band {
                middlewhere::fusion::ProbabilityBand::VeryHigh => "certainly",
                middlewhere::fusion::ProbabilityBand::High => "most likely",
                middlewhere::fusion::ProbabilityBand::Medium => "probably",
                middlewhere::fusion::ProbabilityBand::Low => "possibly",
            };
            format!(
                "{who} is {confidence} in {place} (p = {:.2}).",
                fix.probability
            )
        }
        Err(_) => format!("I have no recent location information about {who}."),
    }
}

/// Answers "who is in <room>".
fn answer_who_in(service: &LocationService, room: &str, now: SimTime) -> String {
    match service.objects_in_region(room, 0.5, now) {
        Ok(list) if list.is_empty() => format!("Nobody is in {room} right now."),
        Ok(list) => {
            let names: Vec<String> = list.iter().map(|(o, p)| format!("{o} ({p:.2})")).collect();
            format!("In {room}: {}.", names.join(", "))
        }
        Err(_) => format!("I do not know a region called {room}."),
    }
}

/// Answers "how far from <a> to <b>" using the paper's path distance.
fn answer_distance(service: &LocationService, a: &str, b: &str) -> String {
    service.with_world(|world| match world.path_distance(a, b, true) {
        Ok(Some(d)) => format!("Walking from {a} to {b} is about {d:.0} feet."),
        Ok(None) => format!("There is no walkable route from {a} to {b}."),
        Err(_) => "I do not know one of those places.".to_string(),
    })
}

fn main() {
    let plan = paper_floor();
    let broker = Broker::new();
    let service = LocationService::new(plan.db, plan.universe, &broker);

    // Seed the floor with some activity.
    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-1".into(),
        "CS/Floor3".parse().expect("glob"),
        1.0,
    );
    let netlab_rect =
        middlewhere::geometry::Rect::new(Point::new(360.0, 0.0), Point::new(380.0, 30.0));
    let mut fingerprint = BiometricAdapter::with_parts(
        "bio-adapter-1".into(),
        "Fp-1".into(),
        "CS/Floor3/NetLab".parse().expect("glob"),
        netlab_rect.center(),
        netlab_rect,
        0.2,
    );

    let mut clock = SimTime::ZERO;
    clock += SimDuration::from_secs(1.0);
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "ranganathan".into(),
                position: Point::new(341.0, 12.0), // room 3105
            },
            clock,
        ),
        clock,
    );
    service.ingest(
        fingerprint.translate(
            BiometricEvent::Login {
                user: "campbell".into(),
            },
            clock,
        ),
        clock,
    );
    // Privacy: mickunas reveals his location only to floor granularity.
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "mickunas".into(),
                position: Point::new(398.0, 12.0), // HCILab
            },
            clock,
        ),
        clock,
    );
    service.set_privacy("mickunas".into(), 2);

    let now = clock + SimDuration::from_secs(1.0);
    let queries = [
        "where is ranganathan",
        "where is campbell",
        "where is mickunas",
        "where is almuhtadi",
        "who is in CS/Floor3/3105",
        "who is in CS/Floor3/NetLab",
        "distance CS/Floor3/3105 CS/Floor3/HCILab",
    ];
    for query in queries {
        let words: Vec<&str> = query.split_whitespace().collect();
        let reply = match words.as_slice() {
            ["where", "is", who] => answer_where(&service, who, now),
            ["who", "is", "in", room] => answer_who_in(&service, room, now),
            ["distance", a, b] => answer_distance(&service, a, b),
            _ => "Sorry, I did not understand.".to_string(),
        };
        println!("> {query}\n  {reply}");
    }
}
