//! End-to-end observability probe: a full ingest→fusion→query pipeline
//! with metrics flowing into one shared [`MetricsRegistry`], a TCP
//! notification bridge abused by raw-socket probes and a fault-injected
//! client, and finally the stats RPC service queried for a [`Snapshot`]
//! of every layer.
//!
//! Run with: `cargo run --release --example probe_server`

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use middlewhere::bus::fault::{FaultAction, FaultInjector, FaultPlan};
use middlewhere::bus::remote::{
    remote_subscribe_with_transport, RemoteTopicServer, ServerOptions, SubscribeOptions,
};
use middlewhere::bus::stats::{fetch_snapshot, serve_stats, SnapshotPublisher, SNAPSHOT_TOPIC};
use middlewhere::bus::transport::TcpFrameTransport;
use middlewhere::bus::Broker;
use middlewhere::core::{
    CoreError, LocationQuery, LocationService, Notification, SharedNotification, SubscriptionSpec,
    NOTIFICATION_TOPIC,
};
use middlewhere::geometry::{Point, Rect};
use middlewhere::model::{SimDuration, SimTime, TemporalDegradation};
use middlewhere::obs::{MetricsRegistry, Snapshot};
use middlewhere::sensors::{Adapter, HealthConfig, SensorReading, SensorSpec, SensorSupervisor};
use middlewhere::sim::building::paper_floor;
use middlewhere::sim::{ByzantineAdapter, ByzantineMode};

fn reading(object: &str, region: Rect, at: f64) -> SensorReading {
    SensorReading {
        sensor_id: "Ubi-probe".into(),
        // Carried badge (carry probability 1): posteriors track the
        // sensor's detection probability.
        spec: SensorSpec::ubisense(1.0),
        object: object.into(),
        glob_prefix: "CS/Floor3".parse().expect("valid glob"),
        region,
        detected_at: SimTime::from_secs(at),
        time_to_live: SimDuration::from_secs(30.0),
        tdf: TemporalDegradation::None,
        moving: false,
    }
}

fn main() {
    // One registry for every layer of the pipeline.
    let registry = MetricsRegistry::new();
    let broker = Broker::new();
    let plan = paper_floor();
    let universe = plan.universe;
    // Supervised service: every reading passes the sensor-health gates
    // and `health.*` metrics land in the same registry. The probe
    // pipeline paces sightings ~10 s apart on sensors that declare a 1 s
    // period, so widen the staleness window — only the scripted rogue
    // below should trip the supervisor.
    let mut supervision = HealthConfig::new(universe);
    supervision.staleness_factor = 20.0;
    let supervisor = SensorSupervisor::new(supervision).shared();
    let service =
        LocationService::new_supervised(plan.db, universe, &broker, &registry, supervisor);

    // Serve the registry over the bus (pull) and on the snapshot topic
    // (push).
    let _stats_thread = serve_stats(&broker, registry.clone()).expect("stats service");
    let snapshot_inbox = broker.topic::<Snapshot>(SNAPSHOT_TOPIC).subscribe();
    let publisher = SnapshotPublisher::spawn(&broker, registry.clone(), Duration::from_millis(50));

    // Export the notification topic over TCP, counters into the shared
    // registry.
    let topic = broker.topic::<SharedNotification>(NOTIFICATION_TOPIC);
    let server = RemoteTopicServer::bind_with(
        "127.0.0.1:0",
        topic,
        ServerOptions {
            metrics: Some(registry.clone()),
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    println!("notification bridge listening on {addr}");

    // --- adversarial probes against the bridge ---------------------------

    // Probe 1: pure garbage instead of a Hello frame.
    let mut garbage = TcpStream::connect(addr).unwrap();
    garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    drop(garbage);

    // Probe 2: a syntactically valid header claiming a 1 GiB payload.
    let mut huge = TcpStream::connect(addr).unwrap();
    let mut frame = vec![0u8; 17];
    frame[0] = 0; // Hello
    frame[9..13].copy_from_slice(&(1u32 << 30).to_be_bytes());
    huge.write_all(&frame).unwrap();
    drop(huge);

    // Probe 3: connect and vanish without sending anything.
    drop(TcpStream::connect(addr).unwrap());

    // Give the server a moment to time the silent peer out.
    std::thread::sleep(Duration::from_millis(1500));

    // A legitimate subscriber — through a fault injector that duplicates
    // and drops scripted frames, so the resilience counters light up too.
    let fault_plan = Arc::new(
        FaultPlan::scripted()
            .on_recv(1, FaultAction::Duplicate)
            .on_recv(3, FaultAction::DropFrame)
            .with_metrics(&registry),
    );
    let dial_plan = Arc::clone(&fault_plan);
    let inbox = remote_subscribe_with_transport::<Notification, _>(
        move || {
            TcpFrameTransport::connect(addr)
                .map(|t| Box::new(FaultInjector::new(t, Arc::clone(&dial_plan))) as Box<_>)
        },
        SubscribeOptions {
            metrics: Some(registry.clone()),
            ..SubscribeOptions::default()
        },
    )
    .expect("legit subscribe");

    // --- drive the pipeline ----------------------------------------------

    let room_3105 = Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0));
    let corridor = Rect::new(Point::new(310.0, 0.0), Point::new(330.0, 30.0));
    let _sub = service.subscribe(
        SubscriptionSpec::builder()
            .region(room_3105)
            .min_probability(0.5)
            .build()
            .expect("valid spec"),
    );

    // Alice walks the corridor and enters 3105 a few times; each entry
    // fires a notification through the bridge (the exit re-arms the
    // edge trigger).
    let mut entries = 0u64;
    for lap in 0..4u64 {
        let t = lap as f64 * 20.0;
        service.ingest_reading(
            reading(
                "alice",
                Rect::from_center(Point::new(320.0, 12.0), 2.0, 2.0),
                t,
            ),
            SimTime::from_secs(t),
        );
        let fired = service.ingest_reading(
            reading(
                "alice",
                Rect::from_center(Point::new(340.0, 10.0), 2.0, 2.0),
                t + 10.0,
            ),
            SimTime::from_secs(t + 10.0),
        );
        entries += fired.len() as u64;
    }
    println!("alice entered 3105 {entries} times");

    // Pull-mode queries through the facade.
    let now = SimTime::from_secs(71.0);
    let answer = service
        .query(LocationQuery::of("alice").in_rect(room_3105).at(now))
        .expect("query");
    println!(
        "P(alice in 3105) = {:.3} ({:?})",
        answer.probability().unwrap(),
        answer.band().unwrap()
    );
    assert!(
        answer.quality().is_full(),
        "all sensors healthy, so the answer is full-quality"
    );
    let _ = service
        .query(LocationQuery::of("alice").in_rect(corridor).at(now))
        .expect("query");

    // The remote subscriber saw every entry, exactly once, despite the
    // injected faults.
    let mut received = 0u64;
    while received < entries {
        match inbox.recv_timeout(Duration::from_secs(5)) {
            Some(n) => {
                println!(
                    "remote notification: {} entered (p = {:.2})",
                    n.object, n.probability
                );
                received += 1;
            }
            None => break,
        }
    }
    assert_eq!(received, entries, "exactly-once delivery over the bridge");

    // --- quarantine a rogue sensor live ------------------------------------

    // A second badge tracks mallory; after two honest sightings it
    // starts teleporting 300 ft per reading. Five impossible hops walk
    // it Healthy → Degraded → Quarantined while the service keeps
    // serving alice.
    let mut rogue = ByzantineAdapter::new(
        "Ubi-rogue",
        ByzantineMode::Teleporting { hop_ft: -300.0 },
        2,
        0x0bad_5eed,
    )
    .tracking("mallory");
    for t in 75..=81u32 {
        let now = SimTime::from_secs(f64::from(t));
        service.ingest(rogue.translate(Point::new(320.0, 12.0), now), now);
    }
    assert!(
        service
            .supervisor()
            .expect("supervised service")
            .lock()
            .unwrap()
            .is_quarantined(&"Ubi-rogue".into()),
        "five impossible hops quarantine the rogue"
    );
    println!(
        "Ubi-rogue quarantined after {} impossible hops",
        rogue.faulty_emitted()
    );
    // mallory's only readings came from the quarantined rogue: the
    // service degrades explicitly instead of serving its garbage.
    let mallory = service.query(LocationQuery::of("mallory").at(SimTime::from_secs(82.0)));
    assert!(
        matches!(mallory, Err(CoreError::SensorsQuarantined { .. })),
        "{mallory:?}"
    );

    // --- fetch the snapshot over the stats RPC ----------------------------

    let snapshot = fetch_snapshot(&broker).expect("stats RPC");
    println!("\n--- snapshot (stats RPC) ---");
    println!("{}", snapshot.to_json_pretty());

    let ingest = snapshot
        .histogram("core.ingest.latency_us")
        .expect("ingest latency recorded");
    assert!(ingest.count >= 8, "ingest histogram: {ingest:?}");
    assert!(
        snapshot.histogram("fusion.fuse.latency_us").is_some(),
        "fusion latency recorded"
    );
    let lattice = snapshot
        .histogram("fusion.lattice.size")
        .expect("fusion lattice histogram recorded");
    assert!(lattice.count > 0 && lattice.max > 0, "lattice sizes seen");
    assert_eq!(snapshot.counter("core.query.count"), Some(3));
    assert!(snapshot.counter("db.readings_inserted").unwrap_or(0) >= 8);
    assert!(
        snapshot
            .counter("bus.server.handshake_failures")
            .unwrap_or(0)
            >= 3,
        "the adversarial probes were counted"
    );
    assert_eq!(snapshot.counter("bus.fault.injected"), Some(2));
    assert!(
        snapshot
            .counter("bus.client.duplicates_discarded")
            .unwrap_or(0)
            >= 1,
        "the duplicated frame was discarded exactly once"
    );

    // The supervision layer's ledger, as a filtered section of the same
    // snapshot: exactly the scripted rogue's faults, nothing else.
    let health = snapshot.section("health.");
    assert!(
        !health.counters.is_empty()
            && health
                .counters
                .iter()
                .all(|c| c.name.starts_with("health.")),
        "health section is non-empty and health-only"
    );
    assert_eq!(
        health.counter("health.violations.teleport"),
        Some(rogue.faulty_emitted()),
        "teleport violations == scripted hops"
    );
    assert_eq!(health.counter("health.quarantines"), Some(1));
    assert_eq!(
        health.counter("health.readings_rejected"),
        Some(rogue.faulty_emitted())
    );
    // 8 alice sightings + 2 honest rogue sightings passed the gates.
    assert_eq!(health.counter("health.readings_accepted"), Some(10));
    assert_eq!(health.gauge("health.sensor.Ubi-rogue.state"), Some(2.0));
    println!("\n--- health section ---");
    println!("{}", health.to_json_pretty());

    // The push mode delivered snapshots too.
    let pushed = snapshot_inbox
        .recv_timeout(Duration::from_secs(2))
        .expect("periodic snapshot");
    assert!(pushed.counter("core.ingest.readings").is_some());
    publisher.stop();

    println!("\nserver stats: {:?}", server.stats());
    println!("probe_server: all observability assertions passed");
}
