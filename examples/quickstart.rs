//! Quickstart: stand up MiddleWhere on the paper's floor plan, feed it a
//! couple of sensor readings through real adapters, and ask where people
//! are.
//!
//! Run with `cargo run --example quickstart`.

use middlewhere::core::LocationService;
use middlewhere::geometry::Point;
use middlewhere::model::SimTime;
use middlewhere::sensors::adapters::{
    BadgeSighting, RfidBadgeAdapter, UbisenseAdapter, UbisenseSighting,
};
use middlewhere::sensors::Adapter;
use mw_bus::Broker;
use mw_sim::building::paper_floor;

fn main() {
    // 1. The world model: the paper's third-floor plan (Figure 8 /
    //    Table 1) loaded into the spatial database.
    let plan = paper_floor();
    let broker = Broker::new();
    let service = LocationService::new(plan.db, plan.universe, &broker);

    // 2. Two location technologies wrapped by adapters.
    let mut ubisense = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().expect("valid glob"),
        1.0, // everyone carries their tag today
    );
    let mut rfid = RfidBadgeAdapter::with_parts(
        "rf-adapter-1".into(),
        "RF-12".into(),
        "CS/Floor3/NetLab".parse().expect("valid glob"),
        Point::new(370.0, 15.0), // base station in the NetLab
        1.0,
    );

    // 3. Native sensor events arrive and are translated to the common
    //    reading format.
    let t0 = SimTime::ZERO;
    service.ingest(
        ubisense.translate(
            UbisenseSighting {
                tag: "ralph-bat".into(),
                position: Point::new(341.0, 12.0),
            },
            t0,
        ),
        t0,
    );
    service.ingest(
        rfid.translate(
            BadgeSighting {
                badge: "tom-pda".into(),
            },
            t0,
        ),
        t0,
    );

    // 4. Object-based queries: "where is X?"
    let now = SimTime::from_secs(1.0);
    for object in ["ralph-bat", "tom-pda"] {
        match service.locate(&object.into(), now) {
            Ok(fix) => println!(
                "{object:10} -> {} (p = {:.3}, band = {}, region = {})",
                fix.symbolic
                    .as_ref()
                    .map_or_else(|| "<no symbolic region>".to_string(), ToString::to_string),
                fix.probability,
                fix.band,
                fix.region,
            ),
            Err(e) => println!("{object:10} -> {e}"),
        }
    }

    // 5. A region-based query: "who is in room 3105?"
    let in_room = service
        .objects_in_region("CS/Floor3/3105", 0.5, now)
        .expect("room exists");
    println!(
        "room 3105 occupants (p >= 0.5): {:?}",
        in_room
            .iter()
            .map(|(o, p)| format!("{o} ({p:.2})"))
            .collect::<Vec<_>>()
    );

    // 6. A spatial relationship: how do the room and the corridor relate?
    let relation = service
        .region_relation("CS/Floor3/3105", "CS/Floor3/LabCorridor")
        .expect("regions exist");
    println!("3105 vs LabCorridor: {relation:?}");
    let path = service.with_world(|w| {
        w.path_distance("CS/Floor3/3105", "CS/Floor3/NetLab", true)
            .expect("rooms exist")
    });
    println!(
        "walking distance 3105 -> NetLab: {:.1} ft",
        path.unwrap_or(f64::NAN)
    );
}
