//! A route-finding application (§4.6.1): "The various relations between
//! regions are useful for a number of applications such as route-finding
//! applications."
//!
//! Uses the ECFP/ECRP/ECNP refinements and the route graph: find the
//! person, then direct them to a destination, respecting locked doors
//! unless they hold a keycard.
//!
//! Run with `cargo run --example route_advisor`.

use middlewhere::core::LocationService;
use middlewhere::geometry::Point;
use middlewhere::model::SimTime;
use middlewhere::reasoning::EcKind;
use middlewhere::sensors::adapters::{UbisenseAdapter, UbisenseSighting};
use middlewhere::sensors::Adapter;
use middlewhere::spatial_db::{Geometry, ObjectType, SpatialObject};
use mw_bus::Broker;
use mw_sim::building::paper_floor;

fn main() {
    let plan = paper_floor();
    let broker = Broker::new();
    let service = LocationService::new(plan.db, plan.universe, &broker);

    // Add a card-protected machine room off the main corridor.
    service
        .add_object(SpatialObject::new(
            "MachineRoom",
            "CS/Floor3".parse().expect("glob"),
            ObjectType::Room,
            Geometry::Polygon(middlewhere::geometry::Polygon::from_rect(
                &middlewhere::geometry::Rect::new(Point::new(440.0, 0.0), Point::new(470.0, 30.0)),
            )),
        ))
        .expect("unique");
    service
        .add_object(
            SpatialObject::new(
                "MachineRoomDoor",
                "CS/Floor3".parse().expect("glob"),
                ObjectType::Door,
                Geometry::Line(middlewhere::geometry::Segment::new(
                    Point::new(453.0, 30.0),
                    Point::new(457.0, 30.0),
                )),
            )
            .with_attribute("passage", "restricted"),
        )
        .expect("unique");

    // Locate the visitor via Ubisense.
    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-1".into(),
        "CS/Floor3".parse().expect("glob"),
        1.0,
    );
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "visitor".into(),
                position: Point::new(340.0, 15.0), // room 3105
            },
            SimTime::ZERO,
        ),
        SimTime::ZERO,
    );
    let now = SimTime::from_secs(1.0);
    let fix = service.locate(&"visitor".into(), now).expect("located");
    let here = fix.symbolic.expect("symbolic").to_string();
    println!("visitor is in {here} (p = {:.2})", fix.probability);

    for destination in ["CS/Floor3/NetLab", "CS/Floor3/MachineRoom"] {
        println!("\nroute {here} -> {destination}:");
        // What kind of boundary connects the destination to its corridor?
        let rel = service
            .region_relation(destination, "CS/Floor3/MainCorridor")
            .expect("regions known");
        println!("  boundary to the corridor: {rel:?}");
        for (label, keycard) in [("without keycard", false), ("with keycard", true)] {
            let distance = service.with_world(|w| {
                w.path_distance(&here, destination, keycard)
                    .expect("regions known")
            });
            match distance {
                Some(d) => println!("  {label}: walkable, about {d:.0} ft"),
                None => println!("  {label}: no route (locked door in the way)"),
            }
        }
        if matches!(
            rel,
            middlewhere::core::RegionRelation::ExternallyConnected(EcKind::RestrictedPassage)
        ) {
            println!("  advice: bring your badge — the door needs a card swipe");
        }
    }
}
