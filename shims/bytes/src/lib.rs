//! Offline stand-in for `bytes`: a growable byte buffer plus the
//! big-endian `Buf`/`BufMut` accessors the wire format uses.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (a thin `Vec<u8>` wrapper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.0.extend_from_slice(slice);
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.0
    }
}

/// Big-endian reads that consume from the front of a buffer.
pub trait Buf {
    fn take_bytes(&mut self, n: usize) -> &[u8];

    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    fn get_u32(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    fn get_u64(&mut self) -> u64 {
        let b = self.take_bytes(8);
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        u64::from_be_bytes(a)
    }
}

impl Buf for &[u8] {
    /// Panics when fewer than `n` bytes remain, like the real crate.
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Big-endian appends to the end of a buffer.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.0.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_slice(b"xy");
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r, b"xy");
    }
}
