//! Offline stand-in for `criterion`: runs each benchmark a fixed number
//! of iterations and prints mean wall-clock time per iteration. No
//! statistics, warm-up, or HTML reports — just enough to keep
//! `cargo bench` compiling and producing comparable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Into<String>, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    samples: usize,
    /// Mean time per iteration over all samples, filled in by `iter`.
    mean: Option<Duration>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed pass to touch caches/lazy state.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_bench(name: &str, samples: usize, routine: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean: None,
    };
    routine(&mut b);
    match b.mean {
        Some(mean) => println!("bench {name:<48} {mean:>12.2?}/iter ({samples} iters)"),
        None => println!("bench {name:<48} (no iter() call)"),
    }
}

/// Top-level handle, mirrors `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

const DEFAULT_SAMPLES: usize = 100;

impl Criterion {
    pub fn bench_function(&mut self, name: &str, routine: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, routine);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            _parent: self,
        }
    }
}

/// Group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        run_bench(&name, self.samples, |b| routine(b, input));
        self
    }

    pub fn bench_function(&mut self, name: &str, routine: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.samples, routine);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut group = c.benchmark_group("demo");
            group.sample_size(10);
            group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
                ran += 1;
            });
            group.finish();
        }
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(ran, 1);
    }
}
