//! Offline stand-in for `crossbeam`: the `channel` module over
//! `std::sync::mpsc`, with crossbeam's error-type shapes.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel; cloneable for both flavors.
    #[derive(Debug)]
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel. Fails only
        /// when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Sender::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Non-blocking send: `Full` on a bounded channel at capacity,
        /// `Disconnected` when the receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Unbounded(tx) => {
                    tx.send(value).map_err(|e| TrySendError::Disconnected(e.0))
                }
                Sender::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    /// Channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_full_and_timeout() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }
}
