//! Offline stand-in for `parking_lot`: std locks with the non-poisoning
//! API shape (`lock`/`read`/`write` return guards directly).

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that, like `parking_lot::Mutex`, does not expose poisoning:
/// a panic while holding the lock leaves the data accessible.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning, mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(0);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer blocked by reader");
        }
        {
            let mut w = l.try_write().expect("uncontended");
            *w = 7;
        }
        assert_eq!(*l.try_read().expect("uncontended"), 7);
    }
}
