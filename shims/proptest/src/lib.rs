//! Offline stand-in for `proptest`: a deterministic random-testing
//! harness with the macro/strategy surface the repo's property tests
//! use. No shrinking — a failing case reports its seed and inputs via
//! the assertion message instead.

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is retried
    /// with fresh inputs and does not count toward the case budget.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(message.to_string())
    }

    pub fn reject(message: impl std::fmt::Display) -> Self {
        TestCaseError::Reject(message.to_string())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is configurable, matching the one
/// knob the repo sets (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Generates values from a deterministic RNG. Unlike real proptest there
/// is no value tree / shrinking; `generate` returns the value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample(rng)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.clone().sample(rng)
    }
}

/// String literals act as regex-subset strategies, e.g.
/// `"[A-Za-z][A-Za-z0-9_-]{0,8}"`.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        regex_generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($( ($($s:ident $idx:tt),+) )*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use super::{RngCore, StdRng, Strategy};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{SampleRange, StdRng, Strategy};

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                self.len.clone().sample(rng)
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

// --- regex-subset string generation ----------------------------------------

/// Generates a string matching a small regex subset: literal characters,
/// `[...]` classes with ranges, and `{n}` / `{m,n}` / `?` / `*` / `+`
/// quantifiers (unbounded ones capped at 8 repeats). Anything else
/// panics — the shim supports what the repo's tests use, loudly.
fn regex_generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let (choices, next) = match chars[i] {
            '[' => parse_class(&chars, i + 1),
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                (vec![c], i + 2)
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!(
                    "regex feature {:?} not supported by the proptest shim",
                    chars[i]
                )
            }
            c => (vec![c], i + 1),
        };
        let (min, max, next) = parse_quantifier(&chars, next, pattern);
        let count = if min == max {
            min
        } else {
            (min..=max).sample(rng)
        };
        for _ in 0..count {
            let pick = (0..choices.len()).sample(rng);
            out.push(choices[pick]);
        }
        i = next;
    }
    out
}

/// Parses the body of a `[...]` class starting just past the `[`;
/// returns the expanded choice set and the index past the `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut choices = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        if chars[i] == '\\' {
            choices.push(chars[i + 1]);
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            assert!(lo <= hi, "inverted range in character class");
            choices.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            choices.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class");
    (choices, i + 1)
}

/// Parses an optional quantifier at `i`; returns (min, max, next index).
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| i + off)
                .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        _ => (1, 1, i),
    }
}

// --- runner -----------------------------------------------------------------

/// FNV-1a, used to derive a per-test seed from the test name so every
/// test sees a distinct but reproducible stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property: runs `body` for `config.cases` generated cases,
/// retrying rejected cases (bounded) and panicking on the first failure
/// with enough seed information to reproduce it.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut body: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    // Fixed base seed: runs are fully deterministic, which the chaos and
    // CI suites rely on. Override with PROPTEST_SEED to explore.
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x6d77_5f70_726f_7031); // "mw_prop1"
    let seed = base ^ fnv1a(name.as_bytes());

    let max_rejects = (config.cases as u64) * 256;
    let mut rejects = 0u64;
    let mut case = 0u32;
    let mut stream = 0u64;
    while case < config.cases {
        let case_seed = seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        stream += 1;
        let mut rng = StdRng::seed_from_u64(case_seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "proptest {name}: too many prop_assume rejections \
                         ({rejects}) — precondition almost never holds"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed at case {case} (seed {case_seed:#x}): {msg}");
            }
        }
    }
}

pub mod prelude {
    //! The glob import the repo's tests use.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

pub mod test_runner {
    //! Mirror of `proptest::test_runner` for error types.
    pub use crate::{TestCaseError, TestCaseResult};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
          $(#[doc = $doc:expr])*
          #[test]
          fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let __config = $config;
                $crate::run_proptest(&__config, stringify!($name), |__rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), __rng); )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = regex_generate("[A-Za-z][A-Za-z0-9_-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(
                cs.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
                "{s:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_compose(
            x in 0usize..10,
            (a, b) in (1.0..2.0f64, -5i32..5),
            flips in crate::collection::vec(crate::bool::ANY, 1..12),
        ) {
            prop_assert!(x < 10);
            prop_assert!((1.0..2.0).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!(!flips.is_empty() && flips.len() < 12);
        }

        #[test]
        fn prop_map_applies(v in (0u32..5).prop_map(|n| n * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 10);
        }

        #[test]
        fn assume_retries_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "assume should have filtered {}", n);
        }
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            run_proptest(&ProptestConfig::with_cases(10), "always_fails", |_| {
                Err(TestCaseError::fail("nope"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("always_fails") && msg.contains("seed"),
            "{msg}"
        );
    }
}
