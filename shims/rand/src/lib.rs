//! Offline stand-in for `rand` 0.8: a deterministic xoshiro256**
//! generator behind the `Rng`/`SeedableRng` trait shapes the repo uses
//! (`seed_from_u64`, `gen_range` over ranges, `gen_bool`).

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding interface; only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        // next_f64 is in [0, 1); scale by the closed width. The end point
        // is reachable only up to rounding, which matches rand closely
        // enough for test data.
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the algorithm differs from
    /// real `StdRng`, but every use in this repo only needs a stable
    /// seeded stream, not a particular one).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(2.0..30.0f64);
            assert!((2.0..30.0).contains(&f));
            let i = rng.gen_range(0usize..5);
            assert!(i < 5);
            let n = rng.gen_range(-100i32..100);
            assert!((-100..100).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
