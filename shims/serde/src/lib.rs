//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! owned [`Value`] tree: `Serialize` renders a value into the tree and
//! `Deserialize` reads one back out. The `serde_json` shim prints and
//! parses that tree. The derive macros (re-exported from the
//! `serde_derive` shim) generate impls against these traits, using
//! serde_json's conventions: structs become maps, newtypes are
//! transparent, enums are externally tagged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between
/// `Serialize`, `Deserialize`, and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    pub fn custom(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// What a missing struct field deserializes to (`None` = required).
    /// Overridden by `Option<T>` so optional fields may be omitted.
    fn deserialize_missing() -> Option<Self> {
        None
    }
}

pub mod de {
    //! Mirror of `serde::de` for the one import the repo uses.
    pub use crate::Deserialize as DeserializeOwned;
}

/// Looks up struct field `name` in a map and deserializes it; used by
/// derived `Deserialize` impls.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v),
        None => {
            T::deserialize_missing().ok_or_else(|| Error::custom(format!("missing field {name:?}")))
        }
    }
}

// --- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of i64 range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// --- composite impls --------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

/// `Arc<T>` is transparent on the wire, exactly like real serde: an
/// `Arc<Notification>` serializes identically to the `Notification`
/// inside, so receivers may deserialize either shape.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(std::sync::Arc::new)
    }
}

/// `Arc<[T]>` round-trips as a plain sequence (the blanket `Arc<T>`
/// impl above only covers sized pointees).
impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize(value).map(Into::into)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {}", value.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            _ => Err(Error::custom("expected 2-element sequence")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b, c]) => Ok((A::deserialize(a)?, B::deserialize(b)?, C::deserialize(c)?)),
            _ => Err(Error::custom("expected 3-element sequence")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sorted for stable output, as serde_json users usually rely on
        // with BTreeMap; HashMap order would be nondeterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
