//! `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Written against the raw `proc_macro` API (no `syn`/`quote` available
//! offline). Supports what the workspace derives: non-generic structs
//! (named, tuple/newtype, unit) and enums (unit, tuple, struct variants),
//! plus the `#[serde(try_from = "T", into = "T")]` container attribute.
//! Conventions match serde_json: structs → maps, newtypes transparent,
//! enums externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Data {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    /// Raw text of `#[serde(...)]` container attributes, concatenated.
    serde_attr: String,
    data: Data,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let parsed = match parse(input) {
        Ok(p) => p,
        Err(msg) => return format!("compile_error!({msg:?});").parse().unwrap(),
    };
    gen(&parsed).parse().unwrap()
}

// --- parsing ---------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut serde_attr = String::new();

    // Attributes and visibility before the item keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string();
                    if text.trim_start().starts_with("serde") {
                        serde_attr.push_str(&text);
                        serde_attr.push(' ');
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, got {other:?}"
            ))
        }
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type {name}"
            ));
        }
    }

    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Named(parse_named_fields(g.stream())?)
            }
            other => return Err(format!("serde shim derive: bad struct body {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("serde shim derive: bad enum body {other:?}")),
        },
        other => return Err(format!("serde shim derive: unsupported item kind {other}")),
    };

    Ok(Input {
        name,
        serde_attr,
        data,
    })
}

/// Splits a token stream at commas that are not nested inside `<...>`
/// (delimited groups are single tokens, so only angle depth matters).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for part in split_top_level(stream) {
        let mut toks = part.into_iter().peekable();
        // Skip attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => continue, // trailing comma
            other => return Err(format!("serde shim derive: bad field {other:?}")),
        }
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level(stream) {
        let mut toks = part.into_iter().peekable();
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("serde shim derive: bad variant {other:?}")),
        };
        let shape = match toks.next() {
            None => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            other => {
                return Err(format!(
                    "serde shim derive: unsupported variant syntax after {name}: {other:?}"
                ))
            }
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

/// Extracts the quoted value of `key = "..."` from the serde attr text.
fn attr_value(attr: &str, key: &str) -> Option<String> {
    let at = attr.find(key)?;
    let rest = &attr[at + key.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

// --- codegen ---------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(into_ty) = attr_value(&input.serde_attr, "into") {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     let __proxy: {into_ty} = ::core::clone::Clone::clone(self).into();\n\
                     ::serde::Serialize::serialize(&__proxy)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.data {
        Data::Unit => "::serde::Value::Null".to_string(),
        Data::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Data::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Data::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Serialize::serialize(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(from_ty) = attr_value(&input.serde_attr, "try_from") {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     let __proxy: {from_ty} = ::serde::Deserialize::deserialize(value)?;\n\
                     <Self as ::core::convert::TryFrom<{from_ty}>>::try_from(__proxy)\n\
                         .map_err(::serde::Error::custom)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.data {
        Data::Unit => format!("::std::result::Result::Ok({name})"),
        Data::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Data::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = value.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::Named(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__map, {f:?})?,"))
                .collect();
            format!(
                "let __map = value.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{}\n}})",
                items.join("\n")
            )
        }
        Data::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let keyed_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__seq[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __seq = __inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}::{vname}\"))?;\n\
                                     if __seq.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length for {name}::{vname}\")); }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(__imap, {f:?})?,"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __imap = __inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{vname}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{\n{}\n}})\n\
                                 }}",
                                items.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__key, __inner) = &__m[0];\n\
                         match __key.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"expected variant of {name}, got {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms.join("\n"),
                keyed_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
