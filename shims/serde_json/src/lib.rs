//! Offline stand-in for `serde_json`: renders and parses the serde
//! shim's [`Value`] tree as JSON. Covers `to_string[_pretty]`, `to_vec`,
//! `from_str`, `from_slice`, and `Error`.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Maximum nesting depth accepted by the parser — arbitrary input (e.g.
/// corrupt frames off the wire) must not be able to overflow the stack.
const MAX_DEPTH: usize = 128;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value).map_err(Error::from)
}

pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --- writer ----------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite numbers"));
            }
            // Rust's Display for f64 is the shortest round-trip decimal
            // and never uses exponent notation, which is valid JSON.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep a marker so the value re-parses as a float-typed
                // number, matching serde_json's "1.0" output.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            if !items.is_empty() {
                write_break(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            if !entries.is_empty() {
                write_break(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("JSON nested too deeply"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number {text:?} at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                other => {
                    return Err(Error::new(format!(
                        "unterminated string (next byte {other:?})"
                    )))
                }
            }
        }
    }

    /// Parses exactly four hex digits at the cursor and advances past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let n = u32::from_str_radix(text, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ ünïcode λ 🎉".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // \u escapes parse, including surrogate pairs.
        assert_eq!(
            from_str::<String>(r#""\u00e9\ud83c\udf89""#).unwrap(),
            "é🎉"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
        let m: std::collections::BTreeMap<String, String> = [("a".to_string(), "x\"y".to_string())]
            .into_iter()
            .collect();
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, String>>(&to_string(&m).unwrap())
                .unwrap(),
            m
        );
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn f64_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -123.456e30] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f, "json={json}");
        }
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"",
            "[1,",
            "nul",
            "tru",
            "{]",
            "1e",
            "--3",
            "\"\\u12\"",
            "\"\\q\"",
            "[1]extra",
        ] {
            assert!(from_str::<serde::Value>(bad).is_err(), "input {bad:?}");
        }
        // Deep nesting hits the depth limit instead of the stack.
        let deep = "[".repeat(100_000);
        assert!(from_str::<serde::Value>(&deep).is_err());
    }
}
