//! # MiddleWhere
//!
//! A reproduction of *MiddleWhere: A Middleware for Location Awareness in
//! Ubiquitous Computing Applications* (MIDDLEWARE 2004).
//!
//! This facade crate re-exports the public API of the workspace crates so a
//! downstream application can depend on a single crate:
//!
//! ```
//! use middlewhere::prelude::*;
//! ```
//!
//! See the workspace `README.md` for an architecture overview and
//! `DESIGN.md` for the full system inventory.

pub use mw_bus as bus;
pub use mw_core as core;
pub use mw_fusion as fusion;
pub use mw_geometry as geometry;
pub use mw_model as model;
pub use mw_obs as obs;
pub use mw_reasoning as reasoning;
pub use mw_sensors as sensors;
pub use mw_sim as sim;
pub use mw_spatial_db as spatial_db;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use mw_geometry::{Point, Polygon, Rect, Segment};
    pub use mw_model::{Confidence, Glob, LocationKind};
    pub use mw_sensors::{SensorSpec, SensorType};
}
