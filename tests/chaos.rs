//! Deterministic chaos suite for the TCP bridge (the CORBA stand-in).
//!
//! Every scenario runs against a real `RemoteTopicServer` with faults
//! injected by a seeded or scripted `FaultPlan` wrapped around the
//! client's transport. Seeds are fixed, so a failure here reproduces
//! with plain `cargo test --test chaos`.
//!
//! Regenerate / re-run: `cargo test --test chaos -- --nocapture`
//! (seeds are constants below; change `CHAOS_SEED` to explore).

use std::sync::Arc;
use std::time::Duration;

use mw_bus::fault::{FaultAction, FaultInjector, FaultPlan, FaultRates};
use mw_bus::remote::{
    remote_subscribe, remote_subscribe_with, remote_subscribe_with_transport, RemoteTopicServer,
    ServerOptions, SubscribeOptions,
};
use mw_bus::transport::{FrameTransport, TcpFrameTransport};
use mw_bus::Broker;
use mw_obs::MetricsRegistry;

/// Fixed seed for the randomized scenarios; CI runs exactly this
/// schedule.
const CHAOS_SEED: u64 = 0x00c0_ffee_0bad;

fn fast_options() -> SubscribeOptions {
    SubscribeOptions {
        initial_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        liveness_timeout: Duration::from_millis(800),
        max_redial_failures: 50,
        ..SubscribeOptions::default()
    }
}

/// Subscribes through a fault injector sharing `plan` across reconnects.
fn faulty_subscribe(
    server: &RemoteTopicServer,
    plan: &Arc<FaultPlan>,
) -> mw_bus::remote::RemoteSubscription<u64> {
    let addr = server.local_addr();
    let dial_plan = Arc::clone(plan);
    remote_subscribe_with_transport::<u64, _>(
        move || {
            TcpFrameTransport::connect(addr)
                .map(|t| Box::new(FaultInjector::new(t, Arc::clone(&dial_plan))) as Box<_>)
        },
        fast_options(),
    )
    .expect("initial connect")
}

fn collect(inbox: &mw_bus::Subscription<u64>, n: usize) -> Vec<u64> {
    let mut got = Vec::with_capacity(n);
    while got.len() < n {
        match inbox.recv_timeout(Duration::from_secs(5)) {
            Some(v) => got.push(v),
            None => break,
        }
    }
    got
}

#[test]
fn mid_stream_reset_recovers_the_full_ordered_stream() {
    let broker = Broker::new();
    let topic = broker.topic::<u64>("chaos-reset");
    let server = RemoteTopicServer::bind("127.0.0.1:0", topic.clone()).unwrap();
    // HelloAck is recv index 0; kill the connection mid-stream, twice
    // (the plan's frame counter spans reconnects).
    let plan = Arc::new(
        FaultPlan::scripted()
            .on_recv(8, FaultAction::Reset)
            .on_recv(30, FaultAction::Reset),
    );
    let inbox = faulty_subscribe(&server, &plan);
    for i in 0..100u64 {
        topic.publish(i);
    }
    let got = collect(&inbox, 100);
    assert_eq!(got, (0..100).collect::<Vec<_>>(), "{:?}", inbox.stats());
    let stats = inbox.stats();
    assert!(stats.reconnects >= 2, "{stats:?}");
    assert_eq!(stats.frames_lost, 0, "{stats:?}");
    assert_eq!(plan.injected(), 2);
}

#[test]
fn corrupt_frames_do_not_kill_server_or_other_subscribers() {
    let broker = Broker::new();
    let topic = broker.topic::<u64>("chaos-corrupt");
    let server = RemoteTopicServer::bind("127.0.0.1:0", topic.clone()).unwrap();
    let plan = Arc::new(
        FaultPlan::scripted()
            .on_recv(3, FaultAction::Corrupt)
            .on_recv(9, FaultAction::Corrupt),
    );
    let victim = faulty_subscribe(&server, &plan);
    // A clean subscriber on the same server.
    let clean = remote_subscribe::<u64>(server.local_addr()).unwrap();
    for i in 0..40u64 {
        topic.publish(i);
    }
    let expected: Vec<u64> = (0..40).collect();
    assert_eq!(collect(&clean, 40), expected, "clean subscriber unaffected");
    assert_eq!(collect(&victim, 40), expected, "victim recovers everything");
    let stats = victim.stats();
    assert!(stats.corrupt_frames >= 2, "{stats:?}");
    // The server only ever saw reconnects, not crashes.
    assert_eq!(server.stats().handshake_failures, 0);
    assert!(server.stats().clients_connected >= 4);
}

#[test]
fn duplicated_and_dropped_frames_yield_exactly_once_delivery() {
    let broker = Broker::new();
    let topic = broker.topic::<u64>("chaos-dupdrop");
    let server = RemoteTopicServer::bind("127.0.0.1:0", topic.clone()).unwrap();
    let plan = Arc::new(
        FaultPlan::scripted()
            .on_recv(2, FaultAction::Duplicate)
            .on_recv(5, FaultAction::DropFrame)
            .on_recv(11, FaultAction::Duplicate)
            .on_recv(15, FaultAction::DropFrame),
    );
    let inbox = faulty_subscribe(&server, &plan);
    for i in 0..60u64 {
        topic.publish(i);
    }
    let got = collect(&inbox, 60);
    assert_eq!(got, (0..60).collect::<Vec<_>>(), "{:?}", inbox.stats());
    let stats = inbox.stats();
    assert!(stats.duplicates_discarded >= 2, "{stats:?}");
    assert!(stats.gaps_detected >= 2, "{stats:?}");
    assert_eq!(stats.frames_lost, 0, "{stats:?}");
}

#[test]
fn metrics_counters_match_the_scripted_chaos_exactly() {
    // The same scenario as above, but observed through a shared
    // `MetricsRegistry`: every counter in the snapshot must agree with
    // the scripted fault schedule and with the stats structs both sides
    // kept. Fixed script, so these are invariants, not bounds.
    let registry = MetricsRegistry::new();
    let broker = Broker::new();
    let topic = broker.topic::<u64>("chaos-metrics");
    let server = RemoteTopicServer::bind_with(
        "127.0.0.1:0",
        topic.clone(),
        ServerOptions {
            // Quiesce heartbeats so frame counts are exactly scripted.
            heartbeat_interval: Duration::from_secs(60),
            metrics: Some(registry.clone()),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let plan = Arc::new(
        FaultPlan::scripted()
            .on_recv(2, FaultAction::Duplicate)
            .on_recv(5, FaultAction::DropFrame)
            .on_recv(11, FaultAction::Duplicate)
            .with_metrics(&registry),
    );
    let addr = server.local_addr();
    let dial_plan = Arc::clone(&plan);
    let inbox = remote_subscribe_with_transport::<u64, _>(
        move || {
            TcpFrameTransport::connect(addr)
                .map(|t| Box::new(FaultInjector::new(t, Arc::clone(&dial_plan))) as Box<_>)
        },
        SubscribeOptions {
            metrics: Some(registry.clone()),
            ..fast_options()
        },
    )
    .expect("initial connect");
    for i in 0..40u64 {
        topic.publish(i);
    }
    let got = collect(&inbox, 40);
    assert_eq!(got, (0..40).collect::<Vec<_>>(), "{:?}", inbox.stats());

    let snapshot = registry.snapshot();
    // The plan fired every scripted fault (all indices are reachable in
    // a 40-frame stream) and the registry counted each injection.
    assert_eq!(plan.injected(), 3);
    assert_eq!(snapshot.counter("bus.fault.injected"), Some(3));
    // Client-side counters mirror `ClientStats` exactly.
    let stats = inbox.stats();
    assert_eq!(
        snapshot.counter("bus.client.duplicates_discarded"),
        Some(stats.duplicates_discarded)
    );
    assert_eq!(
        snapshot.counter("bus.client.gaps_detected"),
        Some(stats.gaps_detected)
    );
    assert_eq!(
        snapshot.counter("bus.client.reconnects"),
        Some(stats.reconnects)
    );
    assert_eq!(stats.duplicates_discarded, 2, "{stats:?}");
    assert_eq!(stats.gaps_detected, 1, "{stats:?}");
    assert_eq!(snapshot.counter("bus.client.frames_lost"), Some(0));
    // Server-side counters mirror `ServerStats`.
    let server_stats = server.stats();
    assert_eq!(
        snapshot.counter("bus.server.frames_published"),
        Some(server_stats.frames_published)
    );
    assert_eq!(
        snapshot.counter("bus.server.clients_connected"),
        Some(server_stats.clients_connected)
    );
    assert_eq!(snapshot.counter("bus.server.handshake_failures"), Some(0));
}

#[test]
fn seeded_storm_metrics_are_reproducible() {
    // Under the seeded storm the counter *values* are schedule-dependent,
    // but with a fixed seed the whole snapshot is reproducible run to
    // run, and internally consistent with the plan's own accounting.
    let rates = FaultRates {
        drop: 0.05,
        duplicate: 0.05,
        corrupt: 0.02,
        reset: 0.02,
    };
    let run = || -> (u64, u64, u64) {
        let registry = MetricsRegistry::new();
        let broker = Broker::new();
        let topic = broker.topic::<u64>("chaos-storm-metrics");
        let server = RemoteTopicServer::bind_with(
            "127.0.0.1:0",
            topic.clone(),
            ServerOptions {
                heartbeat_interval: Duration::from_secs(60),
                metrics: Some(registry.clone()),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let plan = Arc::new(FaultPlan::seeded(CHAOS_SEED, rates).with_metrics(&registry));
        let addr = server.local_addr();
        let dial_plan = Arc::clone(&plan);
        let inbox = remote_subscribe_with_transport::<u64, _>(
            move || {
                TcpFrameTransport::connect(addr)
                    .map(|t| Box::new(FaultInjector::new(t, Arc::clone(&dial_plan))) as Box<_>)
            },
            SubscribeOptions {
                metrics: Some(registry.clone()),
                ..fast_options()
            },
        )
        .expect("initial connect");
        for i in 0..200u64 {
            topic.publish(i);
        }
        assert_eq!(collect(&inbox, 200), (0..200).collect::<Vec<_>>());
        let snapshot = registry.snapshot();
        let injected = snapshot.counter("bus.fault.injected").unwrap();
        assert_eq!(injected, plan.injected(), "registry mirrors the plan");
        assert!(injected > 0, "the storm actually injected faults");
        (
            injected,
            snapshot.counter("bus.client.duplicates_discarded").unwrap(),
            snapshot.counter("bus.client.reconnects").unwrap(),
        )
    };
    assert_eq!(run(), run(), "same seed, same counters");
}

#[test]
fn seeded_fault_storm_is_survivable_and_reproducible() {
    let rates = FaultRates {
        drop: 0.05,
        duplicate: 0.05,
        corrupt: 0.02,
        reset: 0.02,
    };
    let run = |seed: u64| -> (Vec<u64>, u64) {
        let broker = Broker::new();
        let topic = broker.topic::<u64>("chaos-storm");
        // Heartbeats fire on wall-clock idleness, which would consume
        // RNG draws at nondeterministic points; silence them so the
        // fault schedule depends only on the seed and the frame order.
        let server = RemoteTopicServer::bind_with(
            "127.0.0.1:0",
            topic.clone(),
            ServerOptions {
                heartbeat_interval: Duration::from_secs(60),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let plan = Arc::new(FaultPlan::seeded(seed, rates));
        let inbox = faulty_subscribe(&server, &plan);
        for i in 0..200u64 {
            topic.publish(i);
        }
        (collect(&inbox, 200), plan.injected())
    };
    let (got, injected) = run(CHAOS_SEED);
    assert_eq!(
        got,
        (0..200).collect::<Vec<_>>(),
        "every message survives the storm, in order"
    );
    assert!(injected > 0, "the storm actually injected faults");
    // Determinism: the same seed injects the same number of faults.
    // (The exact count depends only on the seed and the frame schedule
    // up to each fault, which the resume protocol makes repeatable.)
    let (got2, injected2) = run(CHAOS_SEED);
    assert_eq!(got2, got);
    assert_eq!(injected2, injected, "same seed, same fault schedule");
}

#[test]
fn slow_subscriber_is_bounded_and_does_not_stall_the_fast_one() {
    let broker = Broker::new();
    let topic = broker.topic::<u64>("chaos-slow");
    let server = RemoteTopicServer::bind_with(
        "127.0.0.1:0",
        topic.clone(),
        ServerOptions {
            client_queue_capacity: 16,
            replay_capacity: 16,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    // The stalled client handshakes and then never reads again.
    let mut stalled = TcpFrameTransport::connect(server.local_addr()).unwrap();
    stalled
        .send(&mw_bus::transport::Frame::control(
            mw_bus::transport::FrameKind::Hello,
            0,
        ))
        .unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    assert!(matches!(
        stalled.recv().unwrap().map(|f| f.kind),
        Some(mw_bus::transport::FrameKind::HelloAck)
    ));
    let fast = remote_subscribe_with::<u64>(server.local_addr(), fast_options()).unwrap();
    // Phase 1 — paced: bursts smaller than the queue bound, drained
    // between bursts. A subscriber that keeps up loses nothing.
    let mut got = Vec::new();
    for batch in 0..30u64 {
        for i in 0..10 {
            topic.publish(batch * 10 + i);
        }
        got.extend(collect(&fast, 10));
    }
    assert_eq!(got, (0..300).collect::<Vec<_>>());
    assert_eq!(fast.stats().frames_lost, 0);
    // Phase 2 — burst: 500 messages at once. The forwarder enqueues far
    // faster than the per-frame TCP writes drain, so the 16-slot queues
    // shed load instead of growing without bound.
    for i in 300..800u64 {
        topic.publish(i);
    }
    let mut tail = Vec::new();
    loop {
        match fast.recv_timeout(Duration::from_secs(5)) {
            Some(v) => {
                tail.push(v);
                if v == 799 {
                    break;
                }
            }
            None => panic!("stream never reached 799; got {} values", tail.len()),
        }
    }
    // Exactly-once, in order: strictly increasing, and every message is
    // either delivered or explicitly accounted as lost to the bound.
    assert!(
        tail.windows(2).all(|w| w[0] < w[1]),
        "out of order: {tail:?}"
    );
    let lost = fast.stats().frames_lost;
    assert_eq!(tail.len() as u64 + lost, 500, "{:?}", fast.stats());
    // The stalled client's queue was shed at the bound.
    let stats = server.stats();
    assert!(stats.frames_dropped > 0, "no shedding observed: {stats:?}");
}

#[test]
fn dead_peer_is_evicted_by_heartbeat_writes() {
    let broker = Broker::new();
    let topic = broker.topic::<u64>("chaos-evict");
    let server = RemoteTopicServer::bind_with(
        "127.0.0.1:0",
        topic.clone(),
        ServerOptions {
            heartbeat_interval: Duration::from_millis(20),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let doomed = remote_subscribe::<u64>(server.local_addr()).unwrap();
    drop(doomed);
    // No traffic at all: eviction must come from heartbeat writes.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().clients_evicted < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "dead peer never evicted: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.active_clients(), 0);
}

#[test]
fn delayed_frames_only_slow_things_down() {
    let broker = Broker::new();
    let topic = broker.topic::<u64>("chaos-delay");
    let server = RemoteTopicServer::bind("127.0.0.1:0", topic.clone()).unwrap();
    let plan = Arc::new(
        FaultPlan::scripted()
            .on_recv(2, FaultAction::Delay(Duration::from_millis(50)))
            .on_recv(4, FaultAction::Delay(Duration::from_millis(50))),
    );
    let inbox = faulty_subscribe(&server, &plan);
    for i in 0..20u64 {
        topic.publish(i);
    }
    assert_eq!(collect(&inbox, 20), (0..20).collect::<Vec<_>>());
    let stats = inbox.stats();
    assert_eq!(stats.reconnects, 0, "delays alone never force a reconnect");
    assert_eq!(stats.frames_lost, 0);
}
