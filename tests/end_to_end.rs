//! End-to-end integration: adapters → bus → spatial database → fusion →
//! queries and notifications, over the paper's floor plan.

use std::sync::Arc;

use middlewhere::core::{
    LocationRequest, LocationResponse, LocationService, SharedNotification, SubscriptionSpec,
    LOCATION_SERVICE_NAME, NOTIFICATION_TOPIC,
};
use middlewhere::geometry::{Point, Rect};
use middlewhere::model::{SimDuration, SimTime};
use middlewhere::sensors::adapters::{
    BiometricAdapter, BiometricEvent, RfidBadgeAdapter, UbisenseAdapter, UbisenseSighting,
};
use middlewhere::sensors::Adapter;
use mw_bus::Broker;
use mw_sim::building::paper_floor;

fn service_on_paper_floor() -> (Arc<LocationService>, Broker) {
    let plan = paper_floor();
    let broker = Broker::new();
    let service = LocationService::new(plan.db, plan.universe, &broker);
    (service, broker)
}

#[test]
fn ubisense_reading_flows_to_symbolic_fix() {
    let (service, _broker) = service_on_paper_floor();
    let mut adapter = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().unwrap(),
        1.0,
    );
    let out = adapter.translate(
        UbisenseSighting {
            tag: "ralph-bat".into(),
            position: Point::new(340.0, 15.0),
        },
        SimTime::ZERO,
    );
    service.ingest(out, SimTime::ZERO);

    let fix = service
        .locate(&"ralph-bat".into(), SimTime::from_secs(1.0))
        .unwrap();
    assert_eq!(fix.symbolic.unwrap().to_string(), "CS/Floor3/3105");
    assert!(fix.probability > 0.8, "p={}", fix.probability);
    assert!(fix.region.contains_point(Point::new(340.0, 15.0)));
}

#[test]
fn multi_technology_fusion_narrows_location() {
    let (service, _broker) = service_on_paper_floor();
    let now = SimTime::ZERO;
    let query_at = SimTime::from_secs(1.0);
    let room: Rect = Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0));

    // RFID puts tom somewhere within 15 ft of the room center.
    let mut rfid = RfidBadgeAdapter::with_parts(
        "rf-adapter-1".into(),
        "RF-12".into(),
        "CS/Floor3/3105".parse().unwrap(),
        room.center(),
        1.0,
    );
    service.ingest(
        rfid.translate(
            middlewhere::sensors::adapters::BadgeSighting {
                badge: "tom-pda".into(),
            },
            now,
        ),
        now,
    );
    let coarse = service.locate(&"tom-pda".into(), query_at).unwrap();

    // A Ubisense sighting pins him down to six inches.
    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().unwrap(),
        1.0,
    );
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "tom-pda".into(),
                position: Point::new(341.0, 12.0),
            },
            now,
        ),
        now,
    );
    let fine = service.locate(&"tom-pda".into(), query_at).unwrap();

    assert!(fine.region.area() < coarse.region.area());
    assert!(
        fine.probability > coarse.probability,
        "fusion should reinforce: fine={} coarse={}",
        fine.probability,
        coarse.probability
    );
}

#[test]
fn biometric_logout_revokes_location() {
    let (service, _broker) = service_on_paper_floor();
    let room = Rect::new(Point::new(360.0, 0.0), Point::new(380.0, 30.0));
    let mut bio = BiometricAdapter::with_parts(
        "bio-adapter-1".into(),
        "Fp-3".into(),
        "CS/Floor3/NetLab".parse().unwrap(),
        room.center(),
        room,
        0.2,
    );
    // Login at t = 0: locatable for a long time thanks to the long-term
    // reading.
    service.ingest(
        bio.translate(
            BiometricEvent::Login {
                user: "alice".into(),
            },
            SimTime::ZERO,
        ),
        SimTime::ZERO,
    );
    assert!(service
        .locate(&"alice".into(), SimTime::from_secs(300.0))
        .is_ok());

    // Manual logout at t = 300: old readings revoked; only the 15 s
    // logout reading remains.
    service.ingest(
        bio.translate(
            BiometricEvent::Logout {
                user: "alice".into(),
            },
            SimTime::from_secs(300.0),
        ),
        SimTime::from_secs(300.0),
    );
    assert!(service
        .locate(&"alice".into(), SimTime::from_secs(310.0))
        .is_ok());
    assert!(service
        .locate(&"alice".into(), SimTime::from_secs(320.0))
        .is_err());
}

#[test]
fn push_notifications_reach_bus_subscribers() {
    let (service, broker) = service_on_paper_floor();
    let inbox = broker
        .topic::<SharedNotification>(NOTIFICATION_TOPIC)
        .subscribe();
    let room = Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0));
    let id = service.subscribe(SubscriptionSpec::region_entry(room, 0.5));

    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().unwrap(),
        1.0,
    );
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "tom-pda".into(),
                position: Point::new(340.0, 15.0),
            },
            SimTime::ZERO,
        ),
        SimTime::ZERO,
    );

    let n = inbox
        .recv_timeout(std::time::Duration::from_millis(500))
        .expect("notification");
    assert_eq!(n.subscription, id);
    assert_eq!(n.object, "tom-pda".into());
    assert!(n.probability > 0.5);
}

#[test]
fn rpc_pull_mode_over_bus() {
    let (service, broker) = service_on_paper_floor();
    let _server = service.serve_on(&broker).unwrap();

    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().unwrap(),
        1.0,
    );
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "tom-pda".into(),
                position: Point::new(340.0, 15.0),
            },
            SimTime::ZERO,
        ),
        SimTime::ZERO,
    );

    // An application discovers the service and queries it, CORBA-style.
    assert!(broker
        .service_names()
        .contains(&LOCATION_SERVICE_NAME.to_string()));
    let client = broker
        .lookup::<LocationRequest, LocationResponse>(LOCATION_SERVICE_NAME)
        .unwrap();
    let response = client
        .call(LocationRequest::RegionProbability {
            object: "tom-pda".into(),
            region: "CS/Floor3/3105".into(),
            now: SimTime::from_secs(1.0),
        })
        .unwrap();
    match response {
        LocationResponse::Probability(p) => assert!(p > 0.8, "p={p}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn temporal_degradation_weakens_stale_fixes() {
    let (service, _broker) = service_on_paper_floor();
    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().unwrap(),
        1.0,
    );
    ubi.set_time_to_live(SimDuration::from_secs(100.0));
    service.ingest(
        ubi.translate(
            UbisenseSighting {
                tag: "tom-pda".into(),
                position: Point::new(340.0, 15.0),
            },
            SimTime::ZERO,
        ),
        SimTime::ZERO,
    );
    let fresh = service
        .locate(&"tom-pda".into(), SimTime::from_secs(1.0))
        .unwrap();
    let stale = service
        .locate(&"tom-pda".into(), SimTime::from_secs(90.0))
        .unwrap();
    assert!(stale.probability < fresh.probability);
    assert!(service
        .locate(&"tom-pda".into(), SimTime::from_secs(101.0))
        .is_err());
}

#[test]
fn conflicting_sensors_resolved_by_movement() {
    let (service, _broker) = service_on_paper_floor();
    // A stationary biometric long-term reading says alice is in NetLab...
    let netlab = Rect::new(Point::new(360.0, 0.0), Point::new(380.0, 30.0));
    let mut bio = BiometricAdapter::with_parts(
        "bio-adapter-1".into(),
        "Fp-3".into(),
        "CS/Floor3/NetLab".parse().unwrap(),
        netlab.center(),
        netlab,
        0.2,
    );
    service.ingest(
        bio.translate(
            BiometricEvent::Login {
                user: "alice".into(),
            },
            SimTime::ZERO,
        ),
        SimTime::ZERO,
    );
    // ...but her Ubisense tag is moving through room 3105.
    let mut ubi = UbisenseAdapter::with_parts(
        "ubi-adapter-1".into(),
        "Ubi-18".into(),
        "CS/Floor3/3105".parse().unwrap(),
        1.0,
    );
    for (t, x) in [(60.0, 335.0), (61.0, 338.0), (62.0, 341.0)] {
        service.ingest(
            ubi.translate(
                UbisenseSighting {
                    tag: "alice".into(),
                    position: Point::new(x, 15.0),
                },
                SimTime::from_secs(t),
            ),
            SimTime::from_secs(t),
        );
    }
    let fix = service
        .locate(&"alice".into(), SimTime::from_secs(62.5))
        .unwrap();
    // Rule 1: the moving rectangle wins; alice is reported in 3105.
    assert_eq!(fix.symbolic.unwrap().to_string(), "CS/Floor3/3105");
}
