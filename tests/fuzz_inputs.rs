//! Fuzz-style input robustness: public parsers and constructors must
//! reject garbage gracefully — never panic.

use middlewhere::model::{Glob, Location};
use middlewhere::spatial_db::SpatialDatabase;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn glob_parsing_never_panics(input in "\\PC{0,60}") {
        // Any parse outcome is fine; panics are not.
        let _ = input.parse::<Glob>();
    }

    #[test]
    fn glob_parse_display_roundtrip_when_accepted(input in "[A-Za-z0-9/(),. -]{1,40}") {
        if let Ok(g) = input.parse::<Glob>() {
            // Whatever was accepted must round-trip through Display.
            let shown = g.to_string();
            let again: Glob = shown.parse().unwrap_or_else(|e| {
                panic!("display form {shown:?} of accepted input {input:?} failed to reparse: {e}")
            });
            prop_assert_eq!(g, again);
        }
    }

    #[test]
    fn location_parsing_never_panics(input in "\\PC{0,60}") {
        let _ = Location::parse(&input);
    }

    #[test]
    fn blueprint_parsing_never_panics(input in "\\PC{0,200}") {
        let _ = SpatialDatabase::from_blueprint(&input);
    }

    #[test]
    fn blueprint_parsing_survives_jsonish_garbage(
        version in 0u32..5,
        key in "[a-z]{1,10}",
        value in "[a-zA-Z0-9]{0,20}",
    ) {
        let doc = format!("{{\"version\":{version},\"objects\":[],\"{key}\":\"{value}\"}}");
        let _ = SpatialDatabase::from_blueprint(&doc);
        let doc2 = format!("{{\"version\":{version},\"objects\":[{{\"{key}\":\"{value}\"}}]}}");
        let _ = SpatialDatabase::from_blueprint(&doc2);
    }
}
