//! Outdoor (GPS) integration: the paper frames GPS as "the de facto
//! location technology for wide outdoor areas; however it does not work
//! in covered areas or indoors" (§1). The campus model exercises the
//! indoor/outdoor handoff: GPS covers the quad, Ubisense covers a lobby.

use middlewhere::model::SimDuration;
use mw_sim::{building, DeploymentConfig, SimConfig, Simulation};

fn campus_sim(seed: u64) -> Simulation {
    let plan = building::campus();
    let quad = plan
        .rooms
        .iter()
        .position(|(n, _)| n.ends_with("Quad"))
        .expect("quad exists");
    let siebel = plan
        .rooms
        .iter()
        .position(|(n, _)| n.ends_with("SiebelLobby"))
        .expect("lobby exists");
    Simulation::new(
        plan,
        SimConfig {
            seed,
            people: 4,
            deployment: DeploymentConfig {
                ubisense_rooms: vec![siebel],
                rfid_rooms: vec![],
                biometric_rooms: vec![],
                gps_regions: vec![quad],
                carry_probability: 1.0,
                ..DeploymentConfig::default()
            },
            aging_inflation_ft_per_s: 0.0,
        },
    )
}

#[test]
fn people_are_tracked_outdoors_by_gps() {
    let mut sim = campus_sim(55);
    let mut outdoor_fixes = 0usize;
    for _ in 0..300 {
        sim.step(SimDuration::from_secs(1.0));
        for person in sim.people().to_vec() {
            let Some(truth) = sim.ground_truth(&person.id) else {
                continue;
            };
            // Is the person on the quad right now?
            let on_quad = (100.0..300.0).contains(&truth.y);
            if !on_quad {
                continue;
            }
            if let Ok(fix) = sim.service().locate(&person.id, sim.clock()) {
                outdoor_fixes += 1;
                // GPS accuracy is 15 ft; allow that plus a second of
                // walking.
                let err = fix.region.center().distance(truth);
                assert!(err < 40.0, "outdoor error {err} ft");
            }
        }
    }
    assert!(outdoor_fixes > 50, "only {outdoor_fixes} outdoor fixes");
}

#[test]
fn indoor_outdoor_handoff() {
    let mut sim = campus_sim(77);
    let mut indoor_located = 0usize;
    let mut outdoor_located = 0usize;
    for _ in 0..900 {
        sim.step(SimDuration::from_secs(1.0));
        for person in sim.people().to_vec() {
            let Some(truth) = sim.ground_truth(&person.id) else {
                continue;
            };
            let Ok(fix) = sim.service().locate(&person.id, sim.clock()) else {
                continue;
            };
            let in_siebel = truth.y < 100.0 && (100.0..300.0).contains(&truth.x);
            let on_quad = (100.0..300.0).contains(&truth.y);
            if in_siebel {
                indoor_located += 1;
                // Indoors the Ubisense estimate is tight.
                assert!(
                    fix.region.width() <= 2.0,
                    "indoor width {}",
                    fix.region.width()
                );
            } else if on_quad {
                outdoor_located += 1;
                // Outdoors the GPS estimate is the 30 ft accuracy square
                // (or a recent tighter indoor reading still alive).
                assert!(fix.region.width() <= 31.0);
            }
        }
    }
    assert!(indoor_located > 0, "no indoor fixes at all");
    assert!(outdoor_located > 0, "no outdoor fixes at all");
}

#[test]
fn gps_resolution_is_symbolically_meaningful() {
    let mut sim = campus_sim(99);
    for _ in 0..200 {
        sim.step(SimDuration::from_secs(1.0));
        for person in sim.people().to_vec() {
            let Ok(fix) = sim.service().locate(&person.id, sim.clock()) else {
                continue;
            };
            if let Some(symbolic) = fix.symbolic {
                // Every resolution names a campus region.
                let name = symbolic.to_string();
                assert!(
                    name.starts_with("Campus"),
                    "unexpected symbolic region {name}"
                );
            }
        }
    }
}
