//! Reproductions of the paper's worked examples: the GLOB examples of
//! §3.1, the sensor calibrations of §6, the fusion cases of §4.1.2
//! (Figures 2–4), the five-sensor lattice of Figures 5–6, the RCC-8
//! relations of Figure 7 and the tables of §5.

use middlewhere::fusion::bayes::{
    posterior_contained_outer, posterior_general, posterior_single, SensorEvidence,
};
use middlewhere::fusion::conflict;
use middlewhere::fusion::{NodeKind, RegionLattice};
use middlewhere::geometry::{Point, Rect};
use middlewhere::model::{Glob, SimDuration, SimTime, TemporalDegradation};
use middlewhere::reasoning::Rcc8;
use middlewhere::sensors::{SensorReading, SensorSpec};
use middlewhere::spatial_db::{SensorMetaRow, SensorReadingTable};

fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
    Rect::new(Point::new(x0, y0), Point::new(x1, y1))
}

fn universe() -> Rect {
    r(0.0, 0.0, 500.0, 100.0)
}

#[test]
fn section_3_1_glob_examples() {
    // The four GLOB examples from §3.1, verbatim.
    let light: Glob = "SC/3/3216/lightswitch1".parse().unwrap();
    assert_eq!(light.depth(), 4);
    let coord: Glob = "SC/3/3216/(12,3,4)".parse().unwrap();
    assert!(coord.leaf().is_some());
    let door: Glob = "SC/3/3216/(1,3),(4,5)".parse().unwrap();
    assert!(matches!(
        door.leaf(),
        Some(middlewhere::model::GlobLeaf::Line(_, _))
    ));
    let room: Glob = "SC/3/(45,12),(45,40),(65,40),(65,12)".parse().unwrap();
    match room.leaf() {
        Some(middlewhere::model::GlobLeaf::Polygon(v)) => assert_eq!(v.len(), 4),
        other => panic!("expected polygon leaf, got {other:?}"),
    }
    // The room prefix contains the light switch's.
    let room_sym: Glob = "SC/3/3216".parse().unwrap();
    assert!(room_sym.is_prefix_of(&light));
    assert!(room_sym.is_prefix_of(&coord));
}

#[test]
fn section_4_1_1_error_probability_derivation() {
    // p = (1-y)x + (1-z)(1-x), q = z + y(1-x), spot-checked by hand.
    for (x, y, z) in [(1.0, 0.95, 0.05), (0.9, 0.75, 0.25), (0.5, 0.99, 0.01)] {
        let spec = SensorSpec::new(
            middlewhere::sensors::SensorType::Ubisense,
            x,
            y,
            middlewhere::sensors::MisidentModel::Fixed(z),
        )
        .unwrap();
        let expected_p = (1.0 - y) * x + (1.0 - z) * (1.0 - x);
        let expected_q = z + y * (1.0 - x);
        assert!((spec.miss_probability() - expected_p).abs() < 1e-12);
        assert!((spec.false_positive_probability(1.0, 1.0) - expected_q).abs() < 1e-12);
    }
}

#[test]
fn figure_2_case_1_contained_rectangles() {
    // Sensor 1 reports inner rectangle A, sensor 2 outer rectangle B.
    // Equation 4's reinforcement: P(B | s1, s2) > P(B | s2) when p1 > q1.
    let a = r(338.0, 12.0, 342.0, 16.0);
    let b = r(330.0, 0.0, 350.0, 30.0);
    let s1 = SensorEvidence::new(a, 0.95, 0.001);
    let s2 = SensorEvidence::new(b, 0.75, 0.01);
    let with_both = posterior_contained_outer(&s1, &s2, &universe());
    let alone = posterior_single(&s2, &universe());
    assert!(with_both > alone);
    // And the paper's inequality direction flips when p1 < q1.
    let bad_s1 = SensorEvidence::new(a, 0.001, 0.5);
    assert!(posterior_contained_outer(&bad_s1, &s2, &universe()) < alone);
}

#[test]
fn figure_3_case_2_intersecting_rectangles() {
    // The intersection region C collects the posterior mass per unit
    // area.
    let a = r(330.0, 0.0, 345.0, 20.0);
    let b = r(338.0, 10.0, 355.0, 30.0);
    let c = a.intersection(&b).unwrap();
    let s1 = SensorEvidence::new(a, 0.85, 0.004);
    let s2 = SensorEvidence::new(b, 0.85, 0.004);
    let evidence = [s1, s2];
    let p_c = posterior_general(&evidence, &c, &universe());
    let p_a = posterior_general(&evidence, &a, &universe());
    let p_b = posterior_general(&evidence, &b, &universe());
    // Density in C beats density in A or B.
    assert!(p_c / c.area() > p_a / a.area());
    assert!(p_c / c.area() > p_b / b.area());
}

#[test]
fn figure_4_case_3_disjoint_rectangles_conflict() {
    let make = |region: Rect, moving: bool, spec: SensorSpec| SensorReading {
        sensor_id: "s".into(),
        spec,
        object: "alice".into(),
        glob_prefix: "CS/Floor3".parse().unwrap(),
        region,
        detected_at: SimTime::ZERO,
        time_to_live: SimDuration::from_secs(60.0),
        tdf: TemporalDegradation::None,
        moving,
    };
    // Rule 1: the moving rectangle wins regardless of confidence.
    let readings = vec![
        make(
            r(330.0, 0.0, 350.0, 30.0),
            false,
            SensorSpec::biometric_short_term(),
        ),
        make(
            r(100.0, 50.0, 102.0, 52.0),
            true,
            SensorSpec::rfid_badge(0.7),
        ),
    ];
    let outcome = conflict::resolve(&readings, &universe(), SimTime::ZERO);
    assert_eq!(outcome.rule, conflict::ConflictRule::MovingWins);
    assert_eq!(outcome.kept, vec![1]);

    // Rule 2: both stationary — higher Equation-5 posterior wins.
    let readings = vec![
        make(
            r(330.0, 0.0, 350.0, 30.0),
            false,
            SensorSpec::biometric_short_term(),
        ),
        make(
            r(100.0, 50.0, 102.0, 52.0),
            false,
            SensorSpec::rfid_badge(0.7),
        ),
    ];
    let outcome = conflict::resolve(&readings, &universe(), SimTime::ZERO);
    assert_eq!(outcome.rule, conflict::ConflictRule::HigherProbabilityWins);
    assert_eq!(outcome.kept, vec![0]);
}

#[test]
fn figures_5_and_6_five_sensor_lattice() {
    // Five sensors: S1, S2, S3 mutually overlapping, S4 inside S1, S5
    // disjoint — the qualitative structure of Figure 5.
    let s1 = r(0.0, 0.0, 40.0, 40.0);
    let s2 = r(20.0, 0.0, 60.0, 40.0);
    let s3 = r(10.0, 20.0, 50.0, 60.0);
    let s4 = r(5.0, 5.0, 15.0, 15.0);
    let s5 = r(200.0, 50.0, 240.0, 90.0);
    let ev = |rect| SensorEvidence::new(rect, 0.85, 0.002);
    let lattice =
        RegionLattice::build(universe(), vec![ev(s1), ev(s2), ev(s3), ev(s4), ev(s5)]).unwrap();

    // Sensor nodes + pairwise intersections (D = S1∩S2, E = S1∩S3,
    // F = S2∩S3) + Top + Bottom.
    assert_eq!(lattice.len(), 10);
    let intersections = lattice
        .region_nodes()
        .filter(|&id| matches!(lattice.kind(id).unwrap(), NodeKind::Intersection))
        .count();
    assert_eq!(intersections, 3);

    // "The probability associated with any node in the lattice is
    // influenced by all sensor rectangles that contain it, intersect it
    // or are contained within it": D = S1∩S2 gets reinforced mass, S5
    // (conflicting, alone) ends up with low posterior relative to its
    // size.
    let d = s1.intersection(&s2).unwrap();
    let d_id = lattice
        .region_nodes()
        .find(|&id| lattice.region(id).unwrap() == d)
        .unwrap();
    let s5_id = lattice
        .region_nodes()
        .find(|&id| lattice.region(id).unwrap() == s5)
        .unwrap();
    let p_d = lattice.probability(d_id).unwrap();
    let p_s5 = lattice.probability(s5_id).unwrap();
    assert!(
        p_d / d.area() > p_s5 / s5.area(),
        "reinforced intersection should out-dense the lone conflict: {} vs {}",
        p_d / d.area(),
        p_s5 / s5.area()
    );

    // The minimal regions (parents of Bottom) include S4 and S5.
    let minimal: Vec<Rect> = lattice
        .minimal_regions()
        .into_iter()
        .map(|id| lattice.region(id).unwrap())
        .collect();
    assert!(minimal.contains(&s4));
    assert!(minimal.contains(&s5));
}

#[test]
fn figures_5_and_6_facade_answers_are_consistent() {
    // The same five-sensor scenario as above, but driven end-to-end
    // through `LocationService`: every shape of `query()` facade answer
    // (region probability, rect probability, band, distribution, fix)
    // must describe the same fused posterior.
    use middlewhere::bus::Broker;
    use middlewhere::core::{LocationQuery, LocationService};

    let s1 = r(0.0, 0.0, 40.0, 40.0);
    let s2 = r(20.0, 0.0, 60.0, 40.0);
    let s3 = r(10.0, 20.0, 50.0, 60.0);
    let s4 = r(5.0, 5.0, 15.0, 15.0);
    let s5 = r(200.0, 50.0, 240.0, 90.0);

    let plan = mw_sim::building::paper_floor();
    let broker = Broker::new();
    let svc = LocationService::new(plan.db, plan.universe, &broker);
    // Name the sensor rectangles so the symbolic (glob) paths get
    // exercised too.
    for (name, rect) in [("S1", s1), ("S2", s2), ("S3", s3), ("S4", s4), ("S5", s5)] {
        svc.define_region(&format!("CS/Floor3/{name}").parse().unwrap(), rect)
            .unwrap();
    }
    for (i, rect) in [s1, s2, s3, s4, s5].iter().enumerate() {
        svc.ingest_reading(
            SensorReading {
                sensor_id: format!("fig5-{i}").as_str().into(),
                spec: SensorSpec::ubisense(1.0),
                object: "alice".into(),
                glob_prefix: "CS/Floor3".parse().unwrap(),
                region: *rect,
                detected_at: SimTime::ZERO,
                time_to_live: SimDuration::from_secs(60.0),
                tdf: TemporalDegradation::None,
                moving: false,
            },
            SimTime::ZERO,
        );
    }

    let alice: middlewhere::sensors::MobileObjectId = "alice".into();
    let now = SimTime::from_secs(1.0);
    // Named-region and explicit-rect answers agree, and each band is the
    // classification of its own probability.
    for name in ["S1", "S2", "S3", "S4", "S5", "3105"] {
        let glob = format!("CS/Floor3/{name}");
        let answer = svc
            .query(LocationQuery::of("alice").in_region(&glob).at(now))
            .unwrap();
        let p = answer.probability().unwrap();
        assert_eq!(
            answer.band(),
            Some(svc.band_thresholds().classify(p)),
            "{glob}"
        );
        let rect = svc.with_world(|w| w.region_rect(&glob)).unwrap();
        let by_rect = svc
            .query(LocationQuery::of("alice").in_rect(rect).at(now))
            .unwrap();
        assert_eq!(by_rect.probability(), Some(p), "{glob}");
    }
    {
        // The distribution normalizes to 1 over positive-weight minimal
        // regions, and every probability-shaped answer stays in [0, 1].
        let answer = svc
            .query(LocationQuery::of("alice").distribution().at(now))
            .unwrap();
        let dist = answer.distribution().unwrap();
        let total: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(dist.iter().all(|(_, w)| *w > 0.0));
        for rect in [s1, s4, s5, s1.intersection(&s2).unwrap()] {
            let p = svc
                .query(LocationQuery::of("alice").in_rect(rect).at(now))
                .unwrap()
                .probability()
                .unwrap();
            assert!((0.0..=1.0).contains(&p), "{rect:?}: p {p}");
        }
        // And the facade's default target is the plain fix.
        let fix = svc.locate(&alice, now).unwrap();
        let facade_fix = svc
            .query(LocationQuery::of("alice").at(now))
            .unwrap()
            .fix()
            .cloned()
            .unwrap();
        assert_eq!(facade_fix.region, fix.region);
        assert_eq!(facade_fix.probability, fix.probability);
    }
    // An untracked object is an explicit error, never a silent 0.0.
    assert!(matches!(
        svc.query(LocationQuery::of("ghost").in_region("CS/Floor3/S1").at(now)),
        Err(middlewhere::core::CoreError::NoLocation { .. })
    ));
}

#[test]
fn figure_7_rcc8_relations() {
    // One witness pair per relation, as in the figure.
    let base = r(0.0, 0.0, 10.0, 10.0);
    let cases = [
        (r(20.0, 0.0, 30.0, 10.0), Rcc8::Dc),
        (r(10.0, 0.0, 20.0, 10.0), Rcc8::Ec),
        (r(5.0, 5.0, 15.0, 15.0), Rcc8::Po),
        (r(0.0, 2.0, 5.0, 8.0), Rcc8::Tpp),
        (r(2.0, 2.0, 8.0, 8.0), Rcc8::Ntpp),
        (base, Rcc8::Eq),
    ];
    for (other, expected) in cases {
        assert_eq!(Rcc8::of(&other, &base), expected);
        assert_eq!(Rcc8::of(&base, &other), expected.converse());
    }
}

#[test]
fn table_1_floor_contents() {
    // The spatial table regenerated by the simulator matches Table 1's
    // rows.
    let plan = mw_sim::building::paper_floor();
    let expectations = [
        ("CS:Floor3", "Floor", r(0.0, 0.0, 500.0, 100.0)),
        ("CS/Floor3:3105", "Room", r(330.0, 0.0, 350.0, 30.0)),
        ("CS/Floor3:NetLab", "Room", r(360.0, 0.0, 380.0, 30.0)),
        (
            "CS/Floor3:LabCorridor",
            "Corridor",
            r(310.0, 0.0, 330.0, 30.0),
        ),
    ];
    for (key, type_name, rect) in expectations {
        let obj = plan
            .db
            .objects()
            .get(key)
            .unwrap_or_else(|| panic!("missing {key}"));
        assert_eq!(obj.object_type.to_string(), type_name);
        assert_eq!(obj.mbr(), rect, "geometry mismatch for {key}");
        assert_eq!(obj.geometry.type_name(), "Polygon");
    }
}

#[test]
fn table_2_sensor_reading_rows() {
    // Reproduce the two sample rows: RF-12 sees tom-pda at (5,22,9) with a
    // 30 ft radius; Ubi-18 sees ralph-bat at (41,3,9) with 6 in radius.
    let mut table = SensorReadingTable::new();
    let rf_region = middlewhere::geometry::Circle::new(Point::new(5.0, 22.0), 30.0).mbr();
    table.insert(SensorReading {
        sensor_id: "RF-12".into(),
        spec: SensorSpec::rfid_badge(0.9),
        object: "tom-pda".into(),
        glob_prefix: "SC/Floor3/3105".parse().unwrap(),
        region: rf_region,
        detected_at: SimTime::from_secs(42755.0), // 11:52:35
        time_to_live: SimDuration::from_secs(60.0),
        tdf: TemporalDegradation::None,
        moving: false,
    });
    let ubi_region = middlewhere::geometry::Circle::new(Point::new(41.0, 3.0), 0.5).mbr();
    table.insert(SensorReading {
        sensor_id: "Ubi-18".into(),
        spec: SensorSpec::ubisense(0.9),
        object: "ralph-bat".into(),
        glob_prefix: "SC/Floor3/3102".parse().unwrap(),
        region: ubi_region,
        detected_at: SimTime::from_secs(42682.0), // 11:51:22
        time_to_live: SimDuration::from_secs(3.0),
        tdf: TemporalDegradation::None,
        moving: false,
    });
    assert_eq!(table.len(), 2);
    // The RF reading outlives the Ubisense one, per the TTL table.
    let now = SimTime::from_secs(42765.0);
    let tom: middlewhere::sensors::MobileObjectId = "tom-pda".into();
    let ralph: middlewhere::sensors::MobileObjectId = "ralph-bat".into();
    assert_eq!(table.readings_for(&tom, now).count(), 1);
    assert_eq!(table.readings_for(&ralph, now).count(), 0);
}

#[test]
fn table_2_sensor_meta_rows() {
    // RF-12: 72% confidence, 60 s TTL; Ubisense-18: 93%, 3 s.
    let row_rf = SensorMetaRow {
        sensor_id: "RF-12".into(),
        confidence_percent: 72.0,
        time_to_live: SimDuration::from_secs(60.0),
    };
    let row_ubi = SensorMetaRow {
        sensor_id: "Ubisense-18".into(),
        confidence_percent: 93.0,
        time_to_live: SimDuration::from_secs(3.0),
    };
    let mut table = middlewhere::spatial_db::SensorMetaTable::new();
    table.upsert(row_rf.clone());
    table.upsert(row_ubi);
    assert_eq!(table.get(&"RF-12".into()), Some(&row_rf));
}

#[test]
fn section_6_biometric_reading_parameters() {
    use middlewhere::sensors::adapters::{
        BIOMETRIC_LOGOUT_TTL_SECS, BIOMETRIC_LONG_TTL_SECS, BIOMETRIC_SHORT_RADIUS_FT,
        BIOMETRIC_SHORT_TTL_SECS,
    };
    // The paper's calibration constants, verbatim.
    assert_eq!(BIOMETRIC_SHORT_TTL_SECS, 30.0);
    assert_eq!(BIOMETRIC_LONG_TTL_SECS, 900.0); // T = 15 min
    assert_eq!(BIOMETRIC_LOGOUT_TTL_SECS, 15.0);
    assert_eq!(BIOMETRIC_SHORT_RADIUS_FT, 2.0);
    let spec = SensorSpec::biometric_short_term();
    assert_eq!(spec.carry_probability(), 1.0); // x = 1
    assert_eq!(spec.detection_probability(), 0.99); // y = 0.99
}

#[test]
fn section_4_4_probability_band_edges() {
    use middlewhere::fusion::{BandThresholds, ProbabilityBand};
    // Deployed sensors with p_i = 0.6, 0.8, 0.95: the §4.4 scheme.
    let t = BandThresholds::from_sensor_accuracies(&[0.6, 0.8, 0.95]);
    assert_eq!(t.classify(0.55), ProbabilityBand::Low); // ≤ min
    assert_eq!(t.classify(0.75), ProbabilityBand::Medium); // ≤ median
    assert_eq!(t.classify(0.9), ProbabilityBand::High); // ≤ max
    assert_eq!(t.classify(0.99), ProbabilityBand::VeryHigh); // > max
}
