//! Cross-process-style delivery: Location Service notifications crossing
//! the TCP bridge to a remote subscriber, the way CORBA carried them to
//! remote Gaia applications.

use std::sync::Arc;
use std::time::Duration;

use middlewhere::core::{
    LocationService, Notification, SharedNotification, SubscriptionSpec, NOTIFICATION_TOPIC,
};
use middlewhere::geometry::{Point, Rect};
use middlewhere::model::{SimDuration, SimTime, TemporalDegradation};
use middlewhere::sensors::{SensorReading, SensorSpec};
use mw_bus::remote::{remote_subscribe, RemoteTopicServer};
use mw_bus::Broker;
use mw_sim::building::paper_floor;

fn service() -> (Arc<LocationService>, Broker) {
    let plan = paper_floor();
    let broker = Broker::new();
    let svc = LocationService::new(plan.db, plan.universe, &broker);
    (svc, broker)
}

fn reading(object: &str, center: Point, at: f64) -> SensorReading {
    SensorReading {
        sensor_id: "Ubi-remote".into(),
        spec: SensorSpec::ubisense(1.0),
        object: object.into(),
        glob_prefix: "CS/Floor3".parse().unwrap(),
        region: Rect::from_center(center, 2.0, 2.0),
        detected_at: SimTime::from_secs(at),
        time_to_live: SimDuration::from_secs(100.0),
        tdf: TemporalDegradation::None,
        moving: false,
    }
}

#[test]
fn notifications_cross_the_tcp_bridge() {
    let (svc, broker) = service();
    // The service publishes `Arc<Notification>`; the Arc is
    // wire-transparent, so the remote end still decodes `Notification`.
    let topic = broker.topic::<SharedNotification>(NOTIFICATION_TOPIC);
    let server = RemoteTopicServer::bind("127.0.0.1:0", topic).unwrap();
    // The subscribe handshake completes before this returns: no sleep
    // needed before publishing.
    let remote_inbox = remote_subscribe::<Notification>(server.local_addr()).unwrap();

    let room = Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0));
    let id = svc.subscribe(SubscriptionSpec::region_entry(room, 0.5));
    svc.ingest_reading(
        reading("alice", Point::new(340.0, 15.0), 0.0),
        SimTime::ZERO,
    );

    let n = remote_inbox
        .recv_timeout(Duration::from_secs(5))
        .expect("remote notification");
    assert_eq!(n.subscription, id);
    assert_eq!(n.object, "alice".into());
    assert!(n.probability > 0.5);
    assert_eq!(n.region, room);
}

#[test]
fn remote_and_local_subscribers_see_the_same_stream() {
    let (svc, broker) = service();
    let topic = broker.topic::<SharedNotification>(NOTIFICATION_TOPIC);
    let local_inbox = topic.subscribe();
    let server = RemoteTopicServer::bind("127.0.0.1:0", topic).unwrap();
    let remote_inbox = remote_subscribe::<Notification>(server.local_addr()).unwrap();

    let room = Rect::new(Point::new(360.0, 0.0), Point::new(380.0, 30.0));
    let _id = svc.subscribe(SubscriptionSpec::region_entry(room, 0.5));
    // Three entries by three people.
    for (i, name) in ["a", "b", "c"].iter().enumerate() {
        svc.ingest_reading(
            reading(name, Point::new(370.0, 15.0), i as f64),
            SimTime::from_secs(i as f64),
        );
    }

    let mut local: Vec<Notification> = Vec::new();
    let mut remote = Vec::new();
    for _ in 0..3 {
        let shared = local_inbox
            .recv_timeout(Duration::from_secs(2))
            .expect("local");
        local.push((*shared).clone());
        remote.push(
            remote_inbox
                .recv_timeout(Duration::from_secs(5))
                .expect("remote"),
        );
    }
    assert_eq!(local, remote);
}

#[test]
fn location_fix_serializes_for_the_wire() {
    // LocationFix itself can be shipped over the same bridge (a remote
    // "where is X" cache, for example).
    let (svc, _broker) = service();
    svc.ingest_reading(
        reading("alice", Point::new(340.0, 15.0), 0.0),
        SimTime::ZERO,
    );
    let fix = svc
        .locate(&"alice".into(), SimTime::from_secs(1.0))
        .unwrap();
    let json = serde_json::to_string(&fix).unwrap();
    let back: middlewhere::core::LocationFix = serde_json::from_str(&json).unwrap();
    assert_eq!(fix, back);
}
