//! Failure-injection and robustness tests: the middleware must stay sane
//! under garbage readings, pathological subscriptions and concurrent use.

use std::sync::Arc;

use middlewhere::core::{LocationQuery, LocationService, SubscriptionSpec};
use middlewhere::geometry::{Point, Rect};
use middlewhere::model::{SimDuration, SimTime, TemporalDegradation};
use middlewhere::sensors::{AdapterOutput, Revocation, SensorReading, SensorSpec};
use mw_bus::Broker;
use mw_sim::building::paper_floor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn service() -> (Arc<LocationService>, Broker) {
    let plan = paper_floor();
    let broker = Broker::new();
    let service = LocationService::new(plan.db, plan.universe, &broker);
    (service, broker)
}

fn base_reading(object: &str, region: Rect, at: f64, ttl: f64) -> SensorReading {
    SensorReading {
        sensor_id: "S".into(),
        // Carried badge (x = 1): posteriors track detection probability;
        // the carry-probability sensitivity is covered in mw-fusion tests.
        spec: SensorSpec::ubisense(1.0),
        object: object.into(),
        glob_prefix: "CS/Floor3".parse().unwrap(),
        region,
        detected_at: SimTime::from_secs(at),
        time_to_live: SimDuration::from_secs(ttl),
        tdf: TemporalDegradation::None,
        moving: false,
    }
}

#[test]
fn zero_area_and_degenerate_readings_do_not_panic() {
    let (svc, _b) = service();
    let degenerate = [
        Rect::from_point(Point::new(100.0, 50.0)), // point
        Rect::new(Point::new(0.0, 10.0), Point::new(50.0, 10.0)), // line
        Rect::new(Point::new(499.9, 99.9), Point::new(500.0, 100.0)), // sliver at the edge
    ];
    for (i, region) in degenerate.iter().enumerate() {
        svc.ingest_reading(
            base_reading(&format!("p{i}"), *region, 0.0, 100.0),
            SimTime::ZERO,
        );
        // Locating may or may not succeed, but must not panic and any
        // probability must be in range.
        if let Ok(fix) = svc.locate(&format!("p{i}").as_str().into(), SimTime::from_secs(1.0)) {
            assert!((0.0..=1.0).contains(&fix.probability));
        }
    }
}

#[test]
fn readings_outside_the_universe_are_harmless() {
    let (svc, _b) = service();
    let outside = Rect::new(Point::new(2000.0, 2000.0), Point::new(2010.0, 2010.0));
    svc.ingest_reading(base_reading("ghost", outside, 0.0, 100.0), SimTime::ZERO);
    // The region has no overlap with the universe, so the posterior is 0
    // and there is no meaningful estimate — either outcome is fine, just
    // no panic and sane numbers.
    if let Ok(fix) = svc.locate(&"ghost".into(), SimTime::from_secs(1.0)) {
        assert!((0.0..=1.0).contains(&fix.probability));
    }
    match svc.query(
        LocationQuery::of("ghost")
            .in_rect(outside)
            .at(SimTime::from_secs(1.0)),
    ) {
        Ok(answer) => {
            let p = answer.probability().unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
        // The facade reports untracked/impossible objects as an error
        // instead of a silent zero — also fine here.
        Err(e) => assert!(matches!(e, middlewhere::core::CoreError::NoLocation { .. })),
    }
}

#[test]
fn already_expired_and_future_readings() {
    let (svc, _b) = service();
    // Expired before ingest.
    svc.ingest_reading(
        base_reading(
            "stale",
            Rect::from_center(Point::new(100.0, 50.0), 2.0, 2.0),
            0.0,
            1.0,
        ),
        SimTime::from_secs(100.0),
    );
    assert!(svc
        .locate(&"stale".into(), SimTime::from_secs(100.0))
        .is_err());
    // Detected "in the future" relative to the query: freshness clamps.
    svc.ingest_reading(
        base_reading(
            "tachyon",
            Rect::from_center(Point::new(100.0, 50.0), 2.0, 2.0),
            500.0,
            10.0,
        ),
        SimTime::from_secs(100.0),
    );
    if let Ok(fix) = svc.locate(&"tachyon".into(), SimTime::from_secs(100.0)) {
        assert!((0.0..=1.0).contains(&fix.probability));
    }
}

#[test]
fn revoking_unknown_pairs_is_a_noop() {
    let (svc, _b) = service();
    let fired = svc.ingest(
        AdapterOutput {
            readings: vec![],
            revocations: vec![Revocation {
                sensor_id: "NoSuchSensor".into(),
                object: "nobody".into(),
            }],
        },
        SimTime::ZERO,
    );
    assert!(fired.is_empty());
}

#[test]
fn extreme_subscription_thresholds() {
    let (svc, _b) = service();
    let room = Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0));
    // Threshold 0: fires on any sliver of probability once per entry.
    let zero = svc.subscribe(SubscriptionSpec::region_entry(room, 0.0).for_object("a".into()));
    // Threshold 1: (almost) never fires.
    let one = svc.subscribe(SubscriptionSpec::region_entry(room, 1.0).for_object("a".into()));
    let fired = svc.ingest_reading(
        base_reading(
            "a",
            Rect::from_center(Point::new(340.0, 15.0), 2.0, 2.0),
            0.0,
            100.0,
        ),
        SimTime::ZERO,
    );
    let ids: Vec<_> = fired.iter().map(|n| n.subscription).collect();
    assert!(ids.contains(&zero));
    assert!(!ids.contains(&one));
}

#[test]
fn sensor_flood_keeps_latest_and_stays_fast() {
    let (svc, _b) = service();
    // 10k readings from one sensor about one object: the table keeps the
    // latest; queries stay correct.
    for i in 0..10_000 {
        let t = i as f64 * 0.01;
        svc.ingest_reading(
            base_reading(
                "busy",
                Rect::from_center(Point::new(340.0, 15.0), 2.0, 2.0),
                t,
                100.0,
            ),
            SimTime::from_secs(t),
        );
    }
    let fix = svc
        .locate(&"busy".into(), SimTime::from_secs(100.0))
        .unwrap();
    assert!(fix.region.contains_point(Point::new(340.0, 15.0)));
    assert_eq!(svc.reading_count(), 1);
}

#[test]
fn concurrent_ingest_and_queries() {
    let (svc, _b) = service();
    let mut handles = Vec::new();
    // 4 writer threads, 4 reader threads.
    for w in 0..4u64 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(w);
            for i in 0..500 {
                let p = Point::new(rng.gen_range(5.0..495.0), rng.gen_range(5.0..95.0));
                let t = i as f64;
                svc.ingest_reading(
                    base_reading(&format!("w{w}"), Rect::from_center(p, 2.0, 2.0), t, 1000.0),
                    SimTime::from_secs(t),
                );
            }
        }));
    }
    for r in 0..4u64 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            for i in 0..500 {
                let object = format!("w{}", r);
                let now = SimTime::from_secs(i as f64);
                if let Ok(fix) = svc.locate(&object.as_str().into(), now) {
                    assert!((0.0..=1.0).contains(&fix.probability));
                }
                let _ = svc.objects_in_region("CS/Floor3/3105", 0.5, now);
            }
        }));
    }
    for h in handles {
        h.join().expect("no thread panicked");
    }
}

#[test]
fn unsubscribe_mid_stream() {
    let (svc, _b) = service();
    let room = Rect::new(Point::new(330.0, 0.0), Point::new(350.0, 30.0));
    let id = svc.subscribe(SubscriptionSpec::region_entry(room, 0.5));
    let fired = svc.ingest_reading(
        base_reading(
            "a",
            Rect::from_center(Point::new(340.0, 15.0), 2.0, 2.0),
            0.0,
            100.0,
        ),
        SimTime::ZERO,
    );
    assert_eq!(fired.len(), 1);
    svc.unsubscribe(id).unwrap();
    // Leaving and re-entering fires nothing.
    let _ = svc.ingest_reading(
        base_reading(
            "a",
            Rect::from_center(Point::new(100.0, 80.0), 2.0, 2.0),
            10.0,
            100.0,
        ),
        SimTime::from_secs(10.0),
    );
    let fired = svc.ingest_reading(
        base_reading(
            "a",
            Rect::from_center(Point::new(340.0, 15.0), 2.0, 2.0),
            20.0,
            100.0,
        ),
        SimTime::from_secs(20.0),
    );
    assert!(fired.is_empty());
}

#[test]
fn many_objects_many_subscriptions() {
    let (svc, _b) = service();
    let mut rng = StdRng::seed_from_u64(77);
    // 200 random subscriptions.
    for _ in 0..200 {
        let x = rng.gen_range(0.0..450.0);
        let y = rng.gen_range(0.0..80.0);
        let _ = svc.subscribe(SubscriptionSpec::region_entry(
            Rect::new(Point::new(x, y), Point::new(x + 30.0, y + 15.0)),
            0.4,
        ));
    }
    // 50 objects wandering for 20 steps.
    let mut total = 0usize;
    for step in 0..20 {
        let t = step as f64 * 5.0;
        for o in 0..50 {
            let p = Point::new(rng.gen_range(5.0..495.0), rng.gen_range(5.0..95.0));
            total += svc
                .ingest_reading(
                    base_reading(&format!("o{o}"), Rect::from_center(p, 2.0, 2.0), t, 6.0),
                    SimTime::from_secs(t),
                )
                .len();
        }
    }
    // Plenty of notifications fired, and every one is well-formed.
    assert!(total > 0);
}
