//! Byzantine-sensor chaos suite: the full degradation ladder, end to end.
//!
//! A five-sensor deployment tracks one person through the paper's
//! Figure 5/6-style overlap scenario while scripted [`ByzantineAdapter`]s
//! misbehave on a fixed schedule:
//!
//! 1. **healthy** — the supervised service's answers are byte-identical
//!    to an unsupervised twin fed the same readings;
//! 2. **two sensors fail** (teleporting, stale clock) — the supervisor
//!    quarantines them and answers carry [`AnswerQuality::Partial`];
//! 3. **everything goes silent** — the staleness watchdog quarantines the
//!    rest and queries fall back to the last-known-good fix with
//!    TDF-degraded probability and an age-widened region
//!    ([`AnswerQuality::LastKnownGood`]);
//! 4. **recovery** — one clean reading per sensor through the half-open
//!    probe window restores every sensor and answers return to
//!    [`AnswerQuality::Full`].
//!
//! Every schedule is fixed, so the `health.*` counters are asserted
//! *exactly* against the scripted fault counts — invariants, not bounds.
//!
//! Re-run: `cargo test --test sensor_chaos -- --nocapture`.

use std::time::Duration;

use mw_bus::Broker;
use mw_core::{AnswerQuality, CoreError, LocationQuery, LocationService};
use mw_geometry::{Point, Polygon, Rect, Segment};
use mw_model::{SimDuration, SimTime, TemporalDegradation};
use mw_obs::MetricsRegistry;
use mw_sensors::{
    Adapter, AdapterOutput, HealthConfig, SensorReading, SensorSpec, SensorSupervisor,
    SharedSupervisor,
};
use mw_sim::{ByzantineAdapter, ByzantineMode};
use mw_spatial_db::{Geometry, ObjectType, SpatialDatabase, SpatialObject};

/// Fixed seed for the byzantine adapters; CI runs exactly this schedule.
const CHAOS_SEED: u64 = 0x00c0_ffee_0bad;

/// Where alice actually stands: inside room 3105.
const TRUTH: Point = Point { x: 340.0, y: 10.0 };

fn universe() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 100.0))
}

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
    Rect::new(Point::new(x0, y0), Point::new(x1, y1))
}

/// The Siebel third-floor corner the paper's figures use: a floor, room
/// 3105, the corridor outside it, and the connecting door.
fn floor_db() -> SpatialDatabase {
    let mut db = SpatialDatabase::new();
    let prefix: mw_model::Glob = "CS/Floor3".parse().unwrap();
    db.insert_object(SpatialObject::new(
        "Floor3",
        "CS".parse().unwrap(),
        ObjectType::Floor,
        Geometry::Polygon(Polygon::from_rect(&rect(0.0, 0.0, 500.0, 100.0))),
    ))
    .unwrap();
    db.insert_object(SpatialObject::new(
        "3105",
        prefix.clone(),
        ObjectType::Room,
        Geometry::Polygon(Polygon::from_rect(&rect(330.0, 0.0, 350.0, 30.0))),
    ))
    .unwrap();
    db.insert_object(SpatialObject::new(
        "LabCorridor",
        prefix.clone(),
        ObjectType::Corridor,
        Geometry::Polygon(Polygon::from_rect(&rect(310.0, 0.0, 330.0, 30.0))),
    ))
    .unwrap();
    db.insert_object(SpatialObject::new(
        "Door3105",
        prefix,
        ObjectType::Door,
        Geometry::Line(Segment::new(
            Point::new(330.0, 10.0),
            Point::new(330.0, 14.0),
        )),
    ))
    .unwrap();
    db
}

fn supervised_service(
    broker: &Broker,
    registry: &MetricsRegistry,
) -> (std::sync::Arc<LocationService>, SharedSupervisor) {
    let supervisor = SensorSupervisor::new(HealthConfig::new(universe())).shared();
    let service = LocationService::new_supervised(
        floor_db(),
        universe(),
        broker,
        registry,
        supervisor.clone(),
    );
    (service, supervisor)
}

/// A hand-made clean reading — what a repaired sensor sends as its probe.
fn honest_reading(sensor: &str, at: SimTime) -> SensorReading {
    SensorReading {
        sensor_id: sensor.into(),
        spec: SensorSpec::ubisense(1.0),
        object: "alice".into(),
        glob_prefix: "CS/Floor3".parse().unwrap(),
        region: Rect::from_center(TRUTH, 2.0, 2.0),
        detected_at: at,
        time_to_live: SimDuration::from_secs(30.0),
        tdf: TemporalDegradation::None,
        moving: false,
    }
}

#[test]
fn full_degradation_ladder_with_exact_health_counters() {
    let registry = MetricsRegistry::new();
    let broker = Broker::new();
    let (service, supervisor) = supervised_service(&broker, &registry);
    // The unsupervised twin: same floor, same readings, no supervision.
    let twin_broker = Broker::new();
    let twin = LocationService::new(floor_db(), universe(), &twin_broker);

    // Five Ubisense-class sensors (declared period 1s). Three die
    // silently late in the run; one teleports 300 ft *into* the frame
    // (x 340 → 40) so the violation is unambiguously an implied-velocity
    // fault, not an out-of-frame one; one's clock runs 120 s fast.
    let mut sensors: Vec<ByzantineAdapter> = vec![
        ByzantineAdapter::new("ubi-1", ByzantineMode::SilentDeath, 11, CHAOS_SEED),
        ByzantineAdapter::new("ubi-2", ByzantineMode::SilentDeath, 11, CHAOS_SEED + 1),
        ByzantineAdapter::new("ubi-3", ByzantineMode::SilentDeath, 11, CHAOS_SEED + 2),
        ByzantineAdapter::new(
            "ubi-4",
            ByzantineMode::Teleporting { hop_ft: -300.0 },
            3,
            CHAOS_SEED + 3,
        ),
        ByzantineAdapter::new(
            "ubi-5",
            ByzantineMode::StaleClock {
                skew: SimDuration::from_secs(120.0),
            },
            3,
            CHAOS_SEED + 4,
        ),
    ];

    let drive = |sensors: &mut [ByzantineAdapter],
                 range: std::ops::RangeInclusive<usize>,
                 t: f64,
                 mirror: bool| {
        let now = SimTime::from_secs(t);
        for s in &mut sensors[range] {
            let out = s.translate(TRUTH, now);
            if mirror {
                twin.ingest(out.clone(), now);
            }
            service.ingest(out, now);
        }
    };

    // --- Rung 0: healthy. Everyone reports; supervised == unsupervised.
    for t in 0..=2 {
        drive(&mut sensors, 0..=4, f64::from(t), true);
    }
    let baseline = SimTime::from_secs(2.5);
    for query in [
        LocationQuery::of("alice").at(baseline),
        LocationQuery::of("alice").distribution().at(baseline),
        LocationQuery::of("alice")
            .in_region("CS/Floor3/3105")
            .at(baseline),
    ] {
        let supervised = service.query(query.clone()).unwrap();
        let unsupervised = twin.query(query).unwrap();
        assert_eq!(
            supervised, unsupervised,
            "healthy supervised answers must be byte-identical to the twin's"
        );
        assert_eq!(supervised.quality(), AnswerQuality::Full);
    }

    // --- Rung 1: ubi-4 teleports and ubi-5's clock skews, five faulty
    // readings each (t = 3..=7): exactly enough strikes to walk
    // Healthy → Degraded (2) → Quarantined (3).
    for t in 3..=7 {
        drive(&mut sensors, 0..=4, f64::from(t), false);
    }
    // The healthy three keep reporting through t = 10.
    for t in 8..=10 {
        drive(&mut sensors, 0..=2, f64::from(t), false);
    }
    assert_eq!(sensors[3].faulty_emitted(), 5, "scripted teleport faults");
    assert_eq!(sensors[4].faulty_emitted(), 5, "scripted clock faults");
    {
        let guard = supervisor.lock().unwrap();
        assert_eq!(guard.quarantined_count(), 2);
        assert!(guard.is_quarantined(&"ubi-4".into()));
        assert!(guard.is_quarantined(&"ubi-5".into()));
    }
    let t10 = SimTime::from_secs(10.0);
    let partial = service.query(LocationQuery::of("alice").at(t10)).unwrap();
    assert_eq!(
        partial.quality(),
        AnswerQuality::Partial,
        "live readings from quarantined sensors exist, so the answer is partial"
    );
    let partial_fix = partial.fix().unwrap().clone();
    assert!(
        partial_fix.probability > 0.5,
        "p={}",
        partial_fix.probability
    );
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("health.sensor.ubi-4.state"), Some(2.0));
    assert_eq!(snap.gauge("health.sensor.ubi-5.state"), Some(2.0));
    assert_eq!(snap.gauge("health.sensor.ubi-1.state"), Some(0.0));

    // --- Rung 2: the remaining three go silent. Empty ingests advance
    // the staleness watchdog; with a 1 s declared period and the default
    // ×3 staleness factor the missed windows fall at t = 13, 16, 19, 22
    // and 25 — five strikes, quarantining all three at t = 25.
    for t in 11..=26 {
        drive(&mut sensors, 0..=2, f64::from(t), false);
    }
    assert_eq!(supervisor.lock().unwrap().quarantined_count(), 5);
    let t26 = SimTime::from_secs(26.0);
    let lkg = service.query(LocationQuery::of("alice").at(t26)).unwrap();
    assert_eq!(lkg.quality(), AnswerQuality::LastKnownGood);
    let lkg_fix = lkg.fix().unwrap();
    // The fallback is the cached t = 10 fix, honestly aged: probability
    // degraded through the TDF, region widened by the age-scaled motion
    // bound, timestamp kept at the fix's true epoch.
    assert_eq!(lkg_fix.at, t10);
    assert!(
        lkg_fix.probability < partial_fix.probability,
        "TDF must shrink confidence: {} vs {}",
        lkg_fix.probability,
        partial_fix.probability
    );
    assert!(
        lkg_fix.region.contains_rect(&partial_fix.region)
            && lkg_fix.region.area() > partial_fix.region.area(),
        "LKG region must be a strict widening"
    );

    // A query with an already-exhausted deadline budget skips fusion and
    // goes straight to the last-known-good rung.
    let rushed = service
        .query(
            LocationQuery::of("alice")
                .at(SimTime::from_secs(26.5))
                .within(Duration::ZERO),
        )
        .unwrap();
    assert_eq!(rushed.quality(), AnswerQuality::LastKnownGood);

    // --- Rung 3: recovery. All probe windows are open by t = 32 (the
    // initial 5 s backoff, jittered into [2.5 s, 5 s], armed at t = 25 at
    // the latest). One clean reading per sensor recovers everything.
    let t32 = SimTime::from_secs(32.0);
    for id in ["ubi-1", "ubi-2", "ubi-3", "ubi-4", "ubi-5"] {
        service.ingest(AdapterOutput::single(honest_reading(id, t32)), t32);
    }
    assert_eq!(supervisor.lock().unwrap().quarantined_count(), 0);
    let healed = service
        .query(LocationQuery::of("alice").at(SimTime::from_secs(33.0)))
        .unwrap();
    assert_eq!(healed.quality(), AnswerQuality::Full);

    // --- The ledger: health.* counters equal the scripted fault counts.
    let snap = registry.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(
        counter("health.violations.teleport"),
        sensors[3].faulty_emitted(),
        "teleport violations == scripted hops"
    );
    assert_eq!(
        counter("health.violations.future_timestamp"),
        sensors[4].faulty_emitted(),
        "future-timestamp clamps == scripted skewed readings"
    );
    // Three silent sensors × five missed windows each.
    assert_eq!(counter("health.violations.stale"), 15);
    assert_eq!(counter("health.violations.out_of_frame"), 0);
    assert_eq!(counter("health.violations.confidence"), 0);
    assert_eq!(counter("health.violations.conflict_loss"), 0);
    assert_eq!(counter("health.quarantines"), 5);
    assert_eq!(counter("health.probes"), 5);
    assert_eq!(counter("health.recoveries"), 5);
    // Rejected = the five teleports; clamped = the five skewed readings;
    // nothing ever arrived during a closed quarantine window.
    assert_eq!(counter("health.readings_rejected"), 5);
    assert_eq!(counter("health.readings_clamped"), 5);
    assert_eq!(counter("health.quarantine_dropped"), 0);
    // Accepted: 3 honest sensors × 11 readings + 2 failing sensors ×
    // 3 honest readings + 5 recovery probes.
    assert_eq!(counter("health.readings_accepted"), 33 + 6 + 5);
    assert_eq!(snap.gauge("health.sensor.ubi-4.state"), Some(0.0));
}

#[test]
fn exhausted_deadline_with_no_cache_is_an_explicit_error() {
    let registry = MetricsRegistry::new();
    let broker = Broker::new();
    let (service, _supervisor) = supervised_service(&broker, &registry);
    let err = service
        .query(
            LocationQuery::of("alice")
                .at(SimTime::from_secs(1.0))
                .within(Duration::ZERO),
        )
        .unwrap_err();
    assert!(
        matches!(err, CoreError::DeadlineExceeded { ref object } if object == "alice"),
        "{err:?}"
    );
}

#[test]
fn all_sensors_quarantined_without_cache_is_an_explicit_error() {
    let registry = MetricsRegistry::new();
    let broker = Broker::new();
    let (service, supervisor) = supervised_service(&broker, &registry);
    // One sensor, ingested cleanly, then quarantined by the watchdog
    // before any query ever cached a fix.
    service.ingest(
        AdapterOutput::single(honest_reading("ubi-lone", SimTime::ZERO)),
        SimTime::ZERO,
    );
    for t in 1..=20 {
        service.ingest(AdapterOutput::empty(), SimTime::from_secs(f64::from(t)));
    }
    assert!(supervisor
        .lock()
        .unwrap()
        .is_quarantined(&"ubi-lone".into()));
    // The honest reading (30 s TTL) is still live at t = 20 — but its
    // only producer is quarantined and there is nothing to fall back to.
    let err = service
        .query(LocationQuery::of("alice").at(SimTime::from_secs(20.0)))
        .unwrap_err();
    assert!(
        matches!(err, CoreError::SensorsQuarantined { ref object } if object == "alice"),
        "{err:?}"
    );
}

#[test]
fn chaos_schedule_is_reproducible() {
    // The same seed produces the same reading stream, byte for byte.
    let run = || {
        let mut a = ByzantineAdapter::new(
            "ubi-r",
            ByzantineMode::Teleporting { hop_ft: -300.0 },
            3,
            CHAOS_SEED,
        );
        let mut readings = Vec::new();
        for t in 0..10 {
            readings.extend(
                a.translate(TRUTH, SimTime::from_secs(f64::from(t)))
                    .readings,
            );
        }
        readings
    };
    assert_eq!(run(), run());
}
