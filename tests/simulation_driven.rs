//! Simulation-driven integration tests: the whole stack under a seeded
//! synthetic deployment, scored against ground truth.

use middlewhere::model::SimDuration;
use mw_sim::{building, DeploymentConfig, SimConfig, Simulation};

fn full_coverage_config(carry: f64) -> DeploymentConfig {
    DeploymentConfig {
        ubisense_rooms: vec![0, 1, 2, 3, 4],
        rfid_rooms: vec![],
        biometric_rooms: vec![],
        carry_probability: carry,
        ..DeploymentConfig::default()
    }
}

#[test]
fn localization_accuracy_with_full_ubisense_coverage() {
    let mut sim = Simulation::new(
        building::paper_floor(),
        SimConfig {
            seed: 11,
            people: 4,
            deployment: full_coverage_config(1.0),
            aging_inflation_ft_per_s: 0.0,
        },
    );
    let stats = sim.run_accuracy_trial(120, SimDuration::from_secs(1.0));
    assert!(stats.coverage() > 0.8, "coverage {}", stats.coverage());
    // Ubisense's 6-inch resolution + up to one second of walking (4 ft/s)
    // between reading and query.
    assert!(
        stats.mean_error() < 8.0,
        "mean error {}",
        stats.mean_error()
    );
    assert!(
        stats.mean_probability() > 0.4,
        "mean probability {}",
        stats.mean_probability()
    );
}

#[test]
fn sparser_coverage_degrades_gracefully() {
    let full = {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 13,
                people: 4,
                deployment: full_coverage_config(1.0),
                aging_inflation_ft_per_s: 0.0,
            },
        );
        sim.run_accuracy_trial(120, SimDuration::from_secs(1.0))
    };
    let sparse = {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 13,
                people: 4,
                deployment: DeploymentConfig {
                    ubisense_rooms: vec![0],
                    rfid_rooms: vec![],
                    biometric_rooms: vec![],
                    carry_probability: 1.0,
                    ..DeploymentConfig::default()
                },
                aging_inflation_ft_per_s: 0.0,
            },
        );
        sim.run_accuracy_trial(120, SimDuration::from_secs(1.0))
    };
    assert!(
        sparse.coverage() < full.coverage(),
        "sparse {} vs full {}",
        sparse.coverage(),
        full.coverage()
    );
}

#[test]
fn badge_carry_probability_limits_coverage() {
    // The paper plans user studies for x; the simulation shows why: people
    // without their badge are invisible to badge-based sensing.
    let carried = {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 17,
                people: 8,
                deployment: full_coverage_config(1.0),
                aging_inflation_ft_per_s: 0.0,
            },
        );
        sim.run_accuracy_trial(60, SimDuration::from_secs(1.0))
    };
    let forgetful = {
        let mut sim = Simulation::new(
            building::paper_floor(),
            SimConfig {
                seed: 17,
                people: 8,
                deployment: full_coverage_config(0.3),
                aging_inflation_ft_per_s: 0.0,
            },
        );
        sim.run_accuracy_trial(60, SimDuration::from_secs(1.0))
    };
    assert!(
        forgetful.coverage() < carried.coverage(),
        "forgetful {} vs carried {}",
        forgetful.coverage(),
        carried.coverage()
    );
}

#[test]
fn synthetic_floor_scales_to_many_rooms_and_people() {
    let plan = building::synthetic_floor(12); // 25 walkable regions
    let n_rooms = plan.rooms.len();
    let mut sim = Simulation::new(
        plan,
        SimConfig {
            seed: 23,
            people: 20,
            deployment: DeploymentConfig {
                ubisense_rooms: (0..n_rooms).collect(),
                rfid_rooms: vec![],
                biometric_rooms: vec![],
                carry_probability: 1.0,
                ..DeploymentConfig::default()
            },
            aging_inflation_ft_per_s: 0.0,
        },
    );
    let stats = sim.run_accuracy_trial(60, SimDuration::from_secs(1.0));
    assert!(stats.located > 500, "located {}", stats.located);
    assert!(
        stats.mean_error() < 10.0,
        "mean error {}",
        stats.mean_error()
    );
}

#[test]
fn region_queries_agree_with_ground_truth_majority() {
    let mut sim = Simulation::new(
        building::paper_floor(),
        SimConfig {
            seed: 29,
            people: 4,
            deployment: full_coverage_config(1.0),
            aging_inflation_ft_per_s: 0.0,
        },
    );
    let mut agree = 0usize;
    let mut total = 0usize;
    for _ in 0..120 {
        sim.step(SimDuration::from_secs(1.0));
        let rooms: Vec<(String, middlewhere::geometry::Rect)> = sim.rooms().to_vec();
        for (name, rect) in &rooms {
            let Ok(in_room) = sim.service().objects_in_region(name, 0.5, sim.clock()) else {
                continue;
            };
            for (object, _) in in_room {
                total += 1;
                if let Some(truth) = sim.ground_truth(&object) {
                    // Allow slack at room borders: the estimate lags the
                    // walker by up to one step.
                    if rect.inflated(6.0).contains_point(truth) {
                        agree += 1;
                    }
                }
            }
        }
    }
    assert!(total > 0);
    let rate = agree as f64 / total as f64;
    assert!(
        rate > 0.8,
        "region-query agreement {rate} ({agree}/{total})"
    );
}
